//! Synthetic workload length distributions fitted to Fig. 11.
//!
//! The paper evaluates on the ShareGPT and Alpaca datasets, but consumes
//! only their tokenized *input/output lengths* (content never affects memory
//! management, and arrivals are synthesized with a Poisson process in the
//! paper itself, §6.1). These generators reproduce the stated statistics:
//! ShareGPT prompts are 8.4× longer and outputs 5.8× longer than Alpaca's,
//! with higher variance, and total length is capped at the 2048-token model
//! context.

use rand::rngs::StdRng;

use crate::dist::TruncatedLogNormal;

/// Maximum model context used in the paper's experiments (OPT family).
pub const MAX_MODEL_LEN: usize = 2048;

/// A synthetic dataset: paired input/output length distributions.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset label used in reports.
    pub name: &'static str,
    input: TruncatedLogNormal,
    output: TruncatedLogNormal,
    /// Cap on `input + output` (model context length).
    pub max_total_len: usize,
}

/// Mean lengths from Fig. 11: ShareGPT ≈ (161, 338), Alpaca ≈ (19.2, 58.3);
/// ratios 8.4× and 5.8× as stated in §6.1.
pub const SHAREGPT_MEAN_INPUT: f64 = 161.3;
/// Mean ShareGPT output length (Fig. 11a).
pub const SHAREGPT_MEAN_OUTPUT: f64 = 337.8;
/// Mean Alpaca input length (Fig. 11b).
pub const ALPACA_MEAN_INPUT: f64 = 19.2;
/// Mean Alpaca output length (Fig. 11b).
pub const ALPACA_MEAN_OUTPUT: f64 = 58.3;

impl Dataset {
    /// ShareGPT-like lengths: long, high-variance conversations.
    #[must_use]
    pub fn sharegpt() -> Self {
        Self {
            name: "ShareGPT",
            input: TruncatedLogNormal::from_mean(SHAREGPT_MEAN_INPUT, 1.1, 4.0, 1024.0),
            output: TruncatedLogNormal::from_mean(SHAREGPT_MEAN_OUTPUT, 0.95, 4.0, 2040.0),
            max_total_len: MAX_MODEL_LEN,
        }
    }

    /// Alpaca-like lengths: short instructions, short answers.
    #[must_use]
    pub fn alpaca() -> Self {
        Self {
            name: "Alpaca",
            input: TruncatedLogNormal::from_mean(ALPACA_MEAN_INPUT, 0.75, 2.0, 512.0),
            output: TruncatedLogNormal::from_mean(ALPACA_MEAN_OUTPUT, 0.85, 1.0, 1024.0),
            max_total_len: MAX_MODEL_LEN,
        }
    }

    /// Samples one `(input_len, output_len)` pair, enforcing the total cap.
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> (usize, usize) {
        let input = self.input.sample_len(rng).min(self.max_total_len - 1);
        let mut output = self.output.sample_len(rng);
        if input + output > self.max_total_len {
            output = self.max_total_len - input;
        }
        (input, output.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn means(ds: &Dataset, n: usize) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut si = 0.0;
        let mut so = 0.0;
        for _ in 0..n {
            let (i, o) = ds.sample(&mut rng);
            si += i as f64;
            so += o as f64;
        }
        (si / n as f64, so / n as f64)
    }

    #[test]
    fn sharegpt_longer_than_alpaca() {
        let (si, so) = means(&Dataset::sharegpt(), 20_000);
        let (ai, ao) = means(&Dataset::alpaca(), 20_000);
        // §6.1: 8.4× longer inputs, 5.8× longer outputs (truncation shifts
        // the achieved ratios slightly; require the right ballpark).
        let input_ratio = si / ai;
        let output_ratio = so / ao;
        assert!(
            (6.0..=11.0).contains(&input_ratio),
            "input ratio {input_ratio}"
        );
        assert!(
            (4.0..=8.0).contains(&output_ratio),
            "output ratio {output_ratio}"
        );
    }

    #[test]
    fn means_near_paper_values() {
        let (si, so) = means(&Dataset::sharegpt(), 30_000);
        assert!(
            (si - SHAREGPT_MEAN_INPUT).abs() < 30.0,
            "sharegpt input mean {si}"
        );
        assert!(
            (so - SHAREGPT_MEAN_OUTPUT).abs() < 60.0,
            "sharegpt output mean {so}"
        );
        let (ai, ao) = means(&Dataset::alpaca(), 30_000);
        assert!(
            (ai - ALPACA_MEAN_INPUT).abs() < 4.0,
            "alpaca input mean {ai}"
        );
        assert!(
            (ao - ALPACA_MEAN_OUTPUT).abs() < 10.0,
            "alpaca output mean {ao}"
        );
    }

    #[test]
    fn total_never_exceeds_context() {
        let ds = Dataset::sharegpt();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let (i, o) = ds.sample(&mut rng);
            assert!(i + o <= MAX_MODEL_LEN);
            assert!(i >= 1 && o >= 1);
        }
    }

    #[test]
    fn sharegpt_has_higher_variance() {
        let sample_var = |ds: &Dataset| {
            let mut rng = StdRng::seed_from_u64(5);
            let xs: Vec<f64> = (0..20_000).map(|_| ds.sample(&mut rng).0 as f64).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        assert!(sample_var(&Dataset::sharegpt()) > sample_var(&Dataset::alpaca()) * 4.0);
    }
}
