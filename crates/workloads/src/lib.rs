//! # vllm-workloads
//!
//! Synthetic serving workloads reproducing §6.1 of the PagedAttention
//! paper: ShareGPT- and Alpaca-like length distributions (Fig. 11), Poisson
//! request arrivals, the shared-prefix translation workload (§6.4), and the
//! chatbot workload (§6.5).
//!
//! The real datasets are consumed by the paper only through tokenized
//! input/output lengths; content never affects memory management, so the
//! substitution with fitted distributions preserves the evaluation (see
//! DESIGN.md).

#![warn(missing_docs)]

pub mod chatbot;
pub mod dataset;
pub mod dist;
pub mod longcontext;
pub mod trace;
pub mod translation;

pub use chatbot::{synthesize_chat_trace, CHAT_OUTPUT_LIMIT, CHAT_PROMPT_LIMIT};
pub use dataset::{Dataset, MAX_MODEL_LEN};
pub use dist::{exponential, lognormal, standard_normal, TruncatedLogNormal, Zipf};
pub use longcontext::{long_context_prompt, synthesize_mixed_trace, LONG_CONTEXT_PROMPT_LEN};
pub use trace::{Trace, TraceRequest};
pub use translation::{
    synthesize_translation_trace, PrefixKind, TranslationTrace, FIVE_SHOT_PREFIX_LEN,
    ONE_SHOT_PREFIX_LEN,
};
