//! Chatbot workload (§6.5): the prompt concatenates the conversation
//! history with the last user query, truncated to the final 1024 tokens;
//! the model generates at most 1024 tokens. KV cache is *not* kept across
//! rounds (the paper drops it between conversation turns).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::Dataset;
use crate::dist::exponential;
use crate::trace::{Trace, TraceRequest};

/// Context budget for the chatbot prompt (OPT-13B, §6.5).
pub const CHAT_PROMPT_LIMIT: usize = 1024;
/// Generation budget per round (§6.5).
pub const CHAT_OUTPUT_LIMIT: usize = 1024;

/// Synthesizes a chatbot trace: each request is one conversation round with
/// ShareGPT-like turn lengths and a history of 0–9 prior rounds.
///
/// Because ShareGPT conversations are long, most prompts saturate the
/// 1024-token limit — the property that makes the Orca baselines collapse
/// to identical behaviour in Fig. 17.
///
/// # Panics
///
/// Panics if `rate` is not positive.
#[must_use]
pub fn synthesize_chat_trace(rate: f64, n: usize, seed: u64) -> Trace {
    assert!(rate > 0.0, "rate must be positive");
    let ds = Dataset::sharegpt();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let requests = (0..n as u64)
        .map(|id| {
            t += exponential(&mut rng, rate);
            let rounds = rng.random_range(0..10usize);
            // History: prior queries and answers.
            let mut history = 0usize;
            for _ in 0..rounds {
                let (q, a) = ds.sample(&mut rng);
                history += q + a;
            }
            let (query, answer) = ds.sample(&mut rng);
            let input_len = (history + query).clamp(1, CHAT_PROMPT_LIMIT);
            let output_len = answer.clamp(1, CHAT_OUTPUT_LIMIT);
            TraceRequest {
                id,
                arrival: t,
                input_len,
                output_len,
            }
        })
        .collect();
    Trace { requests, rate }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_respected() {
        let t = synthesize_chat_trace(2.0, 2_000, 1);
        for r in &t.requests {
            assert!(r.input_len >= 1 && r.input_len <= CHAT_PROMPT_LIMIT);
            assert!(r.output_len >= 1 && r.output_len <= CHAT_OUTPUT_LIMIT);
        }
    }

    #[test]
    fn most_prompts_saturate_the_limit() {
        // §6.5: "the input prompts for most requests have 1024 tokens".
        let t = synthesize_chat_trace(2.0, 4_000, 2);
        let saturated = t
            .requests
            .iter()
            .filter(|r| r.input_len == CHAT_PROMPT_LIMIT)
            .count();
        assert!(
            saturated * 2 > t.requests.len(),
            "only {saturated}/{} saturated",
            t.requests.len()
        );
    }

    #[test]
    fn deterministic() {
        let a = synthesize_chat_trace(2.0, 100, 7);
        let b = synthesize_chat_trace(2.0, 100, 7);
        assert_eq!(a.requests, b.requests);
    }
}
