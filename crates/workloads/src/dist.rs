//! Distribution samplers built from uniform draws (kept dependency-light:
//! only `rand`'s uniform source is used; exponential, normal, lognormal,
//! and Zipf are derived here).

use rand::rngs::StdRng;
use rand::RngExt;

/// Uniform draw in `(0, 1)` (never exactly 0, so logs are safe).
fn open_unit(rng: &mut StdRng) -> f64 {
    loop {
        let u: f64 = rng.random();
        if u > 0.0 {
            return u;
        }
    }
}

/// Exponential variate with the given rate (mean `1/rate`).
///
/// # Panics
///
/// Panics if `rate` is not positive.
#[must_use]
pub fn exponential(rng: &mut StdRng, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    -open_unit(rng).ln() / rate
}

/// Standard normal variate via Box–Muller.
#[must_use]
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1 = open_unit(rng);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal variate with the given underlying `mu`/`sigma`.
#[must_use]
pub fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// A log-normal distribution parameterized by its (untruncated) mean and
/// the underlying sigma, truncated to `[min, max]` by rejection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedLogNormal {
    mu: f64,
    sigma: f64,
    min: f64,
    max: f64,
}

impl TruncatedLogNormal {
    /// Builds a distribution whose *untruncated* mean is `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`, `sigma < 0`, or the bounds are inverted.
    #[must_use]
    pub fn from_mean(mean: f64, sigma: f64, min: f64, max: f64) -> Self {
        assert!(mean > 0.0 && sigma >= 0.0 && min <= max && min > 0.0);
        // E[LogNormal(mu, sigma)] = exp(mu + sigma^2 / 2).
        let mu = mean.ln() - sigma * sigma / 2.0;
        Self {
            mu,
            sigma,
            min,
            max,
        }
    }

    /// Samples one value (rejection against the truncation bounds, with a
    /// clamp fallback after 64 attempts).
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        for _ in 0..64 {
            let v = lognormal(rng, self.mu, self.sigma);
            if v >= self.min && v <= self.max {
                return v;
            }
        }
        lognormal(rng, self.mu, self.sigma).clamp(self.min, self.max)
    }

    /// Samples rounded to a positive integer.
    #[must_use]
    pub fn sample_len(&self, rng: &mut StdRng) -> usize {
        (self.sample(rng).round() as usize).max(1)
    }
}

/// Zipf-like distribution over `0..n` with exponent `s` (used for skewed
/// choices such as beam-parent selection).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Samples a rank in `0..n` (0 most likely).
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_mean_matches_parameterization() {
        let d = TruncatedLogNormal::from_mean(100.0, 0.5, 1.0, 1e9);
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn truncation_respected() {
        let d = TruncatedLogNormal::from_mean(100.0, 1.5, 10.0, 500.0);
        let mut r = rng();
        for _ in 0..5_000 {
            let v = d.sample(&mut r);
            assert!((10.0..=500.0).contains(&v), "value {v}");
        }
    }

    #[test]
    fn sample_len_at_least_one() {
        let d = TruncatedLogNormal::from_mean(1.0, 0.1, 0.1, 2.0);
        let mut r = rng();
        for _ in 0..100 {
            assert!(d.sample_len(&mut r) >= 1);
        }
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let z = Zipf::new(10, 1.5);
        let mut r = rng();
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[0] > 3_000);
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut r = rng();
        assert_eq!(z.sample(&mut r), 0);
    }
}
