//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline `serde` stand-in. The workspace only uses the derives as
//! annotations (no serialization calls), so emitting nothing is sound.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
