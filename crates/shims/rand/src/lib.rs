//! Offline stand-in for the subset of the `rand` crate used by this
//! workspace: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `RngExt` helpers `random::<f32/f64>()` / `random_range(Range<int>)`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for tests and workload generation. It is
//! **not** the upstream `StdRng` stream; everything in this repo seeds its
//! own generators, so only reproducibility within the repo matters.

/// Seedable generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_raw(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Construction from integer seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Maps one 64-bit draw onto the target type's standard distribution.
    fn from_u64(raw: u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_u64(raw: u64) -> Self {
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_u64(raw: u64) -> Self {
        (raw >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// Ranges accepted by [`RngExt::random_range`].
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the (non-empty) range.
    fn sample(&self, raw: u64) -> Self::Output;
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(&self, raw: u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (raw % span) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(&self, raw: u64) -> $t {
                assert!(self.start() <= self.end(), "empty range");
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (raw % span) as $t
            }
        }
    )*};
}

impl_uniform_range!(usize, u8, u16, u32, u64);

/// Sampling helpers, mirroring the parts of `rand::Rng` this repo uses.
pub trait RngExt {
    /// One raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// A standard-distribution value (`f32`/`f64` uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// A uniform draw from an integer range.
    fn random_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self.next_u64())
    }
}

impl RngExt for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn range_respected_and_covered() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
