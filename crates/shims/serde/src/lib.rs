//! Offline stand-in for `serde`: marker traits plus no-op derive macros.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! but never serializes through serde (checkpoints use a hand-rolled binary
//! format), so marker traits are sufficient to keep the annotations
//! compiling until a real serializer is needed.

/// Marker for serializable types.
pub trait Serialize {}

/// Marker for deserializable types.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
