//! Offline stand-in for the subset of the `bytes` crate used by the
//! checkpoint codec: `BytesMut` + `BufMut` for little-endian encoding and
//! `Bytes` + `Buf` for cursor-style decoding.

/// A growable byte buffer for encoding.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the written bytes into a `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freezes the buffer into an immutable [`Bytes`] cursor.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

/// Little-endian append operations, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` in little-endian order.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Builds a buffer by copying `src`.
    #[must_use]
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self {
            data: src.to_vec(),
            pos: 0,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.pos + n <= self.data.len(), "buffer underflow");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

/// Little-endian cursor reads, mirroring `bytes::Buf`.
///
/// Reads past the end panic, as in the upstream crate; callers guard with
/// [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(42);
        buf.put_f32_le(1.5);
        buf.put_u8(7);
        assert_eq!(buf.len(), 4 + 8 + 4 + 1);

        let mut r = Bytes::copy_from_slice(&buf.to_vec());
        assert_eq!(r.remaining(), 17);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn freeze_reads_from_start() {
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 9);
    }
}
