//! Offline stand-in for `parking_lot`: a `Mutex` with the poison-free
//! `lock()` signature, backed by `std::sync::Mutex`.

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` never returns a poison error; a
/// poisoned inner lock is recovered by taking the inner value anyway.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value in a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(3usize);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }
}
