//! Offline stand-in for the `wide` crate: a portable 8-lane f32 vector.
//!
//! The real crate wraps platform intrinsics; this shim is plain Rust over a
//! fixed-size array with `#[inline(always)]` element-wise ops, which the
//! autovectorizer lowers to SSE/AVX on x86 and NEON on aarch64. Lane
//! semantics are strict IEEE-754 single rounding per operation (no FMA
//! contraction), so results are reproducible across platforms and identical
//! to the equivalent scalar expression evaluated lane by lane.

/// Eight `f32` lanes operated on element-wise.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C, align(32))]
pub struct f32x8([f32; 8]);

impl f32x8 {
    /// All lanes zero.
    pub const ZERO: Self = Self([0.0; 8]);

    /// Number of lanes.
    pub const LANES: usize = 8;

    /// Broadcasts `v` into every lane.
    #[inline(always)]
    #[must_use]
    pub fn splat(v: f32) -> Self {
        Self([v; 8])
    }

    /// Loads the first 8 elements of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() < 8`.
    #[inline(always)]
    #[must_use]
    pub fn from_slice(s: &[f32]) -> Self {
        let mut lanes = [0.0f32; 8];
        lanes.copy_from_slice(&s[..8]);
        Self(lanes)
    }

    /// Stores the lanes into the first 8 elements of `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < 8`.
    #[inline(always)]
    pub fn write_to_slice(self, out: &mut [f32]) {
        out[..8].copy_from_slice(&self.0);
    }

    /// `self * a + b`, element-wise, with separate mul and add roundings
    /// (no fused multiply-add), matching the scalar `x * a + b`.
    #[inline(always)]
    #[must_use]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] * a.0[i] + b.0[i]))
    }

    /// Horizontal sum with a fixed pairwise reduction order:
    /// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
    ///
    /// The order is deterministic and independent of how the vector was
    /// built, so reductions are reproducible run to run.
    #[inline(always)]
    #[must_use]
    pub fn reduce_add(self) -> f32 {
        let l = &self.0;
        let a = l[0] + l[4];
        let b = l[1] + l[5];
        let c = l[2] + l[6];
        let d = l[3] + l[7];
        (a + c) + (b + d)
    }

    /// The lanes as an array.
    #[inline(always)]
    #[must_use]
    pub fn to_array(self) -> [f32; 8] {
        self.0
    }
}

impl std::ops::Add for f32x8 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] + rhs.0[i]))
    }
}

impl std::ops::Sub for f32x8 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] - rhs.0[i]))
    }
}

impl std::ops::Mul for f32x8 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] * rhs.0[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_array_round_trip() {
        let v = f32x8::splat(2.5);
        assert_eq!(v.to_array(), [2.5; 8]);
    }

    #[test]
    fn slice_round_trip() {
        let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let v = f32x8::from_slice(&data[1..]);
        let mut out = [0.0f32; 9];
        v.write_to_slice(&mut out);
        assert_eq!(&out[..8], &data[1..9]);
        assert_eq!(out[8], 0.0);
    }

    #[test]
    fn mul_add_matches_scalar_expression() {
        let a = f32x8::from_slice(&[1.5, -2.0, 3.25, 0.0, 7.0, -0.5, 2.0, 9.0]);
        let b = f32x8::from_slice(&[0.5, 4.0, -1.0, 2.0, 3.0, 6.0, -2.5, 1.0]);
        let c = f32x8::splat(0.125);
        let r = a.mul_add(b, c).to_array();
        let av = a.to_array();
        let bv = b.to_array();
        for i in 0..8 {
            assert_eq!(r[i], av[i] * bv[i] + 0.125f32);
        }
    }

    #[test]
    fn reduce_add_is_fixed_order() {
        let v = f32x8::from_slice(&[1e8, 1.0, -1e8, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let l = v.to_array();
        let expect = ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
        assert_eq!(v.reduce_add(), expect);
    }

    #[test]
    fn elementwise_ops() {
        let a = f32x8::splat(3.0);
        let b = f32x8::splat(2.0);
        assert_eq!((a + b).to_array(), [5.0; 8]);
        assert_eq!((a - b).to_array(), [1.0; 8]);
        assert_eq!((a * b).to_array(), [6.0; 8]);
    }
}
