//! Offline stand-in for the subset of `criterion` used by the workspace
//! benches: `criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, and `Bencher::iter`.
//!
//! Timing is a simple fixed-budget loop (short warm-up, then measured
//! iterations) printed as `ns/iter` — good enough for relative comparisons
//! without the statistics machinery of the real crate.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

/// A named benchmark id, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new<N: Into<String>, P: Display>(function_name: N, parameter: P) -> Self {
        let function_name = function_name.into();
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks `f` with no input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group (formatting no-op here).
    pub fn finish(self) {}
}

/// Runs and times one benchmark closure, mirroring `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up, untimed.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        // Measure until ~20 ms or 1000 iterations, whichever comes first.
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < 1000 && start.elapsed().as_millis() < 20 {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.total_ns = start.elapsed().as_nanos();
        self.iters = iters.max(1);
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    let per_iter = b.total_ns / u128::from(b.iters);
    println!("bench {label}: {per_iter} ns/iter ({} iters)", b.iters);
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )*
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; ignore them.
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut b = Bencher::default();
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(n > 3, "routine should run at least once past warm-up");
        assert!(b.iters >= 1);
    }

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
