//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace: the `proptest!` macro, integer-range / tuple / mapped /
//! one-of / vec / bool strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Semantics: each test function runs `cases` deterministic random cases
//! (seeded from the test's module path and name, so failures reproduce
//! across runs). There is no shrinking — a failing case reports the exact
//! generated inputs instead.

use std::fmt::Debug;

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic generator driving value strategies.
pub mod test_runner {
    /// SplitMix64 stream seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for case `case` of test `name`.
        #[must_use]
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating random values, mirroring `proptest::Strategy`
/// (generation only; no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A mapped strategy; see [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Object-safe strategy used by [`BoxedStrategy`] and `prop_oneof!`.
pub trait DynStrategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value through a trait object.
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate_dyn(rng)
    }
}

/// A uniform choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms`; each arm is equally likely.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_in(0, self.arms.len());
        self.arms[i].generate_dyn(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range");
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates `Vec`s of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runs each annotated function as a property over random cases.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..10, v in proptest::collection::vec(0u32..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let __vals = ( $( $crate::Strategy::generate(&($strat), &mut __rng), )* );
                    let __desc = ::std::format!("{:#?}", __vals);
                    let ( $($arg,)* ) = __vals;
                    let __res = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body })
                    );
                    if let ::std::result::Result::Err(__err) = __res {
                        ::std::eprintln!(
                            "proptest: {} failed at case {}/{} with inputs:\n{}",
                            stringify!($name), __case, __cfg.cases, __desc,
                        );
                        ::std::panic::resume_unwind(__err);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property, reporting the generated inputs on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![ $( $crate::Strategy::boxed($strat), )* ])
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = (1usize..40, 0u64..1000).prop_map(|(a, b)| (a * 2, b));
        let mut r1 = TestRng::for_case("t", 3);
        let mut r2 = TestRng::for_case("t", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![
            (0usize..1).prop_map(|_| 'a'),
            (0usize..1).prop_map(|_| 'b'),
            (0usize..1).prop_map(|_| 'c'),
        ];
        let mut rng = TestRng::for_case("cover", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_ranges_and_vecs(
            x in 1usize..9,
            v in crate::collection::vec(0u32..5, 1..6),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((1..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert_eq!(flag as u8 <= 1, true);
            prop_assert_ne!(x, 0);
        }
    }
}
