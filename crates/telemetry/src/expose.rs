//! Snapshot exposition: Prometheus-style text and JSON.
//!
//! Both formats are *lossless*: `from_prometheus_text(to_prometheus_text(s))`
//! and `from_json(to_json(s))` reproduce the snapshot exactly (floats are
//! written with Rust's shortest-round-trip formatting). To keep the text
//! format self-contained, histograms emit two nonstandard lines —
//! `<name>_min` and `<name>_max` — alongside the standard cumulative
//! `_bucket{le=...}` / `_sum` / `_count` series; standard Prometheus
//! scrapers ignore unknown series, and our parser uses them to restore the
//! observed extrema.

use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::json::Json;

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter value.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(f64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            Self::Counter(_) => "counter",
            Self::Gauge(_) => "gauge",
            Self::Histogram(_) => "histogram",
        }
    }
}

/// One named metric with its help string and value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Metric name (`vllm_<layer>_<quantity>...`).
    pub name: String,
    /// One-line description.
    pub help: String,
    /// Snapshot value.
    pub value: MetricValue,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The metrics, in name order.
    pub metrics: Vec<MetricEntry>,
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    let mut chars = help.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl MetricsSnapshot {
    /// Looks up a metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricEntry> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The counter value of `name`, if present and a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The gauge value of `name`, if present and a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// The histogram state of `name`, if present and a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match &self.get(name)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Renders the snapshot in Prometheus text exposition format (plus the
    /// nonstandard `_min`/`_max` histogram lines described in the module
    /// docs).
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.value.type_name());
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {}", m.name, v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {}", m.name, v);
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (bound, count) in h.bounds.iter().zip(&h.counts) {
                        cumulative += count;
                        let _ =
                            writeln!(out, "{}_bucket{{le=\"{}\"}} {}", m.name, bound, cumulative);
                    }
                    cumulative += h.counts.last().copied().unwrap_or(0);
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, cumulative);
                    let _ = writeln!(out, "{}_sum {}", m.name, h.sum);
                    let _ = writeln!(out, "{}_count {}", m.name, h.count);
                    let _ = writeln!(out, "{}_min {}", m.name, h.min);
                    let _ = writeln!(out, "{}_max {}", m.name, h.max);
                }
            }
        }
        out
    }

    /// Parses text produced by [`Self::to_prometheus_text`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn from_prometheus_text(text: &str) -> Result<Self, String> {
        let mut metrics = Vec::new();
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            let help_rest = line
                .strip_prefix("# HELP ")
                .ok_or_else(|| format!("expected '# HELP', got {line:?}"))?;
            let (name, help) = help_rest
                .split_once(' ')
                .map_or((help_rest, ""), |(n, h)| (n, h));
            let name = name.to_string();
            let help = unescape_help(help);
            let type_line = lines.next().ok_or("missing '# TYPE' line")?;
            let kind = type_line
                .strip_prefix(&format!("# TYPE {name} "))
                .ok_or_else(|| format!("expected '# TYPE {name} ...', got {type_line:?}"))?;
            let value = match kind {
                "counter" | "gauge" => {
                    let sample = lines.next().ok_or("missing sample line")?;
                    let v = sample
                        .strip_prefix(&format!("{name} "))
                        .ok_or_else(|| format!("bad sample line {sample:?}"))?;
                    if kind == "counter" {
                        MetricValue::Counter(
                            v.parse().map_err(|e| format!("bad counter {v:?}: {e}"))?,
                        )
                    } else {
                        MetricValue::Gauge(v.parse().map_err(|e| format!("bad gauge {v:?}: {e}"))?)
                    }
                }
                "histogram" => MetricValue::Histogram(parse_histogram_block(&name, &mut lines)?),
                other => return Err(format!("unknown metric type {other:?}")),
            };
            metrics.push(MetricEntry { name, help, value });
        }
        Ok(Self { metrics })
    }

    /// Renders the snapshot as a single-line JSON document. Histograms
    /// additionally carry a derived `quantiles` object (p50/p90/p99/p999)
    /// for human consumption; parsing ignores it.
    #[must_use]
    pub fn to_json(&self) -> String {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let mut pairs = vec![
                    ("name", Json::Str(m.name.clone())),
                    ("help", Json::Str(m.help.clone())),
                    ("type", Json::Str(m.value.type_name().to_string())),
                ];
                match &m.value {
                    MetricValue::Counter(v) => pairs.push(("value", Json::Num(*v as f64))),
                    MetricValue::Gauge(v) => pairs.push(("value", Json::Num(*v))),
                    MetricValue::Histogram(h) => {
                        pairs.push(("count", Json::Num(h.count as f64)));
                        pairs.push(("sum", Json::Num(h.sum)));
                        pairs.push(("min", Json::Num(h.min)));
                        pairs.push(("max", Json::Num(h.max)));
                        pairs.push((
                            "bounds",
                            Json::Arr(h.bounds.iter().map(|b| Json::Num(*b)).collect()),
                        ));
                        pairs.push((
                            "counts",
                            Json::Arr(h.counts.iter().map(|c| Json::Num(*c as f64)).collect()),
                        ));
                        let q = |p: f64| Json::Num(h.quantile(p).unwrap_or(0.0));
                        pairs.push((
                            "quantiles",
                            Json::obj(vec![
                                ("p50", q(0.50)),
                                ("p90", q(0.90)),
                                ("p99", q(0.99)),
                                ("p999", q(0.999)),
                            ]),
                        ));
                    }
                }
                Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            })
            .collect();
        Json::obj(vec![("metrics", Json::Arr(metrics))]).to_string()
    }

    /// Parses a document produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or missing fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let items = doc
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("missing 'metrics' array")?;
        let mut metrics = Vec::with_capacity(items.len());
        for item in items {
            let field = |key: &str| {
                item.get(key)
                    .ok_or_else(|| format!("metric missing {key:?}"))
            };
            let name = field("name")?
                .as_str()
                .ok_or("'name' not a string")?
                .to_string();
            let help = field("help")?
                .as_str()
                .ok_or("'help' not a string")?
                .to_string();
            let kind = field("type")?.as_str().ok_or("'type' not a string")?;
            let value = match kind {
                "counter" => {
                    MetricValue::Counter(field("value")?.as_u64().ok_or("counter value not a u64")?)
                }
                "gauge" => {
                    MetricValue::Gauge(field("value")?.as_f64().ok_or("gauge value not a number")?)
                }
                "histogram" => {
                    let nums = |key: &str| -> Result<Vec<f64>, String> {
                        field(key)?
                            .as_arr()
                            .ok_or_else(|| format!("{key:?} not an array"))?
                            .iter()
                            .map(|v| v.as_f64().ok_or_else(|| format!("non-number in {key:?}")))
                            .collect()
                    };
                    MetricValue::Histogram(HistogramSnapshot {
                        bounds: nums("bounds")?,
                        counts: nums("counts")?.into_iter().map(|c| c as u64).collect(),
                        count: field("count")?.as_u64().ok_or("'count' not a u64")?,
                        sum: field("sum")?.as_f64().ok_or("'sum' not a number")?,
                        min: field("min")?.as_f64().ok_or("'min' not a number")?,
                        max: field("max")?.as_f64().ok_or("'max' not a number")?,
                    })
                }
                other => return Err(format!("unknown metric type {other:?}")),
            };
            metrics.push(MetricEntry { name, help, value });
        }
        Ok(Self { metrics })
    }
}

/// Parses one histogram's sample block (`_bucket`/`_sum`/`_count`/`_min`/
/// `_max` lines) from the text exposition.
fn parse_histogram_block<'a, I>(
    name: &str,
    lines: &mut std::iter::Peekable<I>,
) -> Result<HistogramSnapshot, String>
where
    I: Iterator<Item = &'a str>,
{
    let bucket_prefix = format!("{name}_bucket{{le=\"");
    let mut bounds = Vec::new();
    let mut cumulative = Vec::new();
    while let Some(line) = lines.peek() {
        let Some(rest) = line.strip_prefix(&bucket_prefix) else {
            break;
        };
        let (le, count_text) = rest
            .split_once("\"} ")
            .ok_or_else(|| format!("bad bucket line {line:?}"))?;
        let count: u64 = count_text
            .parse()
            .map_err(|e| format!("bad bucket count {count_text:?}: {e}"))?;
        if le != "+Inf" {
            bounds.push(
                le.parse::<f64>()
                    .map_err(|e| format!("bad bucket bound {le:?}: {e}"))?,
            );
        }
        cumulative.push(count);
        lines.next();
    }
    if cumulative.len() != bounds.len() + 1 {
        return Err(format!("histogram {name} missing '+Inf' bucket"));
    }
    // De-cumulate the bucket counts.
    let counts: Vec<u64> = cumulative
        .iter()
        .scan(0u64, |prev, &c| {
            let delta = c.checked_sub(*prev);
            *prev = c;
            Some(delta)
        })
        .collect::<Option<_>>()
        .ok_or_else(|| format!("histogram {name} buckets not cumulative"))?;
    let mut scalar = |suffix: &str| -> Result<f64, String> {
        let line = lines
            .next()
            .ok_or_else(|| format!("histogram {name} missing _{suffix} line"))?;
        line.strip_prefix(&format!("{name}_{suffix} "))
            .ok_or_else(|| format!("expected {name}_{suffix}, got {line:?}"))?
            .parse()
            .map_err(|e| format!("bad {name}_{suffix}: {e}"))
    };
    let sum = scalar("sum")?;
    let count = scalar("count")? as u64;
    let min = scalar("min")?;
    let max = scalar("max")?;
    Ok(HistogramSnapshot {
        bounds,
        counts,
        count,
        sum,
        min,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::BucketSpec;
    use crate::registry::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter("vllm_engine_steps_total", "Engine steps executed.")
            .inc_by(17);
        r.gauge(
            "vllm_block_manager_fragmentation_ratio",
            "Unused slot fraction.",
        )
        .set(0.0625);
        let h = r.histogram(
            "vllm_request_ttft_seconds",
            "Time to first token, with \\ and\nnewline in help.",
            BucketSpec::seconds(),
        );
        for i in 1..=100 {
            h.observe(f64::from(i) * 1e-3);
        }
        h.observe(1e9); // overflow bucket
        r.snapshot()
    }

    #[test]
    fn text_exposition_round_trips() {
        let snap = sample_snapshot();
        let text = snap.to_prometheus_text();
        assert!(text.contains("# TYPE vllm_engine_steps_total counter"));
        assert!(text.contains("vllm_engine_steps_total 17"));
        assert!(text.contains("# TYPE vllm_request_ttft_seconds histogram"));
        assert!(text.contains("vllm_request_ttft_seconds_bucket{le=\"+Inf\"} 101"));
        assert!(text.contains("vllm_request_ttft_seconds_count 101"));
        let parsed = MetricsSnapshot::from_prometheus_text(&text).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn json_exposition_round_trips() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"quantiles\""));
        let parsed = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn text_and_json_agree() {
        let snap = sample_snapshot();
        let via_text = MetricsSnapshot::from_prometheus_text(&snap.to_prometheus_text()).unwrap();
        let via_json = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(via_text, via_json);
    }

    #[test]
    fn accessors_find_metrics() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("vllm_engine_steps_total"), Some(17));
        assert_eq!(
            snap.gauge("vllm_block_manager_fragmentation_ratio"),
            Some(0.0625)
        );
        let h = snap.histogram("vllm_request_ttft_seconds").unwrap();
        assert_eq!(h.count, 101);
        assert!(h.is_consistent());
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("vllm_engine_steps_total"), None);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(MetricsSnapshot::from_prometheus_text("random text").is_err());
        assert!(MetricsSnapshot::from_json("{}").is_err());
        assert!(MetricsSnapshot::from_json("{\"metrics\":[{\"name\":\"x\"}]}").is_err());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot::default();
        assert_eq!(
            MetricsSnapshot::from_prometheus_text(&snap.to_prometheus_text()).unwrap(),
            snap
        );
        assert_eq!(MetricsSnapshot::from_json(&snap.to_json()).unwrap(), snap);
    }
}
