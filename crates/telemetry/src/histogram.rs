//! Log-linear-bucket histograms with quantile estimation.
//!
//! Buckets follow the HdrHistogram layout: the value range is split into
//! octaves (powers of two above a configurable start), and each octave is
//! split into a fixed number of linear sub-buckets. This keeps relative
//! quantile error bounded (≈ 1/sub_buckets within an octave) over many
//! orders of magnitude with a fixed, small bucket count — microsecond stage
//! timings and multi-second tail latencies share one layout.

use std::sync::Arc;

use parking_lot::Mutex;

/// Bucket layout of a log-linear histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSpec {
    /// Upper bound of the first bucket; values at or below it land there.
    pub start: f64,
    /// Number of powers of two covered above `start`.
    pub octaves: u32,
    /// Linear sub-buckets per octave.
    pub sub_buckets: u32,
}

impl BucketSpec {
    /// Layout for durations in seconds: 1 µs to ~4300 s at ≤ 25% relative
    /// bucket width (32 octaves × 4 sub-buckets).
    #[must_use]
    pub fn seconds() -> Self {
        Self {
            start: 1e-6,
            octaves: 32,
            sub_buckets: 4,
        }
    }

    /// Layout for dimensionless ratios in [0, 1]-ish ranges: 1e-4 to ~6.5
    /// at fine resolution.
    #[must_use]
    pub fn ratio() -> Self {
        Self {
            start: 1e-4,
            octaves: 16,
            sub_buckets: 4,
        }
    }

    /// The increasing bucket upper bounds (excluding the implicit +Inf
    /// overflow bucket).
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (`start <= 0`, zero octaves or
    /// sub-buckets).
    #[must_use]
    pub fn bounds(&self) -> Vec<f64> {
        assert!(
            self.start > 0.0 && self.octaves > 0 && self.sub_buckets > 0,
            "degenerate bucket spec {self:?}"
        );
        let mut bounds = Vec::with_capacity(1 + (self.octaves * self.sub_buckets) as usize);
        bounds.push(self.start);
        for octave in 0..self.octaves {
            let base = self.start * 2f64.powi(octave as i32);
            for sub in 1..=self.sub_buckets {
                bounds.push(base * (1.0 + f64::from(sub) / f64::from(self.sub_buckets)));
            }
        }
        bounds
    }
}

#[derive(Debug)]
struct HistData {
    counts: Vec<u64>, // one per bound, plus a trailing overflow bucket
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A concurrent log-linear histogram. Clones share the same storage.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Arc<Vec<f64>>,
    data: Arc<Mutex<HistData>>,
}

impl Histogram {
    /// Creates an empty histogram with the given bucket layout.
    #[must_use]
    pub fn new(spec: BucketSpec) -> Self {
        let bounds = spec.bounds();
        let n = bounds.len() + 1;
        Self {
            bounds: Arc::new(bounds),
            data: Arc::new(Mutex::new(HistData {
                counts: vec![0; n],
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            })),
        }
    }

    /// Records one observation. Non-finite values are ignored; values at or
    /// below the first bound land in the first bucket.
    pub fn observe(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|b| *b < value);
        let mut d = self.data.lock();
        d.counts[idx] += 1;
        d.count += 1;
        d.sum += value;
        d.min = d.min.min(value);
        d.max = d.max.max(value);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.data.lock().count
    }

    /// A consistent point-in-time copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let d = self.data.lock();
        HistogramSnapshot {
            bounds: self.bounds.as_ref().clone(),
            counts: d.counts.clone(),
            count: d.count,
            sum: d.sum,
            min: if d.count == 0 { 0.0 } else { d.min },
            max: if d.count == 0 { 0.0 } else { d.max },
        }
    }
}

/// Immutable histogram state: per-bucket counts (the last entry is the +Inf
/// overflow bucket), totals, and observed extrema.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Increasing bucket upper bounds (no +Inf entry).
    pub bounds: Vec<f64>,
    /// Non-cumulative bucket counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean of the observed values, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the containing bucket, clamped to the observed `[min, max]`.
    /// Quantiles landing in the +Inf overflow bucket are clamped to the top
    /// finite bound (the layout cannot resolve positions beyond it).
    /// Returns `None` when empty or `q` is out of range.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * self.count as f64;
        let mut cumulative = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let previous = cumulative;
            cumulative += c as f64;
            if cumulative >= target {
                if i >= self.bounds.len() {
                    // Overflow bucket: clamp into the top finite bound
                    // rather than interpolating toward an unbounded max.
                    return self.bounds.last().copied();
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let frac = ((target - previous) / c as f64).clamp(0.0, 1.0);
                let v = lower + frac * (upper - lower);
                return Some(v.clamp(self.min, self.max));
            }
        }
        Some(
            self.max
                .min(self.bounds.last().copied().unwrap_or(self.max)),
        )
    }

    /// Merges another snapshot recorded with the same bucket layout into
    /// this one.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if the bucket layouts differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "bucket layout mismatch: {} vs {} bounds",
                self.bounds.len(),
                other.bounds.len()
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        match (self.count, other.count) {
            (_, 0) => {}
            (0, _) => {
                self.min = other.min;
                self.max = other.max;
            }
            _ => {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        Ok(())
    }

    /// Internal consistency: bucket counts sum to `count` and the layout
    /// lengths line up (used by CI sanity checks).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.counts.len() == self.bounds.len() + 1
            && self.counts.iter().sum::<u64>() == self.count
            && self.bounds.windows(2).all(|w| w[0] < w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> BucketSpec {
        BucketSpec {
            start: 1.0,
            octaves: 3,
            sub_buckets: 2,
        }
    }

    #[test]
    fn bounds_are_log_linear_and_increasing() {
        // start=1, 3 octaves × 2 sub-buckets: 1, 1.5, 2, 3, 4, 6, 8.
        let bounds = tiny_spec().bounds();
        assert_eq!(bounds, vec![1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0]);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let secs = BucketSpec::seconds().bounds();
        assert!(secs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(secs.len(), 1 + 32 * 4);
    }

    #[test]
    fn boundary_values_land_in_lower_bucket() {
        let h = Histogram::new(tiny_spec());
        // Exactly on a bound → that bucket (le semantics).
        h.observe(1.0);
        h.observe(1.5);
        h.observe(2.0);
        // Strictly above a bound → next bucket.
        h.observe(2.0000001);
        // Below start → first bucket; above the top → overflow.
        h.observe(0.001);
        h.observe(100.0);
        let s = h.snapshot();
        assert_eq!(s.counts[0], 2); // 1.0 and 0.001
        assert_eq!(s.counts[1], 1); // 1.5
        assert_eq!(s.counts[2], 1); // 2.0
        assert_eq!(s.counts[3], 1); // 2.0000001
        assert_eq!(*s.counts.last().unwrap(), 1); // 100.0 overflow
        assert_eq!(s.count, 6);
        assert!(s.is_consistent());
    }

    #[test]
    fn non_finite_observations_ignored() {
        let h = Histogram::new(tiny_spec());
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
        let s = h.snapshot();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new(BucketSpec::seconds());
        for i in 1..=1000 {
            h.observe(f64::from(i) * 1e-3); // 1 ms .. 1 s uniform
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5).unwrap();
        let p99 = s.quantile(0.99).unwrap();
        assert!((p50 - 0.5).abs() / 0.5 < 0.3, "p50 {p50}");
        assert!((p99 - 0.99).abs() / 0.99 < 0.3, "p99 {p99}");
        assert!(s.quantile(0.0).unwrap() >= s.min);
        assert!(s.quantile(1.0).unwrap() <= s.max);
        assert!(p50 <= p99);
        assert_eq!(s.quantile(1.5), None);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new(tiny_spec()).snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.quantile(0.0), None);
        assert_eq!(s.quantile(1.0), None);
        assert_eq!(s.mean(), None);
        assert!(s.is_consistent());
    }

    #[test]
    fn single_sample_quantiles_return_the_sample() {
        let h = Histogram::new(tiny_spec());
        h.observe(3.5);
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(3.5), "q={q}");
        }
        assert_eq!(s.quantile(-0.1), None);
        assert_eq!(s.quantile(1.1), None);
    }

    #[test]
    fn overflow_samples_clamp_to_top_bound() {
        let spec = tiny_spec(); // top finite bound is 8.0
        let h = Histogram::new(spec);
        h.observe(1e12);
        h.observe(2e12);
        let s = h.snapshot();
        // Every quantile resolves to the top finite bound, never the raw
        // (unresolvable) overflow values.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(8.0), "q={q}");
        }
        // Mixed: half in range, half overflowing — the upper quantiles
        // still clamp to the top bound.
        let h = Histogram::new(tiny_spec());
        h.observe(2.0);
        h.observe(1e12);
        let s = h.snapshot();
        assert_eq!(s.quantile(1.0), Some(8.0));
        assert!(s.quantile(0.25).unwrap() <= 2.0);
    }

    #[test]
    fn merge_adds_counts_and_extrema() {
        let a = Histogram::new(tiny_spec());
        let b = Histogram::new(tiny_spec());
        a.observe(1.0);
        a.observe(4.0);
        b.observe(7.0);
        let mut s = a.snapshot();
        s.merge(&b.snapshot()).unwrap();
        assert_eq!(s.count, 3);
        assert!((s.sum - 12.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 7.0);
        assert!(s.is_consistent());
    }

    #[test]
    fn merge_rejects_layout_mismatch() {
        let a = Histogram::new(tiny_spec());
        let b = Histogram::new(BucketSpec::seconds());
        let mut s = a.snapshot();
        assert!(s.merge(&b.snapshot()).is_err());
    }

    #[test]
    fn merge_into_empty_takes_other_extrema() {
        let a = Histogram::new(tiny_spec());
        let b = Histogram::new(tiny_spec());
        b.observe(3.0);
        let mut s = a.snapshot();
        s.merge(&b.snapshot()).unwrap();
        assert_eq!((s.min, s.max), (3.0, 3.0));
    }
}
