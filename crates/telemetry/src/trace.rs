//! Request-scoped distributed tracing: trace contexts, spans, a bounded
//! span log, and exporters.
//!
//! A [`TraceContext`] is minted when a request is admitted (or by the
//! router, for cluster runs) and carries three things on the wire: the
//! 64-bit trace id shared by every span of the request, the span id of the
//! current enclosing span, and the sampling decision. Ids derive from
//! [`splitmix64`] seeded by a hash of the request id, so simulated runs
//! mint identical ids on every replay and retries of the same request get
//! deterministic sibling span ids.
//!
//! Spans land in a [`SpanLog`] — a bounded ring buffer mirroring
//! [`crate::EventLog`] — and are exported either as a one-line JSON
//! document ([`spans_to_json`]) or as Chrome trace-event JSON
//! ([`spans_to_chrome_trace`]) loadable in Perfetto, with one track per
//! replica/worker thread.

use std::collections::{HashMap, HashSet, VecDeque};

use parking_lot::Mutex;

use crate::json::Json;

/// Default span ring-buffer capacity (spans, across all traces).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// One round of the splitmix64 mixing function: a bijective, statistically
/// strong 64-bit mixer. Used to derive trace/span ids deterministically.
#[must_use]
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a request id, used to seed trace-id minting so the same
/// request id always produces the same trace id.
#[must_use]
pub fn trace_seed(request_id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in request_id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn nonzero(id: u64) -> u64 {
    if id == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        id
    }
}

/// The per-request trace context propagated across layers and the wire.
///
/// `span_id` names the span this context currently represents (the request
/// root when minted, an attempt span after [`TraceContext::child`]);
/// `parent_span_id` is 0 for a root. A context with `trace_id == 0` is
/// inactive (the default for requests created before tracing attaches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id shared by every span of the request (0 = no trace).
    pub trace_id: u64,
    /// Id of the span this context represents.
    pub span_id: u64,
    /// Id of the parent span (0 = this is a root span).
    pub parent_span_id: u64,
    /// Whether spans should be recorded for this trace.
    pub sampled: bool,
}

impl TraceContext {
    /// Mints a root context deterministically from `seed` (typically
    /// [`trace_seed`] of the request id).
    #[must_use]
    pub fn mint(seed: u64, sampled: bool) -> Self {
        let trace_id = nonzero(splitmix64(seed));
        let span_id = nonzero(splitmix64(trace_id));
        Self {
            trace_id,
            span_id,
            parent_span_id: 0,
            sampled,
        }
    }

    /// Derives the child context for deterministic child slot `slot`. The
    /// same `(span_id, slot)` always yields the same child span id, so
    /// span trees reassemble identically across replays.
    #[must_use]
    pub fn child(&self, slot: u64) -> Self {
        let span_id = nonzero(splitmix64(
            self.span_id ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ));
        Self {
            trace_id: self.trace_id,
            span_id,
            parent_span_id: self.span_id,
            sampled: self.sampled,
        }
    }

    /// Whether this context records spans (non-zero trace id and sampled).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.trace_id != 0 && self.sampled
    }

    /// Wire encoding: `<trace_id:016x>-<span_id:016x>-<0|1>`.
    #[must_use]
    pub fn to_wire(&self) -> String {
        format!(
            "{:016x}-{:016x}-{}",
            self.trace_id,
            self.span_id,
            u8::from(self.sampled)
        )
    }

    /// Parses the wire encoding produced by [`TraceContext::to_wire`]. The
    /// parent span id is not carried on the wire and parses as 0.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn from_wire(s: &str) -> Result<Self, String> {
        let mut parts = s.split('-');
        let (trace, span, flag) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(t), Some(sp), Some(f), None) => (t, sp, f),
            _ => return Err(format!("expected <trace>-<span>-<flag>, got {s:?}")),
        };
        let trace_id =
            u64::from_str_radix(trace, 16).map_err(|_| format!("bad trace id {trace:?}"))?;
        let span_id = u64::from_str_radix(span, 16).map_err(|_| format!("bad span id {span:?}"))?;
        let sampled = match flag {
            "0" => false,
            "1" => true,
            other => return Err(format!("bad sampled flag {other:?}")),
        };
        if trace_id == 0 {
            return Err("trace id must be non-zero".to_string());
        }
        Ok(Self {
            trace_id,
            span_id,
            parent_span_id: 0,
            sampled,
        })
    }
}

/// One recorded span: a named `[start, end]` interval on the serving clock
/// (instant events have `start == end`). Spans with `trace_id == 0` are
/// process-scoped annotations (step stages, cache ops, fault events) rather
/// than members of a request's tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Trace the span belongs to (0 = untraced process annotation).
    pub trace_id: u64,
    /// Unique span id within the trace.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_span_id: u64,
    /// Span name, e.g. `queue`, `prefill`, `kernel:forward`.
    pub name: String,
    /// Start time in seconds (serving clock).
    pub start: f64,
    /// End time in seconds (serving clock); `== start` for instant events.
    pub end: f64,
    /// Free-form `key=value` attributes.
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Span duration in seconds, clamped to be non-negative.
    #[must_use]
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

#[derive(Debug)]
struct SpanBuf {
    spans: VecDeque<Span>,
    total: u64,
    dropped: u64,
}

/// Bounded, thread-safe ring buffer of [`Span`]s. When full, the oldest
/// span is evicted and counted in [`SpanLog::total_dropped`].
#[derive(Debug)]
pub struct SpanLog {
    capacity: usize,
    buf: Mutex<SpanBuf>,
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanLog {
    /// Creates a log keeping at most `capacity` spans (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buf: Mutex::new(SpanBuf {
                spans: VecDeque::new(),
                total: 0,
                dropped: 0,
            }),
        }
    }

    /// Maximum number of retained spans.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a span, evicting the oldest one if the buffer is full.
    pub fn record(&self, span: Span) {
        let mut buf = self.buf.lock();
        if buf.spans.len() == self.capacity {
            buf.spans.pop_front();
            buf.dropped += 1;
        }
        buf.spans.push_back(span);
        buf.total += 1;
    }

    /// All retained spans, in append order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Span> {
        self.buf.lock().spans.iter().cloned().collect()
    }

    /// All retained spans belonging to `trace_id`, in append order.
    #[must_use]
    pub fn spans_for_trace(&self, trace_id: u64) -> Vec<Span> {
        self.buf
            .lock()
            .spans
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// Number of currently retained spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.lock().spans.len()
    }

    /// Whether the log holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.lock().spans.is_empty()
    }

    /// Spans ever recorded (including evicted ones).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.buf.lock().total
    }

    /// Spans evicted because the buffer was full.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.buf.lock().dropped
    }
}

fn span_to_json(span: &Span) -> Json {
    let mut pairs = vec![
        ("trace_id", Json::Str(format!("{:016x}", span.trace_id))),
        ("span_id", Json::Str(format!("{:016x}", span.span_id))),
        (
            "parent_span_id",
            Json::Str(format!("{:016x}", span.parent_span_id)),
        ),
        ("name", Json::Str(span.name.clone())),
        ("start", Json::Num(span.start)),
        ("end", Json::Num(span.end)),
    ];
    if !span.attrs.is_empty() {
        pairs.push((
            "attrs",
            Json::Obj(
                span.attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    Json::obj(pairs)
}

/// Renders `(track name, spans)` pairs as a one-line JSON document in the
/// same style as the metrics exposition: `{"tracks": [{"track": ...,
/// "spans": [...]}]}`.
#[must_use]
pub fn spans_to_json(tracks: &[(String, Vec<Span>)]) -> Json {
    Json::obj(vec![(
        "tracks",
        Json::Arr(
            tracks
                .iter()
                .map(|(name, spans)| {
                    Json::obj(vec![
                        ("track", Json::Str(name.clone())),
                        ("spans", Json::Arr(spans.iter().map(span_to_json).collect())),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Renders `(track name, spans)` pairs as Chrome trace-event JSON, loadable
/// in Perfetto / `chrome://tracing`. Each track becomes one thread (`tid`)
/// under pid 0 with a `thread_name` metadata event; every span becomes one
/// complete (`"ph": "X"`) event with microsecond `ts`/`dur`.
#[must_use]
pub fn spans_to_chrome_trace(tracks: &[(String, Vec<Span>)]) -> Json {
    let mut events = Vec::new();
    for (tid, (name, spans)) in tracks.iter().enumerate() {
        events.push(Json::obj(vec![
            ("ph", Json::Str("M".to_string())),
            ("pid", Json::Num(0.0)),
            ("tid", Json::Num(tid as f64)),
            ("name", Json::Str("thread_name".to_string())),
            ("args", Json::obj(vec![("name", Json::Str(name.clone()))])),
        ]));
        for span in spans {
            let mut args = vec![
                (
                    "trace_id".to_string(),
                    Json::Str(format!("{:016x}", span.trace_id)),
                ),
                (
                    "span_id".to_string(),
                    Json::Str(format!("{:016x}", span.span_id)),
                ),
                (
                    "parent_span_id".to_string(),
                    Json::Str(format!("{:016x}", span.parent_span_id)),
                ),
            ];
            args.extend(
                span.attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
            );
            events.push(Json::obj(vec![
                ("ph", Json::Str("X".to_string())),
                ("pid", Json::Num(0.0)),
                ("tid", Json::Num(tid as f64)),
                ("name", Json::Str(span.name.clone())),
                ("cat", Json::Str("vllm".to_string())),
                ("ts", Json::Num(span.start * 1e6)),
                ("dur", Json::Num(span.duration() * 1e6)),
                ("args", Json::Obj(args)),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
}

/// Validates that `spans` form one complete, well-nested tree: unique span
/// ids, a single trace id, exactly one root, every parent resolvable, no
/// parent cycles, and every child interval contained in its parent's
/// (within a small epsilon for float accumulation).
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_span_tree(spans: &[Span]) -> Result<(), String> {
    const EPS: f64 = 1e-9;
    if spans.is_empty() {
        return Err("empty span set".to_string());
    }
    let trace_id = spans[0].trace_id;
    let mut by_id: HashMap<u64, &Span> = HashMap::new();
    let mut roots = 0usize;
    for span in spans {
        if span.trace_id != trace_id {
            return Err(format!(
                "mixed trace ids: {:016x} vs {:016x}",
                trace_id, span.trace_id
            ));
        }
        if by_id.insert(span.span_id, span).is_some() {
            return Err(format!("duplicate span id {:016x}", span.span_id));
        }
        if span.parent_span_id == 0 {
            roots += 1;
        }
        if span.end < span.start - EPS {
            return Err(format!("span {:?} ends before it starts", span.name));
        }
    }
    if roots != 1 {
        return Err(format!("expected exactly one root span, found {roots}"));
    }
    for span in spans {
        if span.parent_span_id == 0 {
            continue;
        }
        let parent = by_id.get(&span.parent_span_id).ok_or_else(|| {
            format!(
                "span {:?} has unresolvable parent {:016x}",
                span.name, span.parent_span_id
            )
        })?;
        if span.start < parent.start - EPS || span.end > parent.end + EPS {
            return Err(format!(
                "span {:?} [{}, {}] not nested in parent {:?} [{}, {}]",
                span.name, span.start, span.end, parent.name, parent.start, parent.end
            ));
        }
        // Walk to the root to reject parent cycles.
        let mut seen = HashSet::new();
        let mut cur = span.span_id;
        while cur != 0 {
            if !seen.insert(cur) {
                return Err(format!("parent cycle through span {cur:016x}"));
            }
            cur = by_id.get(&cur).map_or(0, |s| s.parent_span_id);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, start: f64, end: f64) -> Span {
        Span {
            trace_id: 7,
            span_id: id,
            parent_span_id: parent,
            name: name.to_string(),
            start,
            end,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn minting_is_deterministic_and_wire_round_trips() {
        let a = TraceContext::mint(trace_seed("req-1"), true);
        let b = TraceContext::mint(trace_seed("req-1"), true);
        assert_eq!(a, b);
        assert!(a.is_active());
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.span_id, 0);
        let c = TraceContext::mint(trace_seed("req-2"), true);
        assert_ne!(a.trace_id, c.trace_id);

        let parsed = TraceContext::from_wire(&a.to_wire()).unwrap();
        assert_eq!(parsed.trace_id, a.trace_id);
        assert_eq!(parsed.span_id, a.span_id);
        assert_eq!(parsed.sampled, a.sampled);

        assert!(TraceContext::from_wire("zz-00-1").is_err());
        assert!(TraceContext::from_wire("12-34").is_err());
        assert!(TraceContext::from_wire("12-34-2").is_err());
        assert!(TraceContext::from_wire("0000000000000000-0000000000000001-1").is_err());
    }

    #[test]
    fn child_slots_are_deterministic_and_distinct() {
        let root = TraceContext::mint(trace_seed("r"), true);
        let a = root.child(1);
        let b = root.child(2);
        assert_eq!(a, root.child(1));
        assert_ne!(a.span_id, b.span_id);
        assert_eq!(a.parent_span_id, root.span_id);
        assert_eq!(a.trace_id, root.trace_id);
        // Attempt siblings: same parent, distinct ids.
        let r0 = root.child(100);
        let r1 = root.child(101);
        assert_eq!(r0.parent_span_id, r1.parent_span_id);
        assert_ne!(r0.span_id, r1.span_id);
    }

    #[test]
    fn span_log_bounds_and_counts() {
        let log = SpanLog::with_capacity(3);
        for i in 0..5u64 {
            log.record(span(i + 1, 0, "s", i as f64, i as f64 + 1.0));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_recorded(), 5);
        assert_eq!(log.total_dropped(), 2);
        let retained = log.snapshot();
        assert_eq!(retained[0].span_id, 3);
        assert_eq!(log.spans_for_trace(7).len(), 3);
        assert_eq!(log.spans_for_trace(8).len(), 0);
    }

    #[test]
    fn validates_well_nested_tree() {
        let spans = vec![
            span(1, 0, "request", 0.0, 10.0),
            span(2, 1, "attempt", 0.0, 10.0),
            span(3, 2, "queue", 0.0, 2.0),
            span(4, 2, "decode", 2.0, 10.0),
            span(5, 4, "kernel", 2.0, 3.0),
        ];
        validate_span_tree(&spans).unwrap();
    }

    #[test]
    fn rejects_malformed_trees() {
        assert!(validate_span_tree(&[]).is_err());
        // Two roots.
        assert!(
            validate_span_tree(&[span(1, 0, "a", 0.0, 1.0), span(2, 0, "b", 0.0, 1.0)]).is_err()
        );
        // Unresolvable parent.
        assert!(
            validate_span_tree(&[span(1, 0, "a", 0.0, 1.0), span(2, 9, "b", 0.0, 1.0)]).is_err()
        );
        // Child escapes its parent interval.
        assert!(
            validate_span_tree(&[span(1, 0, "a", 0.0, 1.0), span(2, 1, "b", 0.5, 2.0)]).is_err()
        );
        // Duplicate ids.
        assert!(
            validate_span_tree(&[span(1, 0, "a", 0.0, 1.0), span(1, 1, "b", 0.0, 1.0)]).is_err()
        );
    }

    #[test]
    fn chrome_export_is_structurally_valid() {
        let tracks = vec![
            (
                "replica-0".to_string(),
                vec![span(1, 0, "attempt", 0.0, 1.5)],
            ),
            ("router".to_string(), vec![span(2, 1, "route", 0.0, 0.0)]),
        ];
        let doc = spans_to_chrome_trace(&tracks);
        let text = doc.to_string();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata + 2 span events.
        assert_eq!(events.len(), 4);
        let meta = &events[0];
        assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            meta.get("args").unwrap().get("name").unwrap().as_str(),
            Some("replica-0")
        );
        let ev = &events[1];
        assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(ev.get("ts").unwrap().as_f64(), Some(0.0));
        assert_eq!(ev.get("dur").unwrap().as_f64(), Some(1.5e6));

        let line = spans_to_json(&tracks).to_string();
        let parsed = Json::parse(&line).unwrap();
        let tracks_json = parsed.get("tracks").unwrap().as_arr().unwrap();
        assert_eq!(tracks_json.len(), 2);
        let first = tracks_json[0].get("spans").unwrap().as_arr().unwrap();
        assert_eq!(first[0].get("name").unwrap().as_str(), Some("attempt"));
    }
}
