//! # vllm-telemetry
//!
//! End-to-end serving telemetry for the PagedAttention reproduction. The
//! paper's whole evaluation (§6, Figs. 12–17) is read off serving-level
//! measurements — normalized latency distributions, batch occupancy, KV
//! utilization, preemption and swap activity — and this crate gives every
//! layer of the system one place to report them:
//!
//! * [`MetricsRegistry`] — a lock-cheap registry of named [`Counter`]s,
//!   [`Gauge`]s, and log-linear-bucket [`Histogram`]s. Handles are `Arc`ed
//!   and update via atomics (counters/gauges) or a short critical section
//!   (histograms); callers cache handles at construction so the hot path
//!   never touches the registry lock.
//! * [`EventLog`] — a bounded ring buffer of per-request lifecycle events
//!   (arrival → first schedule → per-iteration decode → preempt/swap →
//!   finish), queryable per request id.
//! * Exposition — [`MetricsSnapshot`] renders to a Prometheus-style text
//!   format ([`MetricsSnapshot::to_prometheus_text`]) and a JSON document
//!   ([`MetricsSnapshot::to_json`]); both formats parse back losslessly so
//!   snapshots can be diffed across processes and runs.
//!
//! Metric naming scheme: `vllm_<layer>_<quantity>[_<unit>][_total]` —
//! `_total` marks monotone counters, units are spelled out (`_seconds`,
//! `_blocks`), and `<layer>` is one of `engine`, `scheduler`,
//! `block_manager`, `executor`, `step`, `request`, or `sim`.

#![warn(missing_docs)]

mod events;
mod expose;
mod histogram;
mod json;
mod registry;

pub use events::{EventKind, EventLog, SeqEvent, DEFAULT_EVENT_CAPACITY};
pub use expose::{MetricEntry, MetricValue, MetricsSnapshot};
pub use histogram::{BucketSpec, Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricsRegistry};

/// The telemetry bundle one serving process shares across its layers: a
/// metrics registry plus a sequence-lifecycle event log.
///
/// Cheap to share (`Arc<Telemetry>`) and safe to update from any thread.
#[derive(Debug, Default)]
pub struct Telemetry {
    registry: MetricsRegistry,
    events: EventLog,
}

impl Telemetry {
    /// Creates a telemetry bundle with the default event-log capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a telemetry bundle whose event log keeps at most `capacity`
    /// events (oldest evicted first).
    #[must_use]
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            registry: MetricsRegistry::new(),
            events: EventLog::with_capacity(capacity),
        }
    }

    /// The metrics registry.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The sequence-lifecycle event log.
    #[must_use]
    pub fn events(&self) -> &EventLog {
        &self.events
    }
}
