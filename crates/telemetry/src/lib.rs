//! # vllm-telemetry
//!
//! End-to-end serving telemetry for the PagedAttention reproduction. The
//! paper's whole evaluation (§6, Figs. 12–17) is read off serving-level
//! measurements — normalized latency distributions, batch occupancy, KV
//! utilization, preemption and swap activity — and this crate gives every
//! layer of the system one place to report them:
//!
//! * [`MetricsRegistry`] — a lock-cheap registry of named [`Counter`]s,
//!   [`Gauge`]s, and log-linear-bucket [`Histogram`]s. Handles are `Arc`ed
//!   and update via atomics (counters/gauges) or a short critical section
//!   (histograms); callers cache handles at construction so the hot path
//!   never touches the registry lock.
//! * [`EventLog`] — a bounded ring buffer of per-request lifecycle events
//!   (arrival → first schedule → per-iteration decode → preempt/swap →
//!   finish), queryable per request id.
//! * [`SpanLog`] — a bounded ring buffer of [`Span`]s: request-scoped
//!   trace trees ([`TraceContext`]) plus untraced per-step annotations,
//!   exportable as one-line JSON ([`spans_to_json`]) or Chrome trace-event
//!   JSON ([`spans_to_chrome_trace`]) loadable in Perfetto.
//! * [`SloMonitor`] — evaluates TTFT/e2e/deadline-miss objectives against
//!   metric snapshots, publishing `vllm_slo_*` burn gauges and breach
//!   counters.
//! * Exposition — [`MetricsSnapshot`] renders to a Prometheus-style text
//!   format ([`MetricsSnapshot::to_prometheus_text`]) and a JSON document
//!   ([`MetricsSnapshot::to_json`]); both formats parse back losslessly so
//!   snapshots can be diffed across processes and runs.
//!
//! Metric naming scheme: `vllm_<layer>_<quantity>[_<unit>][_total]` —
//! `_total` marks monotone counters, units are spelled out (`_seconds`,
//! `_blocks`), and `<layer>` is one of `engine`, `scheduler`,
//! `block_manager`, `executor`, `step`, `request`, `slo`, or `sim`.

#![warn(missing_docs)]

mod events;
mod expose;
mod histogram;
mod json;
mod registry;
mod slo;
mod trace;

pub use events::{EventKind, EventLog, EventQuery, SeqEvent, DEFAULT_EVENT_CAPACITY};
pub use expose::{MetricEntry, MetricValue, MetricsSnapshot};
pub use histogram::{BucketSpec, Histogram, HistogramSnapshot};
pub use json::Json;
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use slo::{SloMonitor, SloObjectives, SloStatus};
pub use trace::{
    spans_to_chrome_trace, spans_to_json, splitmix64, trace_seed, validate_span_tree, Span,
    SpanLog, TraceContext, DEFAULT_SPAN_CAPACITY,
};

fn env_capacity(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|v| *v > 0)
        .unwrap_or(default)
}

/// The telemetry bundle one serving process shares across its layers: a
/// metrics registry, a sequence-lifecycle event log, and a span log.
///
/// Cheap to share (`Arc<Telemetry>`) and safe to update from any thread.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    events: EventLog,
    spans: SpanLog,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Creates a telemetry bundle. Ring-buffer capacities default to
    /// [`DEFAULT_EVENT_CAPACITY`] / [`DEFAULT_SPAN_CAPACITY`] and can be
    /// overridden with the `VLLM_EVENT_LOG_CAPACITY` and
    /// `VLLM_SPAN_LOG_CAPACITY` environment variables.
    #[must_use]
    pub fn new() -> Self {
        Self {
            registry: MetricsRegistry::new(),
            events: EventLog::with_capacity(env_capacity(
                "VLLM_EVENT_LOG_CAPACITY",
                DEFAULT_EVENT_CAPACITY,
            )),
            spans: SpanLog::with_capacity(env_capacity(
                "VLLM_SPAN_LOG_CAPACITY",
                DEFAULT_SPAN_CAPACITY,
            )),
        }
    }

    /// Creates a telemetry bundle whose event log keeps at most `capacity`
    /// events (oldest evicted first).
    #[must_use]
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            events: EventLog::with_capacity(capacity),
            ..Self::new()
        }
    }

    /// Creates a telemetry bundle whose span log keeps at most `capacity`
    /// spans (oldest evicted first).
    #[must_use]
    pub fn with_span_capacity(capacity: usize) -> Self {
        Self {
            spans: SpanLog::with_capacity(capacity),
            ..Self::new()
        }
    }

    /// The metrics registry.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The sequence-lifecycle event log.
    #[must_use]
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The span log.
    #[must_use]
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }
}
