//! Service-level-objective monitoring over metric snapshots.
//!
//! An [`SloMonitor`] holds configurable objectives — TTFT p99, end-to-end
//! p99, and a deadline-miss-rate budget — and evaluates them against a
//! [`MetricsSnapshot`]. Each evaluation publishes burn ratios
//! (`observed / objective`) as gauges and increments breach counters when
//! an objective is exceeded, so scrapes and CI gates can alert on
//! `vllm_slo_*` without re-deriving quantiles.
//!
//! Cluster snapshots label per-replica metrics (`{replica="i"}`); the
//! monitor merges every histogram sharing a base name before computing
//! quantiles, so it works unchanged on engine-local and merged cluster
//! snapshots.

use crate::expose::{MetricValue, MetricsSnapshot};
use crate::histogram::HistogramSnapshot;
use crate::registry::{Counter, Gauge};
use crate::Telemetry;

/// Objectives the monitor evaluates. Unset fields are not evaluated.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloObjectives {
    /// TTFT p99 objective in seconds (`VLLM_SLO_TTFT_P99`).
    pub ttft_p99: Option<f64>,
    /// End-to-end p99 objective in seconds (`VLLM_SLO_E2E_P99`).
    pub e2e_p99: Option<f64>,
    /// Budget for the fraction of arrived requests cancelled past their
    /// deadline (`VLLM_SLO_DEADLINE_MISS_BUDGET`).
    pub deadline_miss_budget: Option<f64>,
}

fn env_objective(var: &str) -> Option<f64> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
}

impl SloObjectives {
    /// Reads objectives from `VLLM_SLO_TTFT_P99`, `VLLM_SLO_E2E_P99`, and
    /// `VLLM_SLO_DEADLINE_MISS_BUDGET`. Unset or unparseable variables
    /// leave the objective unset.
    #[must_use]
    pub fn from_env() -> Self {
        Self {
            ttft_p99: env_objective("VLLM_SLO_TTFT_P99"),
            e2e_p99: env_objective("VLLM_SLO_E2E_P99"),
            deadline_miss_budget: env_objective("VLLM_SLO_DEADLINE_MISS_BUDGET"),
        }
    }

    /// Whether no objective is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ttft_p99.is_none() && self.e2e_p99.is_none() && self.deadline_miss_budget.is_none()
    }

    /// Sets the TTFT p99 objective in seconds.
    #[must_use]
    pub fn with_ttft_p99(mut self, seconds: f64) -> Self {
        self.ttft_p99 = Some(seconds);
        self
    }

    /// Sets the end-to-end p99 objective in seconds.
    #[must_use]
    pub fn with_e2e_p99(mut self, seconds: f64) -> Self {
        self.e2e_p99 = Some(seconds);
        self
    }

    /// Sets the deadline-miss-rate budget (fraction of arrived requests).
    #[must_use]
    pub fn with_deadline_miss_budget(mut self, fraction: f64) -> Self {
        self.deadline_miss_budget = Some(fraction);
        self
    }
}

/// The outcome of one [`SloMonitor::evaluate`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloStatus {
    /// Observed TTFT p99 in seconds, if any TTFT was recorded.
    pub ttft_p99: Option<f64>,
    /// Observed end-to-end p99 in seconds, if any request finished.
    pub e2e_p99: Option<f64>,
    /// Observed deadline-miss rate (cancellations / arrivals).
    pub deadline_miss_rate: Option<f64>,
    /// Whether the TTFT objective was exceeded this evaluation.
    pub ttft_breached: bool,
    /// Whether the end-to-end objective was exceeded this evaluation.
    pub e2e_breached: bool,
    /// Whether the deadline-miss budget was exceeded this evaluation.
    pub deadline_breached: bool,
}

impl SloStatus {
    /// Whether any evaluated objective was breached.
    #[must_use]
    pub fn any_breached(&self) -> bool {
        self.ttft_breached || self.e2e_breached || self.deadline_breached
    }
}

/// Evaluates [`SloObjectives`] against metric snapshots, publishing burn
/// gauges and breach counters into the owning registry.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    objectives: SloObjectives,
    ttft_breaches: Counter,
    e2e_breaches: Counter,
    deadline_breaches: Counter,
    ttft_burn: Gauge,
    e2e_burn: Gauge,
    deadline_burn: Gauge,
}

/// Sums every histogram in `snap` whose name is `base` or `base{...}`
/// (the cluster exposition labels per-replica series).
fn merged_histogram(snap: &MetricsSnapshot, base: &str) -> Option<HistogramSnapshot> {
    let mut merged: Option<HistogramSnapshot> = None;
    for entry in &snap.metrics {
        let matches = entry.name == base
            || (entry.name.starts_with(base)
                && entry.name.as_bytes().get(base.len()) == Some(&b'{'));
        if !matches {
            continue;
        }
        if let MetricValue::Histogram(h) = &entry.value {
            match &mut merged {
                None => merged = Some(h.clone()),
                Some(m) => {
                    // Mismatched layouts (shouldn't happen for one metric
                    // family) fall back to the first series.
                    let _ = m.merge(h);
                }
            }
        }
    }
    merged.filter(|m| m.count > 0)
}

/// Sums every counter in `snap` whose name is `base` or `base{...}`.
fn summed_counter(snap: &MetricsSnapshot, base: &str) -> u64 {
    snap.metrics
        .iter()
        .filter(|entry| {
            entry.name == base
                || (entry.name.starts_with(base)
                    && entry.name.as_bytes().get(base.len()) == Some(&b'{'))
        })
        .filter_map(|entry| match entry.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        })
        .sum()
}

impl SloMonitor {
    /// Registers the `vllm_slo_*` breach counters and burn gauges in
    /// `telemetry` and returns a monitor over `objectives`.
    #[must_use]
    pub fn register(telemetry: &Telemetry, objectives: SloObjectives) -> Self {
        let r = telemetry.registry();
        Self {
            objectives,
            ttft_breaches: r.counter(
                "vllm_slo_ttft_breaches_total",
                "Evaluations where TTFT p99 exceeded its objective.",
            ),
            e2e_breaches: r.counter(
                "vllm_slo_e2e_breaches_total",
                "Evaluations where end-to-end p99 exceeded its objective.",
            ),
            deadline_breaches: r.counter(
                "vllm_slo_deadline_breaches_total",
                "Evaluations where the deadline-miss rate exceeded its budget.",
            ),
            ttft_burn: r.gauge(
                "vllm_slo_ttft_burn_ratio",
                "Observed TTFT p99 divided by its objective.",
            ),
            e2e_burn: r.gauge(
                "vllm_slo_e2e_burn_ratio",
                "Observed end-to-end p99 divided by its objective.",
            ),
            deadline_burn: r.gauge(
                "vllm_slo_deadline_burn_ratio",
                "Observed deadline-miss rate divided by its budget.",
            ),
        }
    }

    /// Registers a monitor from the `VLLM_SLO_*` environment variables, or
    /// `None` when no objective is configured.
    #[must_use]
    pub fn from_env(telemetry: &Telemetry) -> Option<Self> {
        let objectives = SloObjectives::from_env();
        if objectives.is_empty() {
            return None;
        }
        Some(Self::register(telemetry, objectives))
    }

    /// The configured objectives.
    #[must_use]
    pub fn objectives(&self) -> SloObjectives {
        self.objectives
    }

    /// Evaluates the objectives against `snap`, updating burn gauges and
    /// breach counters, and returns the observed values and verdicts.
    pub fn evaluate(&self, snap: &MetricsSnapshot) -> SloStatus {
        let mut status = SloStatus {
            ttft_p99: merged_histogram(snap, "vllm_request_ttft_seconds")
                .and_then(|h| h.quantile(0.99)),
            e2e_p99: merged_histogram(snap, "vllm_request_e2e_seconds")
                .and_then(|h| h.quantile(0.99)),
            ..SloStatus::default()
        };
        let arrived = summed_counter(snap, "vllm_engine_requests_arrived_total");
        let missed = summed_counter(snap, "vllm_engine_deadline_cancellations_total");
        if arrived > 0 {
            status.deadline_miss_rate = Some(missed as f64 / arrived as f64);
        }

        if let (Some(objective), Some(observed)) = (self.objectives.ttft_p99, status.ttft_p99) {
            self.ttft_burn.set(observed / objective);
            if observed > objective {
                self.ttft_breaches.inc();
                status.ttft_breached = true;
            }
        }
        if let (Some(objective), Some(observed)) = (self.objectives.e2e_p99, status.e2e_p99) {
            self.e2e_burn.set(observed / objective);
            if observed > objective {
                self.e2e_breaches.inc();
                status.e2e_breached = true;
            }
        }
        if let (Some(budget), Some(observed)) = (
            self.objectives.deadline_miss_budget,
            status.deadline_miss_rate,
        ) {
            self.deadline_burn.set(observed / budget);
            if observed > budget {
                self.deadline_breaches.inc();
                status.deadline_breached = true;
            }
        }
        status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BucketSpec;

    #[test]
    fn evaluate_sets_burn_and_breach_state() {
        let t = Telemetry::new();
        let ttft =
            t.registry()
                .histogram("vllm_request_ttft_seconds", "ttft", BucketSpec::seconds());
        let e2e = t
            .registry()
            .histogram("vllm_request_e2e_seconds", "e2e", BucketSpec::seconds());
        let arrived = t
            .registry()
            .counter("vllm_engine_requests_arrived_total", "arrived");
        let missed = t
            .registry()
            .counter("vllm_engine_deadline_cancellations_total", "missed");
        for _ in 0..100 {
            ttft.observe(0.05);
            e2e.observe(2.0);
        }
        arrived.inc_by(100);
        missed.inc_by(10);

        let objectives = SloObjectives::default()
            .with_ttft_p99(1.0)
            .with_e2e_p99(1.0)
            .with_deadline_miss_budget(0.05);
        let monitor = SloMonitor::register(&t, objectives);
        let status = monitor.evaluate(&t.registry().snapshot());

        assert!(!status.ttft_breached, "ttft {status:?}");
        assert!(status.e2e_breached);
        assert!(status.deadline_breached);
        assert!(status.any_breached());
        assert!((status.deadline_miss_rate.unwrap() - 0.1).abs() < 1e-12);

        let snap = t.registry().snapshot();
        assert_eq!(snap.counter("vllm_slo_e2e_breaches_total"), Some(1));
        assert_eq!(snap.counter("vllm_slo_ttft_breaches_total"), Some(0));
        assert_eq!(snap.counter("vllm_slo_deadline_breaches_total"), Some(1));
        assert!(snap.gauge("vllm_slo_e2e_burn_ratio").unwrap() > 1.0);
        assert!(snap.gauge("vllm_slo_ttft_burn_ratio").unwrap() < 1.0);
    }

    #[test]
    fn merges_labeled_replica_series() {
        let t = Telemetry::new();
        let a = t.registry().histogram(
            "vllm_request_e2e_seconds{replica=\"0\"}",
            "e2e",
            BucketSpec::seconds(),
        );
        let b = t.registry().histogram(
            "vllm_request_e2e_seconds{replica=\"1\"}",
            "e2e",
            BucketSpec::seconds(),
        );
        a.observe(0.5);
        b.observe(3.0);
        let monitor = SloMonitor::register(&t, SloObjectives::default().with_e2e_p99(1.0));
        let status = monitor.evaluate(&t.registry().snapshot());
        assert!(status.e2e_p99.unwrap() > 1.0);
        assert!(status.e2e_breached);
    }

    #[test]
    fn empty_snapshot_breaches_nothing() {
        let t = Telemetry::new();
        let monitor = SloMonitor::register(
            &t,
            SloObjectives::default()
                .with_ttft_p99(0.001)
                .with_e2e_p99(0.001)
                .with_deadline_miss_budget(0.001),
        );
        let status = monitor.evaluate(&t.registry().snapshot());
        assert_eq!(status, SloStatus::default());
    }
}
