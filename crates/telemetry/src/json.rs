//! A minimal JSON value type with a writer and recursive-descent parser.
//!
//! The workspace's `serde` shim provides marker traits only, so the
//! exposition layer hand-rolls its (very small) JSON needs here: numbers,
//! strings, bools, null, arrays, and objects with insertion-ordered keys.
//! `f64` values are written with Rust's shortest-round-trip `Display`
//! formatting, so parse(write(x)) == x bit-for-bit for finite values.

use std::fmt::Write as _;

/// An insertion-ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Self::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for other variants or missing
    /// keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer count, if this is a non-negative
    /// whole number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(63) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(n) => {
                assert!(n.is_finite(), "non-finite number in JSON: {n}");
                let _ = write!(out, "{n}");
            }
            Self::Str(s) => write_escaped(out, s),
            Self::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Self::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Serializes to compact JSON text (`to_string()`).
///
/// # Panics
///
/// Panics if a number is non-finite (the exposition layer never stores
/// non-finite numbers).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number {text:?} at byte {start}"));
        }
        Ok(Json::Num(n))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("vllm_x \"quoted\"\n".to_string())),
            ("count", Json::Num(42.0)),
            ("tiny", Json::Num(1.25e-6)),
            ("neg", Json::Num(-0.5)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Str("x".into())]),
            ),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = v.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"\\u0041\\t\" } ").unwrap();
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "A\t");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1e999").is_err()); // overflows to infinity
    }

    #[test]
    fn f64_shortest_repr_round_trips() {
        for x in [0.1, 1.0 / 3.0, 123_456.789, 1e-300, 2f64.powi(53)] {
            let text = Json::Num(x).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), x);
        }
    }
}
