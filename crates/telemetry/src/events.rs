//! Bounded ring-buffer log of per-request lifecycle events.
//!
//! Every request's trajectory through the engine — arrival, first schedule,
//! per-iteration decodes, preemption (swap or recompute), swap-in, finish —
//! is appended here as it happens. The buffer is bounded: when full, the
//! oldest event (across all requests) is evicted, so recent requests keep a
//! complete timeline while ancient history ages out. Events for one request
//! are always returned in append order.

use std::collections::{HashSet, VecDeque};

use parking_lot::Mutex;

/// Default ring-buffer capacity (events, across all requests). Overridable
/// per process via the `VLLM_EVENT_LOG_CAPACITY` environment variable
/// (read by [`crate::Telemetry::new`]).
pub const DEFAULT_EVENT_CAPACITY: usize = 16_384;

/// The answer to an [`EventLog::query`]: distinguishes a request the log
/// never saw from one whose events were evicted by the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum EventQuery {
    /// No event for this request id was ever recorded.
    Unknown,
    /// Events were recorded for this request id but have all been evicted.
    Evicted,
    /// The retained events, in append order.
    Events(Vec<SeqEvent>),
}

/// What happened to a request at one point in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The request entered the waiting queue.
    Arrived,
    /// The request was scheduled for its prompt run.
    Scheduled {
        /// Prompt length in tokens.
        prompt_tokens: usize,
    },
    /// The first output token was produced (TTFT reference point).
    FirstToken,
    /// One decode iteration appended tokens.
    Decoded {
        /// Tokens generated so far (cumulative output length).
        tokens: usize,
    },
    /// The request was preempted out of the running batch.
    Preempted {
        /// Preemption mode: `"swap"` or `"recompute"`.
        mode: String,
        /// GPU blocks swapped out (0 for recompute).
        blocks: usize,
    },
    /// A previously swapped request was brought back to GPU memory.
    SwappedIn {
        /// Blocks copied back in.
        blocks: usize,
    },
    /// The request finished.
    Finished {
        /// Finish reason, e.g. `"stopped"` or `"length_capped"`.
        reason: String,
    },
}

impl EventKind {
    /// Short stable label for exposition (`arrived`, `scheduled`, ...).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Arrived => "arrived",
            Self::Scheduled { .. } => "scheduled",
            Self::FirstToken => "first_token",
            Self::Decoded { .. } => "decoded",
            Self::Preempted { .. } => "preempted",
            Self::SwappedIn { .. } => "swapped_in",
            Self::Finished { .. } => "finished",
        }
    }

    /// Human-readable detail string for exposition (empty for kinds that
    /// carry no payload).
    #[must_use]
    pub fn detail(&self) -> String {
        match self {
            Self::Arrived | Self::FirstToken => String::new(),
            Self::Scheduled { prompt_tokens } => format!("prompt_tokens={prompt_tokens}"),
            Self::Decoded { tokens } => format!("tokens={tokens}"),
            Self::Preempted { mode, blocks } => format!("mode={mode} blocks={blocks}"),
            Self::SwappedIn { blocks } => format!("blocks={blocks}"),
            Self::Finished { reason } => format!("reason={reason}"),
        }
    }
}

/// One timestamped lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqEvent {
    /// Request the event belongs to.
    pub request_id: String,
    /// Engine-clock timestamp in seconds.
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
}

#[derive(Debug)]
struct EventBuf {
    events: VecDeque<SeqEvent>,
    total: u64,
    dropped: u64,
    /// FNV-1a hashes of every request id ever recorded, kept so queries can
    /// distinguish "unknown request" from "events evicted".
    known_ids: HashSet<u64>,
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Bounded, thread-safe ring buffer of [`SeqEvent`]s.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    buf: Mutex<EventBuf>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// Creates a log keeping at most `capacity` events (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buf: Mutex::new(EventBuf {
                events: VecDeque::new(),
                total: 0,
                dropped: 0,
                known_ids: HashSet::new(),
            }),
        }
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, evicting the oldest one if the buffer is full.
    pub fn record(&self, request_id: &str, time: f64, kind: EventKind) {
        let mut buf = self.buf.lock();
        if buf.events.len() == self.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(SeqEvent {
            request_id: request_id.to_string(),
            time,
            kind,
        });
        buf.total += 1;
        buf.known_ids.insert(fnv1a(request_id));
    }

    /// Looks up `request_id`, distinguishing a request the log never saw
    /// ([`EventQuery::Unknown`]) from one whose events have been evicted
    /// from the ring buffer ([`EventQuery::Evicted`]).
    #[must_use]
    pub fn query(&self, request_id: &str) -> EventQuery {
        let buf = self.buf.lock();
        let events: Vec<SeqEvent> = buf
            .events
            .iter()
            .filter(|e| e.request_id == request_id)
            .cloned()
            .collect();
        if !events.is_empty() {
            return EventQuery::Events(events);
        }
        if buf.known_ids.contains(&fnv1a(request_id)) {
            EventQuery::Evicted
        } else {
            EventQuery::Unknown
        }
    }

    /// All retained events for `request_id`, in append order.
    #[must_use]
    pub fn events_for(&self, request_id: &str) -> Vec<SeqEvent> {
        self.buf
            .lock()
            .events
            .iter()
            .filter(|e| e.request_id == request_id)
            .cloned()
            .collect()
    }

    /// Number of currently retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.lock().events.len()
    }

    /// Whether the log holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.lock().events.is_empty()
    }

    /// Events ever recorded (including evicted ones).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.buf.lock().total
    }

    /// Events evicted because the buffer was full.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.buf.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries_per_request() {
        let log = EventLog::with_capacity(16);
        log.record("a", 0.0, EventKind::Arrived);
        log.record("b", 0.1, EventKind::Arrived);
        log.record("a", 0.2, EventKind::Scheduled { prompt_tokens: 8 });
        log.record("a", 0.3, EventKind::FirstToken);
        let a = log.events_for("a");
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].kind.label(), "arrived");
        assert_eq!(a[1].kind.label(), "scheduled");
        assert_eq!(a[2].kind.label(), "first_token");
        assert_eq!(log.events_for("b").len(), 1);
        assert_eq!(log.events_for("missing").len(), 0);
        assert_eq!(log.total_recorded(), 4);
        assert_eq!(log.total_dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_keeps_per_request_order() {
        let log = EventLog::with_capacity(4);
        // Interleave two requests, overflowing the buffer.
        for i in 0..6 {
            let id = if i % 2 == 0 { "even" } else { "odd" };
            log.record(id, f64::from(i), EventKind::Decoded { tokens: i as usize });
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.total_recorded(), 6);
        assert_eq!(log.total_dropped(), 2);
        // Oldest two (times 0, 1) evicted; survivors stay in append order.
        let even = log.events_for("even");
        assert_eq!(
            even.iter().map(|e| e.time).collect::<Vec<_>>(),
            vec![2.0, 4.0]
        );
        assert!(even.windows(2).all(|w| w[0].time <= w[1].time));
        let odd = log.events_for("odd");
        assert_eq!(
            odd.iter().map(|e| e.time).collect::<Vec<_>>(),
            vec![3.0, 5.0]
        );
    }

    #[test]
    fn query_distinguishes_unknown_from_evicted() {
        let log = EventLog::with_capacity(2);
        log.record("old", 0.0, EventKind::Arrived);
        assert!(matches!(log.query("old"), EventQuery::Events(ref v) if v.len() == 1));
        assert_eq!(log.query("never"), EventQuery::Unknown);
        // Push the old request's only event out of the ring.
        log.record("new", 1.0, EventKind::Arrived);
        log.record("new", 2.0, EventKind::FirstToken);
        assert_eq!(log.query("old"), EventQuery::Evicted);
        assert!(matches!(log.query("new"), EventQuery::Events(ref v) if v.len() == 2));
        assert_eq!(log.query("never"), EventQuery::Unknown);
    }

    #[test]
    fn detail_strings_are_stable() {
        assert_eq!(EventKind::Arrived.detail(), "");
        assert_eq!(
            EventKind::Preempted {
                mode: "swap".into(),
                blocks: 3
            }
            .detail(),
            "mode=swap blocks=3"
        );
        assert_eq!(
            EventKind::Finished {
                reason: "stopped".into()
            }
            .detail(),
            "reason=stopped"
        );
    }
}
