//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes the registry lock
//! once and returns a cheap `Arc`ed handle; callers cache handles at
//! construction so steady-state updates are a single atomic operation
//! (counters, gauges) or a short bucket-increment critical section
//! (histograms). Re-registering a name returns the existing instrument;
//! re-registering it *as a different type* panics — that mismatch is a
//! wiring bug, and CI treats any such panic as a failure.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::expose::{MetricEntry, MetricValue, MetricsSnapshot};
use crate::histogram::{BucketSpec, Histogram};

/// A monotonically non-decreasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn inc_by(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Raises the counter to `v` if `v` is larger (for layers that already
    /// track a cumulative total and republish it).
    pub fn set_to_at_least(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Self(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Self::Counter(_) => "counter",
            Self::Gauge(_) => "gauge",
            Self::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Registered {
    help: String,
    instrument: Instrument,
}

/// A registry of named instruments; see the module docs for the locking
/// discipline.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Registered>>,
}

fn valid_base_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A name is a bare metric name, optionally followed by one Prometheus-style
/// label block (`name{key="value",...}`). Multi-replica registries label
/// per-replica instruments this way; the label block is treated as part of
/// the name everywhere downstream, which keeps both expositions lossless.
fn valid_name(name: &str) -> bool {
    let Some((base, rest)) = name.split_once('{') else {
        return valid_base_name(name);
    };
    let Some(labels) = rest.strip_suffix('}') else {
        return false;
    };
    valid_base_name(base)
        && !labels.is_empty()
        && labels.split(',').all(|pair| {
            pair.split_once("=\"").is_some_and(|(key, v)| {
                valid_base_name(key)
                    && v.ends_with('"')
                    && !v[..v.len() - 1].contains(['"', '\\', '\n', '{', '}'])
            })
        })
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, fresh: Instrument) -> Instrument {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut metrics = self.metrics.lock();
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Registered {
                help: help.to_string(),
                instrument: fresh.clone(),
            });
        assert!(
            std::mem::discriminant(&entry.instrument) == std::mem::discriminant(&fresh),
            "metric {name:?} already registered as a {}, requested as a {}",
            entry.instrument.kind(),
            fresh.kind(),
        );
        entry.instrument.clone()
    }

    /// Returns the counter named `name`, registering it if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another type.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, Instrument::Counter(Counter::default())) {
            Instrument::Counter(c) => c,
            _ => unreachable!("type checked in register"),
        }
    }

    /// Returns the gauge named `name`, registering it if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another type.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, Instrument::Gauge(Gauge::default())) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("type checked in register"),
        }
    }

    /// Returns the histogram named `name`, registering it with `spec` if
    /// new (an existing histogram keeps its original layout).
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another type.
    pub fn histogram(&self, name: &str, help: &str, spec: BucketSpec) -> Histogram {
        match self.register(name, help, Instrument::Histogram(Histogram::new(spec))) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("type checked in register"),
        }
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.lock().len()
    }

    /// Whether no metric is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.lock().is_empty()
    }

    /// A point-in-time snapshot of every registered metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock();
        MetricsSnapshot {
            metrics: metrics
                .iter()
                .map(|(name, reg)| MetricEntry {
                    name: name.clone(),
                    help: reg.help.clone(),
                    value: match &reg.instrument {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = MetricsRegistry::new();
        let c = r.counter("vllm_test_total", "a counter");
        c.inc();
        c.inc_by(4);
        c.set_to_at_least(3); // no-op: already past 3
        assert_eq!(c.get(), 5);
        c.set_to_at_least(11);
        assert_eq!(c.get(), 11);
        let g = r.gauge("vllm_test_gauge", "a gauge");
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
        // Re-registration returns the same instrument.
        r.counter("vllm_test_total", "ignored").inc();
        assert_eq!(c.get(), 12);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = MetricsRegistry::new();
        r.counter("zzz_total", "z");
        r.gauge("aaa", "a");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["aaa", "zzz_total"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("vllm_x", "");
        r.gauge("vllm_x", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        MetricsRegistry::new().counter("9bad name", "");
    }

    #[test]
    fn labeled_names_accepted_and_round_trip() {
        let r = MetricsRegistry::new();
        r.counter(
            "vllm_cluster_replica_routed_total{replica=\"3\"}",
            "Routed.",
        )
        .inc_by(5);
        let snap = r.snapshot();
        assert_eq!(
            snap.counter("vllm_cluster_replica_routed_total{replica=\"3\"}"),
            Some(5)
        );
        let parsed =
            crate::MetricsSnapshot::from_prometheus_text(&snap.to_prometheus_text()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn malformed_label_blocks_rejected() {
        for bad in [
            "vllm_x{",
            "vllm_x{}",
            "vllm_x{replica}",
            "vllm_x{replica=0}",
            "vllm_x{replica=\"a\"\"}",
            "{replica=\"0\"}",
        ] {
            assert!(!super::valid_name(bad), "{bad:?} must be rejected");
        }
        assert!(super::valid_name("vllm_x{replica=\"0\",gpu=\"a100\"}"));
    }
}
