//! A classic buddy allocator over KV token slots (§3.1, §6.1: "We assume
//! Orca uses the buddy allocation algorithm to determine the memory address
//! to store KV cache").
//!
//! Requests are rounded up to the next power of two; the rounding plus
//! unusable holes constitute the external fragmentation of Fig. 2/3.

use std::collections::BTreeSet;

/// A live allocation handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuddyBlock {
    /// Start offset in slots.
    pub offset: usize,
    /// log2 of the allocated size.
    pub order: u32,
    /// Originally requested size in slots.
    pub requested: usize,
}

impl BuddyBlock {
    /// Allocated size in slots (`2^order`).
    #[must_use]
    pub fn allocated(&self) -> usize {
        1 << self.order
    }

    /// Rounding waste in slots.
    #[must_use]
    pub fn rounding_waste(&self) -> usize {
        self.allocated() - self.requested
    }
}

/// Buddy allocator over a (not necessarily power-of-two) capacity.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    capacity: usize,
    /// `free[order]` holds start offsets of free blocks of size `2^order`.
    free: Vec<BTreeSet<usize>>,
    allocated_slots: usize,
    requested_slots: usize,
}

impl BuddyAllocator {
    /// Creates an allocator over `capacity` slots. Non-power-of-two
    /// capacities are decomposed into aligned power-of-two chunks.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let max_order = if capacity == 0 {
            0
        } else {
            usize::BITS - capacity.leading_zeros()
        };
        let mut free = vec![BTreeSet::new(); max_order as usize + 1];
        // Binary decomposition: largest chunks first, each aligned to its
        // own size by construction.
        let mut offset = 0usize;
        for order in (0..=max_order).rev() {
            let size = 1usize << order;
            if capacity - offset >= size {
                free[order as usize].insert(offset);
                offset += size;
            }
        }
        Self {
            capacity,
            free,
            allocated_slots: 0,
            requested_slots: 0,
        }
    }

    /// Total capacity in slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots currently handed out (power-of-two rounded).
    #[must_use]
    pub fn allocated_slots(&self) -> usize {
        self.allocated_slots
    }

    /// Slots currently requested (before rounding).
    #[must_use]
    pub fn requested_slots(&self) -> usize {
        self.requested_slots
    }

    /// Free slots (may be fragmented across orders).
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.capacity - self.allocated_slots
    }

    /// Size of the largest contiguous free block.
    #[must_use]
    pub fn largest_free_block(&self) -> usize {
        self.free
            .iter()
            .enumerate()
            .rev()
            .find(|(_, set)| !set.is_empty())
            .map_or(0, |(order, _)| 1 << order)
    }

    /// Allocates a contiguous region of at least `size` slots, rounded up
    /// to a power of two. Returns `None` when no sufficiently large
    /// contiguous block exists (even if total free space would suffice —
    /// that shortfall is external fragmentation).
    pub fn allocate(&mut self, size: usize) -> Option<BuddyBlock> {
        if size == 0 || size > self.capacity {
            return None;
        }
        let want = size.next_power_of_two();
        let want_order = want.trailing_zeros();
        // Find the smallest free order ≥ want_order.
        let from_order =
            (want_order as usize..self.free.len()).find(|&o| !self.free[o].is_empty())?;
        let offset = *self.free[from_order].iter().next().expect("non-empty");
        self.free[from_order].remove(&offset);
        // Split down to the wanted order, freeing the upper halves.
        let mut order = from_order as u32;
        while order > want_order {
            order -= 1;
            let buddy = offset + (1 << order);
            self.free[order as usize].insert(buddy);
        }
        self.allocated_slots += want;
        self.requested_slots += size;
        Some(BuddyBlock {
            offset,
            order: want_order,
            requested: size,
        })
    }

    /// Frees a block, coalescing with free buddies.
    ///
    /// # Panics
    ///
    /// Panics if the block was not allocated by this allocator (double free
    /// corrupts the free lists and is detected when the buddy is present).
    pub fn free(&mut self, block: BuddyBlock) {
        let mut offset = block.offset;
        let mut order = block.order;
        self.allocated_slots -= block.allocated();
        self.requested_slots -= block.requested;
        loop {
            let size = 1usize << order;
            let buddy = offset ^ size;
            // Merge only when the buddy of the same order is free and the
            // merged block stays inside capacity.
            let can_merge = (order as usize + 1) < self.free.len()
                && buddy + size <= self.capacity
                && self.free[order as usize].contains(&buddy);
            if can_merge {
                self.free[order as usize].remove(&buddy);
                offset = offset.min(buddy);
                order += 1;
            } else {
                let inserted = self.free[order as usize].insert(offset);
                assert!(inserted, "double free of buddy block at {offset}");
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_rounds_to_pow2() {
        let mut b = BuddyAllocator::new(1024);
        let a = b.allocate(100).unwrap();
        assert_eq!(a.allocated(), 128);
        assert_eq!(a.rounding_waste(), 28);
        assert_eq!(b.allocated_slots(), 128);
        assert_eq!(b.requested_slots(), 100);
    }

    #[test]
    fn exhaustion_and_reuse() {
        let mut b = BuddyAllocator::new(256);
        let a0 = b.allocate(128).unwrap();
        let _a1 = b.allocate(128).unwrap();
        assert!(b.allocate(1).is_none());
        b.free(a0);
        assert!(b.allocate(128).is_some());
    }

    #[test]
    fn coalescing_restores_full_heap() {
        let mut b = BuddyAllocator::new(1024);
        let blocks: Vec<BuddyBlock> = (0..16).map(|_| b.allocate(64).unwrap()).collect();
        assert_eq!(b.free_slots(), 0);
        for blk in blocks {
            b.free(blk);
        }
        assert_eq!(b.free_slots(), 1024);
        assert_eq!(b.largest_free_block(), 1024);
        // The whole heap is one block again.
        assert!(b.allocate(1024).is_some());
    }

    #[test]
    fn external_fragmentation_blocks_large_requests() {
        let mut b = BuddyAllocator::new(1024);
        // Allocate 8 × 128, free alternating ones: 512 slots free but the
        // largest hole is 128.
        let blocks: Vec<BuddyBlock> = (0..8).map(|_| b.allocate(128).unwrap()).collect();
        for (i, blk) in blocks.into_iter().enumerate() {
            if i % 2 == 0 {
                b.free(blk);
            }
        }
        assert_eq!(b.free_slots(), 512);
        assert_eq!(b.largest_free_block(), 128);
        assert!(b.allocate(256).is_none(), "fragmented: 256 must fail");
        assert!(b.allocate(128).is_some());
    }

    #[test]
    fn non_pow2_capacity_fully_usable() {
        let mut b = BuddyAllocator::new(1000);
        let mut blocks = Vec::new();
        let mut total = 0;
        while let Some(blk) = b.allocate(8) {
            total += 8;
            blocks.push(blk);
        }
        // 1000 = 512+256+128+64+32+8 → 125 blocks of 8 fit exactly.
        assert_eq!(total, 1000);
        for blk in blocks {
            b.free(blk);
        }
        assert_eq!(b.free_slots(), 1000);
    }

    #[test]
    fn zero_and_oversized_rejected() {
        let mut b = BuddyAllocator::new(64);
        assert!(b.allocate(0).is_none());
        assert!(b.allocate(65).is_none());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected_when_buddy_intact() {
        let mut b = BuddyAllocator::new(64);
        let a = b.allocate(64).unwrap();
        b.free(a);
        // Freeing again re-inserts the same offset at the same order.
        b.allocated_slots += a.allocated(); // Undo counter underflow for the test.
        b.requested_slots += a.requested;
        b.free(a);
    }

    #[test]
    fn interleaved_alloc_free_consistency() {
        let mut b = BuddyAllocator::new(4096);
        let mut live = Vec::new();
        let mut x = 12345u64;
        for i in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if !x.is_multiple_of(3) || live.is_empty() {
                let size = 1 + (x % 200) as usize;
                if let Some(blk) = b.allocate(size) {
                    live.push(blk);
                }
            } else {
                let idx = (x as usize) % live.len();
                b.free(live.swap_remove(idx));
            }
            let _ = i;
            assert!(b.allocated_slots() <= b.capacity());
            assert!(b.requested_slots() <= b.allocated_slots());
        }
        for blk in live {
            b.free(blk);
        }
        assert_eq!(b.free_slots(), 4096);
        assert_eq!(b.requested_slots(), 0);
    }
}
