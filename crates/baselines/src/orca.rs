//! The Orca baseline (§6.1): iteration-level scheduling like vLLM, but with
//! contiguous per-sequence KV reservations from a buddy allocator and no
//! memory sharing.
//!
//! Three reservation variants match the paper:
//! * **Oracle** — reserves exactly `prompt + actual output` (upper bound,
//!   infeasible in practice).
//! * **Pow2** — over-reserves the output by at most 2×.
//! * **Max** — always reserves the model's maximum sequence length.

use std::collections::VecDeque;

use crate::buddy::{BuddyAllocator, BuddyBlock};
use crate::types::{
    next_pow2, BatchSystem, FinishedRequest, MemorySnapshot, SimRequest, StepWork, SystemStep,
};

/// Expected fraction of beam candidates that switch parents in one step
/// under near-uniform candidate scoring (≈ 1/e); each switched candidate
/// copies its new parent's whole KV cache in a contiguous-memory system
/// (§4.4: "previous systems require frequent memory copies of the KV cache
/// across beam candidates").
pub const BEAM_SWITCH_FRACTION: f64 = 0.37;

/// How much output space Orca reserves at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservationPolicy {
    /// Exactly the true output length (infeasible upper bound).
    Oracle,
    /// Next power of two of the output length.
    Pow2,
    /// The model's maximum sequence length.
    Max,
}

impl ReservationPolicy {
    /// Reservation (prompt + output space) for a request, in slots.
    #[must_use]
    pub fn reservation(self, prompt_len: usize, output_len: usize, max_model_len: usize) -> usize {
        match self {
            Self::Oracle => prompt_len + output_len,
            Self::Pow2 => {
                (prompt_len + next_pow2(output_len)).min(max_model_len.max(prompt_len + output_len))
            }
            Self::Max => max_model_len.max(prompt_len + output_len),
        }
    }

    /// Display label matching the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Oracle => "Orca (Oracle)",
            Self::Pow2 => "Orca (Pow2)",
            Self::Max => "Orca (Max)",
        }
    }
}

#[derive(Debug)]
struct OrcaSeq {
    block: BuddyBlock,
}

#[derive(Debug)]
struct OrcaRunning {
    req: SimRequest,
    seqs: Vec<OrcaSeq>,
    /// Current context length (prompt + generated), same for all sequences
    /// (outputs are scripted to equal length).
    current_len: usize,
    prefilled: bool,
}

impl OrcaRunning {
    fn final_len(&self) -> usize {
        self.req.prompt_len + self.req.output_len
    }
}

/// Orca serving system over a trace.
#[derive(Debug)]
pub struct OrcaSystem {
    policy: ReservationPolicy,
    buddy: BuddyAllocator,
    max_model_len: usize,
    max_num_seqs: usize,
    waiting: VecDeque<SimRequest>,
    running: Vec<OrcaRunning>,
}

impl OrcaSystem {
    /// Creates an Orca instance over `capacity_slots` KV slots.
    #[must_use]
    pub fn new(
        policy: ReservationPolicy,
        capacity_slots: usize,
        max_model_len: usize,
        max_num_seqs: usize,
    ) -> Self {
        Self {
            policy,
            buddy: BuddyAllocator::new(capacity_slots),
            max_model_len,
            max_num_seqs,
            waiting: VecDeque::new(),
            running: Vec::new(),
        }
    }

    /// The reservation policy.
    #[must_use]
    pub fn policy(&self) -> ReservationPolicy {
        self.policy
    }

    /// Admits requests FCFS while reservations fit (all-or-nothing per
    /// request across its sequences).
    fn admit(&mut self) {
        while let Some(req) = self.waiting.front() {
            let running_seqs: usize = self.running.iter().map(|r| r.seqs.len()).sum();
            if running_seqs + req.n_seqs > self.max_num_seqs {
                break;
            }
            let per_seq =
                self.policy
                    .reservation(req.prompt_len, req.output_len, self.max_model_len);
            let mut blocks = Vec::with_capacity(req.n_seqs);
            let mut ok = true;
            for _ in 0..req.n_seqs {
                match self.buddy.allocate(per_seq) {
                    Some(b) => blocks.push(b),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                for b in blocks {
                    self.buddy.free(b);
                }
                break;
            }
            let req = self.waiting.pop_front().expect("front exists");
            self.running.push(OrcaRunning {
                current_len: req.prompt_len,
                prefilled: false,
                seqs: blocks.into_iter().map(|block| OrcaSeq { block }).collect(),
                req,
            });
        }
    }
}

impl BatchSystem for OrcaSystem {
    fn name(&self) -> String {
        self.policy.label().to_string()
    }

    fn enqueue(&mut self, req: SimRequest) {
        self.waiting.push_back(req);
    }

    fn step(&mut self, now: f64, cost: &mut dyn FnMut(&StepWork) -> f64) -> Option<SystemStep> {
        self.admit();
        if self.running.is_empty() {
            return None;
        }

        let mut work = StepWork::default();
        for r in &self.running {
            if !r.prefilled {
                // Prompt computed once; without block sharing the KV must be
                // replicated into each sequence's reservation.
                work.prefill_tokens.push(r.req.prompt_len);
                work.copied_tokens += (r.seqs.len() - 1) * r.req.prompt_len;
            } else {
                for _ in 0..r.seqs.len() {
                    work.decode_contexts.push(r.current_len);
                }
                if r.req.is_beam && r.seqs.len() > 1 {
                    // Contiguous layouts copy whole candidate KV caches when
                    // beams switch parents.
                    let switched = (BEAM_SWITCH_FRACTION * r.seqs.len() as f64).round() as usize;
                    work.copied_tokens += switched * r.current_len;
                }
            }
        }
        let elapsed = cost(&work);

        // Commit: prefilled requests generate one token; fresh ones finish
        // their prompt phase (their first token counts as generated, as in
        // the engine).
        let mut finished = Vec::new();
        let max_model_len = self.max_model_len;
        for r in &mut self.running {
            if r.prefilled {
                r.current_len += 1;
            } else {
                r.prefilled = true;
                r.current_len += 1;
            }
        }
        let buddy = &mut self.buddy;
        self.running.retain_mut(|r| {
            let generated = r.current_len - r.req.prompt_len;
            let done = generated >= r.req.output_len || r.current_len >= max_model_len;
            if done {
                for seq in r.seqs.drain(..) {
                    buddy.free(seq.block);
                }
                finished.push(FinishedRequest {
                    id: r.req.id,
                    arrival: r.req.arrival,
                    finish: now + 0.0,
                    output_len: generated,
                });
            }
            !done
        });
        let elapsed_finish = now + elapsed;
        for f in &mut finished {
            f.finish = elapsed_finish;
        }
        Some(SystemStep {
            elapsed,
            finished,
            work,
        })
    }

    fn memory_snapshot(&self) -> MemorySnapshot {
        let mut snap = MemorySnapshot {
            capacity: self.buddy.capacity(),
            free: self.buddy.free_slots(),
            ..Default::default()
        };
        for r in &self.running {
            let final_len = r.final_len().min(self.max_model_len);
            for seq in &r.seqs {
                snap.used += r.current_len;
                snap.reserved += final_len - r.current_len.min(final_len);
                snap.internal_frag += seq.block.requested - final_len;
                snap.external_frag += seq.block.rounding_waste();
            }
        }
        snap
    }

    fn num_running_requests(&self) -> usize {
        self.running.len()
    }

    fn num_running_seqs(&self) -> usize {
        self.running.iter().map(|r| r.seqs.len()).sum()
    }

    fn has_unfinished(&self) -> bool {
        !self.waiting.is_empty() || !self.running.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cost() -> impl FnMut(&StepWork) -> f64 {
        |_: &StepWork| 1.0
    }

    #[test]
    fn reservation_policies() {
        assert_eq!(ReservationPolicy::Oracle.reservation(100, 25, 2048), 125);
        assert_eq!(ReservationPolicy::Pow2.reservation(100, 25, 2048), 132);
        assert_eq!(ReservationPolicy::Max.reservation(100, 25, 2048), 2048);
    }

    #[test]
    fn single_request_lifecycle() {
        let mut s = OrcaSystem::new(ReservationPolicy::Oracle, 4096, 2048, 256);
        s.enqueue(SimRequest::basic(0, 0.0, 10, 3));
        let mut cost = unit_cost();
        // Step 1: prefill (produces the first token).
        let r1 = s.step(0.0, &mut cost).unwrap();
        assert_eq!(r1.work.prefill_tokens, vec![10]);
        assert!(r1.finished.is_empty());
        // Steps 2-3: decode; finishes on the 3rd generated token.
        let r2 = s.step(1.0, &mut cost).unwrap();
        assert_eq!(r2.work.decode_contexts, vec![11]);
        let r3 = s.step(2.0, &mut cost).unwrap();
        assert_eq!(r3.finished.len(), 1);
        assert_eq!(r3.finished[0].output_len, 3);
        assert!(!s.has_unfinished());
        // All memory returned.
        assert_eq!(s.memory_snapshot().free, 4096);
    }

    #[test]
    fn admission_blocked_by_memory() {
        // Capacity 2048: Max policy reserves 2048 per request → one at a time.
        let mut s = OrcaSystem::new(ReservationPolicy::Max, 2048, 2048, 256);
        s.enqueue(SimRequest::basic(0, 0.0, 10, 5));
        s.enqueue(SimRequest::basic(1, 0.0, 10, 5));
        let mut cost = unit_cost();
        s.step(0.0, &mut cost).unwrap();
        assert_eq!(s.num_running_requests(), 1);
        // Oracle admits both under the same capacity.
        let mut s2 = OrcaSystem::new(ReservationPolicy::Oracle, 2048, 2048, 256);
        s2.enqueue(SimRequest::basic(0, 0.0, 10, 5));
        s2.enqueue(SimRequest::basic(1, 0.0, 10, 5));
        s2.step(0.0, &mut cost).unwrap();
        assert_eq!(s2.num_running_requests(), 2);
    }

    #[test]
    fn memory_snapshot_decomposition_sums() {
        let mut s = OrcaSystem::new(ReservationPolicy::Pow2, 4096, 2048, 256);
        s.enqueue(SimRequest::basic(0, 0.0, 100, 25));
        let mut cost = unit_cost();
        s.step(0.0, &mut cost).unwrap();
        let snap = s.memory_snapshot();
        assert_eq!(
            snap.used + snap.reserved + snap.internal_frag + snap.external_frag + snap.free,
            snap.capacity
        );
        // Pow2: reservation 100+32=132 requested, buddy rounds to 256.
        assert_eq!(snap.external_frag, 124);
        assert_eq!(snap.internal_frag, 132 - 125);
        assert_eq!(snap.used, 101); // Prompt + first token.
    }

    #[test]
    fn parallel_request_reserves_per_sequence() {
        let mut s = OrcaSystem::new(ReservationPolicy::Oracle, 4096, 2048, 256);
        s.enqueue(SimRequest {
            id: 0,
            arrival: 0.0,
            prompt_len: 64,
            output_len: 10,
            n_seqs: 4,
            is_beam: false,
        });
        let mut cost = unit_cost();
        let r = s.step(0.0, &mut cost).unwrap();
        // Prompt computed once, copied into the other 3 reservations.
        assert_eq!(r.work.copied_tokens, 3 * 64);
        assert_eq!(s.num_running_seqs(), 4);
        // 4 × (64 + 10) reserved, no sharing.
        let snap = s.memory_snapshot();
        assert!(snap.used >= 4 * 64);
    }

    #[test]
    fn beam_request_incurs_copies_each_step() {
        let mut s = OrcaSystem::new(ReservationPolicy::Oracle, 8192, 2048, 256);
        s.enqueue(SimRequest {
            id: 0,
            arrival: 0.0,
            prompt_len: 64,
            output_len: 8,
            n_seqs: 4,
            is_beam: true,
        });
        let mut cost = unit_cost();
        s.step(0.0, &mut cost).unwrap(); // Prefill.
        let r = s.step(1.0, &mut cost).unwrap();
        assert!(r.work.copied_tokens > 0, "beam steps must copy KV");
    }

    #[test]
    fn fcfs_order_preserved() {
        let mut s = OrcaSystem::new(ReservationPolicy::Max, 2048, 2048, 256);
        s.enqueue(SimRequest::basic(0, 0.0, 10, 2));
        s.enqueue(SimRequest::basic(1, 0.1, 10, 2));
        let mut cost = unit_cost();
        let mut finish_order = Vec::new();
        let mut now = 0.0;
        while s.has_unfinished() {
            if let Some(r) = s.step(now, &mut cost) {
                now += r.elapsed;
                finish_order.extend(r.finished.iter().map(|f| f.id));
            } else {
                break;
            }
        }
        assert_eq!(finish_order, vec![0, 1]);
    }
}
