//! Types shared between the baseline systems and the discrete-event driver
//! in `vllm-sim`.

/// A trace-driven request as seen by a serving system under simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimRequest {
    /// Request id.
    pub id: u64,
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Scripted output length in tokens (per sequence).
    pub output_len: usize,
    /// Number of output sequences (parallel samples or beam width).
    pub n_seqs: usize,
    /// Whether the request uses beam search (affects baseline copy costs
    /// and vLLM sharing dynamics).
    pub is_beam: bool,
}

impl SimRequest {
    /// A basic single-output request.
    #[must_use]
    pub fn basic(id: u64, arrival: f64, prompt_len: usize, output_len: usize) -> Self {
        Self {
            id,
            arrival,
            prompt_len,
            output_len,
            n_seqs: 1,
            is_beam: false,
        }
    }
}

/// The computational content of one iteration, consumed by the cost model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepWork {
    /// Token counts of prompt-phase sequences processed this step.
    pub prefill_tokens: Vec<usize>,
    /// Attention context length for each `prefill_tokens` entry (the
    /// position reached after the rows run). Empty for whole-prompt
    /// prefills, where context equals the token count; chunked prefills
    /// fill it so the cost model charges each chunk's rows against the full
    /// KV prefix they attend to, not just the chunk's own length.
    pub prefill_contexts: Vec<usize>,
    /// Context lengths of generation-phase sequences (one new token each).
    pub decode_contexts: Vec<usize>,
    /// KV token-states copied GPU→GPU this step (beam-candidate copies in
    /// baselines, copy-on-write in vLLM).
    pub copied_tokens: usize,
    /// KV blocks transferred over PCIe this step (swapping).
    pub swapped_blocks: usize,
    /// Tokens of wasted padding compute (FasterTransformer-style batches).
    pub padded_tokens: usize,
}

impl StepWork {
    /// Whether this step performs any work.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prefill_tokens.is_empty()
            && self.decode_contexts.is_empty()
            && self.swapped_blocks == 0
            && self.copied_tokens == 0
    }

    /// Total new tokens computed this step (prefill + decode + padding).
    #[must_use]
    pub fn new_tokens(&self) -> usize {
        self.prefill_tokens.iter().sum::<usize>() + self.decode_contexts.len() + self.padded_tokens
    }
}

/// Per-step memory breakdown in KV token slots (Figs. 2 and 3 taxonomy).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemorySnapshot {
    /// Slots holding actual token states.
    pub used: usize,
    /// Slots reserved for tokens that will be generated (eventually used).
    pub reserved: usize,
    /// Slots reserved but never used (over-provisioning).
    pub internal_frag: usize,
    /// Allocator-level waste (buddy rounding and unusable holes).
    pub external_frag: usize,
    /// Slots not allocated to any request.
    pub free: usize,
    /// Total capacity in slots.
    pub capacity: usize,
}

impl MemorySnapshot {
    /// Fraction of capacity holding token states (Fig. 2's headline
    /// number: 20.4%–38.2% for the baselines, ~96% counting only vLLM's
    /// allocated blocks).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.used as f64 / self.capacity as f64
    }

    /// Fraction of *allocated* slots holding token states.
    #[must_use]
    pub fn utilization_of_allocated(&self) -> f64 {
        let allocated = self.capacity - self.free;
        if allocated == 0 {
            return 1.0;
        }
        self.used as f64 / allocated as f64
    }
}

/// A request completion event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinishedRequest {
    /// Request id.
    pub id: u64,
    /// Arrival time.
    pub arrival: f64,
    /// Completion time.
    pub finish: f64,
    /// Output length (per sequence) actually generated.
    pub output_len: usize,
}

impl FinishedRequest {
    /// End-to-end latency divided by output length (§6.1).
    #[must_use]
    pub fn normalized_latency(&self) -> f64 {
        (self.finish - self.arrival) / self.output_len.max(1) as f64
    }
}

/// The outcome of one simulated iteration.
#[derive(Debug, Clone, Default)]
pub struct SystemStep {
    /// Modeled duration of the iteration.
    pub elapsed: f64,
    /// Requests that completed at the end of this iteration.
    pub finished: Vec<FinishedRequest>,
    /// The work content (for logging/inspection).
    pub work: StepWork,
}

/// Optional counters a system may expose beyond the required interface.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SystemExtra {
    /// Total preemptions (vLLM only; baselines never preempt).
    pub preemptions: u64,
    /// Preemptions recovered by swapping.
    pub swap_preemptions: u64,
    /// Preemptions recovered by recomputation.
    pub recompute_preemptions: u64,
    /// Current fraction of blocks saved by sharing (vLLM only, Fig. 15).
    pub sharing_savings: f64,
}

/// A serving system under trace-driven simulation: Orca variants and
/// FasterTransformer implement this; the vLLM adapter in `vllm-sim` wraps
/// the real engine behind the same driver.
pub trait BatchSystem {
    /// System label used in reports (e.g. `"Orca (Oracle)"`).
    fn name(&self) -> String;

    /// Admits a request into the arrival queue.
    fn enqueue(&mut self, req: SimRequest);

    /// Runs one iteration starting at `now`. `cost` maps the iteration's
    /// work to a duration. Returns `None` when there is nothing to run
    /// (the driver then fast-forwards to the next arrival).
    fn step(&mut self, now: f64, cost: &mut dyn FnMut(&StepWork) -> f64) -> Option<SystemStep>;

    /// Current memory breakdown.
    fn memory_snapshot(&self) -> MemorySnapshot;

    /// Requests currently being processed.
    fn num_running_requests(&self) -> usize;

    /// Sequences currently being processed (≥ requests).
    fn num_running_seqs(&self) -> usize;

    /// Whether any request is queued or running.
    fn has_unfinished(&self) -> bool;

    /// Optional counters (preemptions, sharing). Defaults to zeros.
    fn extra(&self) -> SystemExtra {
        SystemExtra::default()
    }
}

/// Rounds up to the next power of two (Orca Pow2 reservation policy).
#[must_use]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(25), 32);
        assert_eq!(next_pow2(32), 32);
        assert_eq!(next_pow2(33), 64);
    }

    #[test]
    fn normalized_latency() {
        let f = FinishedRequest {
            id: 0,
            arrival: 1.0,
            finish: 11.0,
            output_len: 20,
        };
        assert!((f.normalized_latency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_utilization() {
        let s = MemorySnapshot {
            used: 25,
            reserved: 25,
            internal_frag: 25,
            external_frag: 0,
            free: 25,
            capacity: 100,
        };
        assert!((s.utilization() - 0.25).abs() < 1e-12);
        assert!((s.utilization_of_allocated() - 25.0 / 75.0).abs() < 1e-12);
    }

    #[test]
    fn step_work_token_counts() {
        let w = StepWork {
            prefill_tokens: vec![10, 5],
            decode_contexts: vec![100, 200, 300],
            padded_tokens: 2,
            ..Default::default()
        };
        assert_eq!(w.new_tokens(), 20);
        assert!(!w.is_empty());
        assert!(StepWork::default().is_empty());
    }
}
