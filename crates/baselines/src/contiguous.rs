//! A vAttention-style contiguous-virtual-allocation baseline: each sequence
//! reserves a maximal *virtual* KV region up front (so the kernel sees
//! contiguous memory and no block tables), while *physical* pages are
//! committed on demand as the sequence grows.
//!
//! Compared to the Orca buddy baselines, external fragmentation disappears
//! (virtual contiguity hides placement) and reservation waste shrinks to
//! page-granularity internal fragmentation. Compared to PagedAttention,
//! there is still no sharing: forks eagerly copy the parent's KV into their
//! own reservation, and beam switches copy whole candidate caches.

use std::collections::VecDeque;

use crate::orca::BEAM_SWITCH_FRACTION;
use crate::types::{
    BatchSystem, FinishedRequest, MemorySnapshot, SimRequest, StepWork, SystemExtra, SystemStep,
};

/// Default physical commit granularity in KV token slots. vAttention commits
/// CUDA VMM pages (2 MiB per layer); at OPT-13B-scale KV widths that lands
/// in the low hundreds of token slots per commit.
pub const DEFAULT_PAGE_SLOTS: usize = 128;

#[derive(Debug)]
struct ContiguousSeq {
    /// Physical pages committed into this sequence's virtual reservation.
    committed_pages: usize,
}

#[derive(Debug)]
struct ContiguousRunning {
    req: SimRequest,
    seqs: Vec<ContiguousSeq>,
    /// Current context length (prompt + generated), equal across sequences.
    current_len: usize,
    prefilled: bool,
}

/// Contiguous-virtual-allocation serving system over a trace.
#[derive(Debug)]
pub struct ContiguousSystem {
    page_slots: usize,
    total_pages: usize,
    committed_pages: usize,
    max_model_len: usize,
    max_num_seqs: usize,
    waiting: VecDeque<SimRequest>,
    running: Vec<ContiguousRunning>,
    preemptions: u64,
}

impl ContiguousSystem {
    /// Creates a contiguous baseline over `capacity_slots` physical KV slots
    /// committed in `page_slots`-slot pages. Virtual reservations are
    /// `max_model_len` slots per sequence and cost nothing until committed.
    #[must_use]
    pub fn new(
        capacity_slots: usize,
        page_slots: usize,
        max_model_len: usize,
        max_num_seqs: usize,
    ) -> Self {
        let page_slots = page_slots.max(1);
        Self {
            page_slots,
            total_pages: capacity_slots / page_slots,
            committed_pages: 0,
            max_model_len,
            max_num_seqs,
            waiting: VecDeque::new(),
            running: Vec::new(),
            preemptions: 0,
        }
    }

    /// Physical commit granularity in slots.
    #[must_use]
    pub fn page_slots(&self) -> usize {
        self.page_slots
    }

    fn pages_for(&self, len: usize) -> usize {
        len.min(self.max_model_len).div_ceil(self.page_slots)
    }

    fn free_pages(&self) -> usize {
        self.total_pages - self.committed_pages
    }

    /// Admits requests FCFS while prompt pages can be committed for every
    /// sequence of the request (reservation itself is virtual and free).
    fn admit(&mut self) {
        while let Some(req) = self.waiting.front() {
            let running_seqs: usize = self.running.iter().map(|r| r.seqs.len()).sum();
            if running_seqs + req.n_seqs > self.max_num_seqs {
                break;
            }
            let pages = self.pages_for(req.prompt_len + 1);
            if pages * req.n_seqs > self.free_pages() {
                break;
            }
            let req = self.waiting.pop_front().expect("front exists");
            self.committed_pages += pages * req.n_seqs;
            self.running.push(ContiguousRunning {
                current_len: req.prompt_len,
                prefilled: false,
                seqs: (0..req.n_seqs)
                    .map(|_| ContiguousSeq {
                        committed_pages: pages,
                    })
                    .collect(),
                req,
            });
        }
    }

    /// Grows every running sequence's commitment to cover one more token,
    /// evicting the latest-admitted request (recompute-style preemption)
    /// whenever commit-on-demand runs out of physical pages.
    fn commit_for_growth(&mut self) {
        loop {
            let mut needed = 0usize;
            for r in &self.running {
                let want = self.pages_for(r.current_len + 1);
                for s in &r.seqs {
                    needed += want.saturating_sub(s.committed_pages);
                }
            }
            if needed <= self.free_pages() {
                let (page_slots, max_len) = (self.page_slots, self.max_model_len);
                for r in &mut self.running {
                    let want = (r.current_len + 1).min(max_len).div_ceil(page_slots);
                    for s in &mut r.seqs {
                        if want > s.committed_pages {
                            self.committed_pages += want - s.committed_pages;
                            s.committed_pages = want;
                        }
                    }
                }
                return;
            }
            // Evict the latest-admitted request; its KV is discarded and the
            // prompt recomputed on re-admission.
            let Some(victim) = self.running.pop() else {
                return;
            };
            for s in &victim.seqs {
                self.committed_pages -= s.committed_pages;
            }
            self.preemptions += 1;
            // Progress cannot be preserved without the cache; re-queue the
            // original request at the front (FCFS restart, prompt recomputed).
            self.waiting.push_front(victim.req);
        }
    }
}

impl BatchSystem for ContiguousSystem {
    fn name(&self) -> String {
        "vAttention (contiguous)".to_string()
    }

    fn enqueue(&mut self, req: SimRequest) {
        self.waiting.push_back(req);
    }

    fn step(&mut self, now: f64, cost: &mut dyn FnMut(&StepWork) -> f64) -> Option<SystemStep> {
        self.admit();
        self.commit_for_growth();
        if self.running.is_empty() {
            return None;
        }

        let mut work = StepWork::default();
        for r in &self.running {
            if !r.prefilled {
                // Prompt computed once; without sharing the KV is eagerly
                // copied into each fork's own contiguous reservation.
                work.prefill_tokens.push(r.req.prompt_len);
                work.copied_tokens += (r.seqs.len() - 1) * r.req.prompt_len;
            } else {
                for _ in 0..r.seqs.len() {
                    work.decode_contexts.push(r.current_len);
                }
                if r.req.is_beam && r.seqs.len() > 1 {
                    let switched = (BEAM_SWITCH_FRACTION * r.seqs.len() as f64).round() as usize;
                    work.copied_tokens += switched * r.current_len;
                }
            }
        }
        let elapsed = cost(&work);

        let mut finished = Vec::new();
        let max_model_len = self.max_model_len;
        for r in &mut self.running {
            r.prefilled = true;
            r.current_len += 1;
        }
        let committed = &mut self.committed_pages;
        self.running.retain_mut(|r| {
            let generated = r.current_len - r.req.prompt_len;
            let done = generated >= r.req.output_len || r.current_len >= max_model_len;
            if done {
                for s in &r.seqs {
                    *committed -= s.committed_pages;
                }
                finished.push(FinishedRequest {
                    id: r.req.id,
                    arrival: r.req.arrival,
                    finish: now + elapsed,
                    output_len: generated,
                });
            }
            !done
        });
        Some(SystemStep {
            elapsed,
            finished,
            work,
        })
    }

    fn memory_snapshot(&self) -> MemorySnapshot {
        let mut snap = MemorySnapshot {
            capacity: self.total_pages * self.page_slots,
            free: self.free_pages() * self.page_slots,
            ..Default::default()
        };
        for r in &self.running {
            for s in &r.seqs {
                let committed_slots = s.committed_pages * self.page_slots;
                snap.used += r.current_len;
                // Commit-on-demand never reserves beyond the current page,
                // so all committed-but-unused space is page-rounding waste.
                snap.internal_frag += committed_slots - r.current_len.min(committed_slots);
            }
        }
        snap
    }

    fn num_running_requests(&self) -> usize {
        self.running.len()
    }

    fn num_running_seqs(&self) -> usize {
        self.running.iter().map(|r| r.seqs.len()).sum()
    }

    fn has_unfinished(&self) -> bool {
        !self.waiting.is_empty() || !self.running.is_empty()
    }

    fn extra(&self) -> SystemExtra {
        SystemExtra {
            preemptions: self.preemptions,
            recompute_preemptions: self.preemptions,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cost() -> impl FnMut(&StepWork) -> f64 {
        |_: &StepWork| 1.0
    }

    #[test]
    fn single_request_lifecycle_returns_all_pages() {
        let mut s = ContiguousSystem::new(4096, 16, 2048, 256);
        s.enqueue(SimRequest::basic(0, 0.0, 10, 3));
        let mut cost = unit_cost();
        let r1 = s.step(0.0, &mut cost).unwrap();
        assert_eq!(r1.work.prefill_tokens, vec![10]);
        s.step(1.0, &mut cost).unwrap();
        let r3 = s.step(2.0, &mut cost).unwrap();
        assert_eq!(r3.finished.len(), 1);
        assert_eq!(r3.finished[0].output_len, 3);
        assert!(!s.has_unfinished());
        assert_eq!(s.memory_snapshot().free, 4096);
    }

    #[test]
    fn commits_on_demand_in_page_granularity() {
        let mut s = ContiguousSystem::new(4096, 16, 2048, 256);
        s.enqueue(SimRequest::basic(0, 0.0, 10, 100));
        let mut cost = unit_cost();
        s.step(0.0, &mut cost).unwrap();
        // Prompt (10) + first token fit in one 16-slot page.
        let snap = s.memory_snapshot();
        assert_eq!(snap.capacity - snap.free, 16);
        assert_eq!(
            snap.used + snap.reserved + snap.internal_frag + snap.external_frag + snap.free,
            snap.capacity
        );
        // Decode past the page boundary commits a second page.
        for i in 0..8 {
            s.step(1.0 + i as f64, &mut cost).unwrap();
        }
        let snap = s.memory_snapshot();
        assert_eq!(snap.capacity - snap.free, 32);
        assert_eq!(snap.external_frag, 0, "virtual contiguity has no holes");
    }

    #[test]
    fn internal_frag_bounded_by_page_size() {
        let mut s = ContiguousSystem::new(4096, 64, 2048, 256);
        s.enqueue(SimRequest::basic(0, 0.0, 10, 100));
        let mut cost = unit_cost();
        s.step(0.0, &mut cost).unwrap();
        let snap = s.memory_snapshot();
        assert!(snap.internal_frag < 64);
    }

    #[test]
    fn admits_more_than_reserve_max_baseline() {
        // 8 pages of 64 slots; Orca-Max would fit zero 2048-slot
        // reservations, contiguous admits many short prompts.
        let mut s = ContiguousSystem::new(512, 64, 2048, 256);
        for i in 0..4 {
            s.enqueue(SimRequest::basic(i, 0.0, 30, 5));
        }
        let mut cost = unit_cost();
        s.step(0.0, &mut cost).unwrap();
        assert_eq!(s.num_running_requests(), 4);
    }

    #[test]
    fn evicts_latest_when_commit_fails() {
        // Each request peaks at 54 tokens = 4 pages; 4 pages of capacity
        // lets one finish alone but forces an eviction while both grow.
        let mut s = ContiguousSystem::new(64, 16, 2048, 256);
        s.enqueue(SimRequest::basic(0, 0.0, 14, 40));
        s.enqueue(SimRequest::basic(1, 0.0, 14, 40));
        let mut cost = unit_cost();
        s.step(0.0, &mut cost).unwrap();
        assert_eq!(s.num_running_requests(), 2);
        let mut now = 1.0;
        while s.extra().preemptions == 0 && s.has_unfinished() {
            if s.step(now, &mut cost).is_none() {
                break;
            }
            now += 1.0;
        }
        assert!(s.extra().preemptions > 0, "growth must force an eviction");
        // The evicted request is re-queued, not lost.
        let mut done = 0;
        while s.has_unfinished() {
            match s.step(now, &mut cost) {
                Some(r) => {
                    done += r.finished.len();
                    now += 1.0;
                }
                None => break,
            }
        }
        assert_eq!(done, 2);
        assert_eq!(s.memory_snapshot().free, 64);
    }

    #[test]
    fn forks_copy_prompt_eagerly() {
        let mut s = ContiguousSystem::new(4096, 16, 2048, 256);
        s.enqueue(SimRequest {
            id: 0,
            arrival: 0.0,
            prompt_len: 64,
            output_len: 10,
            n_seqs: 4,
            is_beam: false,
        });
        let mut cost = unit_cost();
        let r = s.step(0.0, &mut cost).unwrap();
        assert_eq!(r.work.copied_tokens, 3 * 64);
        assert_eq!(s.num_running_seqs(), 4);
    }
}
