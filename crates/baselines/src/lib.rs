//! # vllm-baselines
//!
//! The contiguous-KV baseline systems of §6.1: Orca (Oracle / Pow2 / Max
//! reservation variants over a real buddy allocator), a
//! FasterTransformer-style request-level batching engine, and a
//! vAttention-style contiguous-virtual-allocation system (reserve-max
//! virtual, commit-on-demand physical pages), plus the shared
//! trace-simulation types consumed by `vllm-sim`'s discrete-event driver.

#![warn(missing_docs)]

pub mod buddy;
pub mod contiguous;
pub mod faster_transformer;
pub mod orca;
pub mod types;

pub use buddy::{BuddyAllocator, BuddyBlock};
pub use contiguous::{ContiguousSystem, DEFAULT_PAGE_SLOTS};
pub use faster_transformer::FasterTransformerSystem;
pub use orca::{OrcaSystem, ReservationPolicy, BEAM_SWITCH_FRACTION};
pub use types::{
    next_pow2, BatchSystem, FinishedRequest, MemorySnapshot, SimRequest, StepWork, SystemExtra,
    SystemStep,
};
