//! The FasterTransformer baseline (§6.1): a latency-optimized engine with
//! request-level dynamic batching.
//!
//! A custom Triton-style scheduler takes up to `B` earliest requests
//! (with `B` set as large as GPU memory allows given max-length KV
//! reservations), pads them to a common shape, and runs the whole batch to
//! completion — finished requests keep occupying their slot (padding) until
//! the longest output in the batch ends.

use std::collections::VecDeque;

use crate::types::{
    BatchSystem, FinishedRequest, MemorySnapshot, SimRequest, StepWork, SystemStep,
};

#[derive(Debug)]
struct FtRunning {
    req: SimRequest,
    current_len: usize,
    done: bool,
    reported: bool,
    finish_time: f64,
}

/// FasterTransformer-style serving system.
#[derive(Debug)]
pub struct FasterTransformerSystem {
    capacity_slots: usize,
    max_model_len: usize,
    max_batch: usize,
    waiting: VecDeque<SimRequest>,
    batch: Vec<FtRunning>,
    prefilled: bool,
}

impl FasterTransformerSystem {
    /// Creates the system; the maximum batch size is derived from the KV
    /// capacity and the max-length per-request reservation, as in §6.1.
    #[must_use]
    pub fn new(capacity_slots: usize, max_model_len: usize) -> Self {
        let max_batch = (capacity_slots / max_model_len).max(1);
        Self {
            capacity_slots,
            max_model_len,
            max_batch,
            waiting: VecDeque::new(),
            batch: Vec::new(),
            prefilled: false,
        }
    }

    /// Derived maximum batch size.
    #[must_use]
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }
}

impl BatchSystem for FasterTransformerSystem {
    fn name(&self) -> String {
        "FasterTransformer".to_string()
    }

    fn enqueue(&mut self, req: SimRequest) {
        // FasterTransformer's scheduler handles single-output requests; the
        // paper's Figs. 14/16/17 exclude it from multi-sequence workloads.
        debug_assert_eq!(req.n_seqs, 1, "FT baseline models single-output requests");
        self.waiting.push_back(req);
    }

    fn step(&mut self, now: f64, cost: &mut dyn FnMut(&StepWork) -> f64) -> Option<SystemStep> {
        // Form a new batch only when the previous one fully drained
        // (request-level batching).
        if self.batch.is_empty() {
            if self.waiting.is_empty() {
                return None;
            }
            for _ in 0..self.max_batch {
                let Some(req) = self.waiting.pop_front() else {
                    break;
                };
                self.batch.push(FtRunning {
                    current_len: req.prompt_len,
                    done: false,
                    reported: false,
                    finish_time: 0.0,
                    req,
                });
            }
            self.prefilled = false;
        }

        let mut work = StepWork::default();
        if !self.prefilled {
            // Padded batch prefill: every request is padded to the longest
            // prompt in the batch.
            let max_prompt = self
                .batch
                .iter()
                .map(|r| r.req.prompt_len)
                .max()
                .unwrap_or(0);
            for r in &self.batch {
                work.prefill_tokens.push(max_prompt);
                work.padded_tokens += max_prompt - r.req.prompt_len;
            }
        } else {
            for r in &self.batch {
                // Finished requests are padding: their slot still flows
                // through the kernels.
                work.decode_contexts.push(r.current_len);
                if r.done {
                    work.padded_tokens += 1;
                }
            }
        }
        let elapsed = cost(&work);
        let end = now + elapsed;

        // Commit.
        if !self.prefilled {
            self.prefilled = true;
        }
        let max_model_len = self.max_model_len;
        for r in &mut self.batch {
            if r.done {
                continue;
            }
            r.current_len += 1;
            let generated = r.current_len - r.req.prompt_len;
            if generated >= r.req.output_len || r.current_len >= max_model_len {
                r.done = true;
                r.finish_time = end;
            }
        }
        // Requests complete immediately (their latency ends when their last
        // token is produced), but their memory is held until the batch ends.
        let mut finished = Vec::new();
        for r in &mut self.batch {
            if r.done && !r.reported {
                r.reported = true;
                finished.push(FinishedRequest {
                    id: r.req.id,
                    arrival: r.req.arrival,
                    finish: r.finish_time,
                    output_len: r.current_len - r.req.prompt_len,
                });
            }
        }
        if self.batch.iter().all(|r| r.done) {
            self.batch.clear();
        }
        Some(SystemStep {
            elapsed,
            finished,
            work,
        })
    }

    fn memory_snapshot(&self) -> MemorySnapshot {
        let mut snap = MemorySnapshot {
            capacity: self.capacity_slots,
            ..Default::default()
        };
        for r in &self.batch {
            let final_len = (r.req.prompt_len + r.req.output_len).min(self.max_model_len);
            snap.used += r.current_len;
            snap.reserved += final_len.saturating_sub(r.current_len);
            snap.internal_frag += self.max_model_len - final_len;
        }
        let allocated = self.batch.len() * self.max_model_len;
        snap.free = self.capacity_slots - allocated;
        // Capacity not divisible by the reservation size is unusable.
        snap.external_frag = snap
            .capacity
            .saturating_sub(self.max_batch * self.max_model_len)
            .min(snap.free);
        snap.free -= snap.external_frag;
        snap
    }

    fn num_running_requests(&self) -> usize {
        self.batch.iter().filter(|r| !r.done).count()
    }

    fn num_running_seqs(&self) -> usize {
        self.num_running_requests()
    }

    fn has_unfinished(&self) -> bool {
        !self.waiting.is_empty() || self.batch.iter().any(|r| !r.done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cost() -> impl FnMut(&StepWork) -> f64 {
        |_: &StepWork| 1.0
    }

    #[test]
    fn batch_size_derived_from_memory() {
        let s = FasterTransformerSystem::new(15_700, 2048);
        assert_eq!(s.max_batch(), 7);
    }

    #[test]
    fn request_level_batching_blocks_new_arrivals() {
        let mut s = FasterTransformerSystem::new(4096, 2048); // Batch of 2.
        s.enqueue(SimRequest::basic(0, 0.0, 10, 2));
        s.enqueue(SimRequest::basic(1, 0.0, 10, 8));
        s.enqueue(SimRequest::basic(2, 0.0, 10, 2));
        let mut cost = unit_cost();
        s.step(0.0, &mut cost).unwrap(); // Prefill of batch {0, 1}: first token.
                                         // Request 2 must wait for the whole batch even after 0 finishes.
        let r = s.step(1.0, &mut cost).unwrap(); // 0 reaches its 2-token output.
        assert!(r.finished.iter().any(|f| f.id == 0));
        // 0 finished but the batch is not re-formed: still no room for 2.
        assert!(s.batch.iter().any(|b| b.done));
        let mut steps = 0;
        while s.batch.iter().any(|b| !b.done) {
            s.step(3.0 + steps as f64, &mut cost).unwrap();
            steps += 1;
        }
        // Now batch drained; next step admits request 2.
        let r = s.step(10.0, &mut cost).unwrap();
        assert_eq!(r.work.prefill_tokens.len(), 1);
    }

    #[test]
    fn padding_counted() {
        let mut s = FasterTransformerSystem::new(4096, 2048);
        s.enqueue(SimRequest::basic(0, 0.0, 100, 2));
        s.enqueue(SimRequest::basic(1, 0.0, 10, 8));
        let mut cost = unit_cost();
        let r = s.step(0.0, &mut cost).unwrap();
        // Prefill padded to 100 tokens each.
        assert_eq!(r.work.prefill_tokens, vec![100, 100]);
        assert_eq!(r.work.padded_tokens, 90);
        // After request 0 finishes, its decode slots are padding.
        s.step(1.0, &mut cost).unwrap();
        let r = s.step(2.0, &mut cost).unwrap(); // 0 done after this step.
        let _ = r;
        let r = s.step(3.0, &mut cost).unwrap();
        assert_eq!(r.work.padded_tokens, 1);
    }

    #[test]
    fn finish_times_not_delayed_by_batch() {
        let mut s = FasterTransformerSystem::new(4096, 2048);
        s.enqueue(SimRequest::basic(0, 0.0, 10, 1));
        s.enqueue(SimRequest::basic(1, 0.0, 10, 5));
        let mut cost = unit_cost();
        let mut now = 0.0;
        let mut finished = Vec::new();
        while s.has_unfinished() {
            let Some(r) = s.step(now, &mut cost) else {
                break;
            };
            now += r.elapsed;
            finished.extend(r.finished);
        }
        let f0 = finished.iter().find(|f| f.id == 0).unwrap();
        let f1 = finished.iter().find(|f| f.id == 1).unwrap();
        assert!(f0.finish < f1.finish);
    }

    #[test]
    fn memory_snapshot_sums_to_capacity() {
        let mut s = FasterTransformerSystem::new(5000, 2048);
        s.enqueue(SimRequest::basic(0, 0.0, 100, 50));
        let mut cost = unit_cost();
        s.step(0.0, &mut cost).unwrap();
        let snap = s.memory_snapshot();
        assert_eq!(
            snap.used + snap.reserved + snap.internal_frag + snap.external_frag + snap.free,
            snap.capacity
        );
        // 5000 slots, reservation 2048 → max batch 2, 904 unusable.
        assert_eq!(snap.external_frag, 5000 - 2 * 2048);
    }
}
