//! Property tests for the buddy allocator: conservation, alignment,
//! non-overlap, and full coalescing under arbitrary alloc/free
//! interleavings.

use proptest::prelude::*;

use vllm_baselines::BuddyAllocator;

#[derive(Debug, Clone)]
enum Op {
    Alloc(usize),
    Free(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..600).prop_map(Op::Alloc),
            (0usize..32).prop_map(Op::Free),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn buddy_invariants_hold(ops in ops(), capacity in 64usize..5000) {
        let mut b = BuddyAllocator::new(capacity);
        let mut live = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(size) => {
                    if let Some(blk) = b.allocate(size) {
                        // Alignment: offset is a multiple of the rounded size.
                        prop_assert_eq!(blk.offset % blk.allocated(), 0);
                        // In bounds.
                        prop_assert!(blk.offset + blk.allocated() <= capacity);
                        // Non-overlap with every live block.
                        for other in &live {
                            let o: &vllm_baselines::BuddyBlock = other;
                            let disjoint = blk.offset + blk.allocated() <= o.offset
                                || o.offset + o.allocated() <= blk.offset;
                            prop_assert!(disjoint, "overlap: {blk:?} vs {o:?}");
                        }
                        live.push(blk);
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        b.free(live.swap_remove(idx));
                    }
                }
            }
            // Conservation.
            let live_sum: usize = live.iter().map(|x| x.allocated()).sum();
            prop_assert_eq!(b.allocated_slots(), live_sum);
            prop_assert!(b.requested_slots() <= b.allocated_slots());
            prop_assert!(b.allocated_slots() <= capacity);
        }
        // Free everything: full heap restored.
        for blk in live {
            b.free(blk);
        }
        prop_assert_eq!(b.free_slots(), capacity);
        prop_assert_eq!(b.requested_slots(), 0);
        // The largest power of two within capacity is allocatable again.
        let biggest = if capacity.is_power_of_two() {
            capacity
        } else {
            capacity.next_power_of_two() / 2
        };
        prop_assert!(b.allocate(biggest).is_some(), "coalescing incomplete");
    }

    #[test]
    fn rounding_waste_never_exceeds_half(size in 1usize..4096) {
        let mut b = BuddyAllocator::new(8192);
        let blk = b.allocate(size).unwrap();
        // Pow2 rounding wastes strictly less than the requested size.
        prop_assert!(blk.rounding_waste() < size.max(1));
        b.free(blk);
    }
}
