//! Fig. 13: average number of batched requests when serving OPT-13B on
//! (a) ShareGPT at 2 req/s and (b) Alpaca at 30 req/s.
//!
//! Paper reference: vLLM batches 2.2x more requests than Orca (Oracle) and
//! 4.3x more than Orca (Max) on ShareGPT.

use vllm_bench::{sweep, SystemKind, DEFAULT_TRACE_SECONDS};
use vllm_sim::ServerConfig;
use vllm_workloads::Dataset;

fn panel(label: &str, dataset: &Dataset, rate: f64) {
    println!("--- {label}: {} @ {rate} req/s ---", dataset.name);
    let server = ServerConfig::opt_13b_1gpu();
    let mut vllm_batched = 0.0;
    println!(
        "  {:<20} {:>14} {:>14} {:>16}",
        "system", "avg requests", "avg seqs", "vs vLLM"
    );
    for kind in SystemKind::fig12_set() {
        let pts = sweep(
            kind,
            server,
            16,
            dataset,
            &[rate],
            DEFAULT_TRACE_SECONDS.min(300.0),
            1,
            false,
        );
        let r = &pts[0].report;
        if vllm_batched == 0.0 {
            vllm_batched = r.avg_running_requests;
        }
        println!(
            "  {:<20} {:>14.1} {:>14.1} {:>15.2}x",
            r.system,
            r.avg_running_requests,
            r.avg_running_seqs,
            vllm_batched / r.avg_running_requests.max(1e-9)
        );
    }
    println!();
}

fn main() {
    vllm_bench::print_figure_header(
        "Fig. 13",
        "Average number of batched requests, OPT-13B (paper: vLLM 2.2x Orca(Oracle), 4.3x Orca(Max) on ShareGPT)",
    );
    panel("(a)", &Dataset::sharegpt(), 2.0);
    panel("(b)", &Dataset::alpaca(), 30.0);
}
