//! Ablation studies beyond the paper's §7, exercising the design choices
//! DESIGN.md calls out:
//!
//! (A) Block sharing on/off — quantifies the copy-on-write sharing
//!     contribution separately from paging (forks eagerly copy blocks when
//!     sharing is off, as a contiguous system must).
//! (B) Admission watermark 0% vs 1% — the §4.2 guard against admitting a
//!     request only to preempt it immediately.
//! (C) Prefix cache on/off at fixed rate (complements Fig. 16's sweep).
//! (D) Preemption victim policy — latest-arrival (the paper's
//!     FCFS-preserving choice) vs largest-footprint.

use vllm_core::config::{PreemptionMode, VictimPolicy};
use vllm_sim::{run_trace, trace_to_requests, CostModel, ServerConfig, VllmSimSystem};
use vllm_workloads::{synthesize_translation_trace, Dataset, PrefixKind, Trace};

fn main() {
    vllm_bench::print_figure_header("Ablations", "Design-choice ablations (beyond §7)");
    let server = ServerConfig::opt_13b_1gpu();
    let cost = CostModel::contiguous(server);

    println!("(A) block sharing: parallel sampling n=4 and beam n=4, Alpaca");
    println!(
        "  {:<22} {:<10} {:>8} {:>14} {:>12} {:>12}",
        "system", "decoding", "rate", "norm-lat(s)", "sharing", "copied-tok"
    );
    for (is_beam, label, rate) in [(false, "parallel-4", 10.0), (true, "beam-4", 6.0)] {
        let trace = Trace::synthesize(&Dataset::alpaca(), rate, (rate * 240.0) as usize, 42);
        let reqs = trace_to_requests(&trace, 4, is_beam);
        for shared in [true, false] {
            let mut sys = VllmSimSystem::new(server, 16, PreemptionMode::Swap);
            if !shared {
                sys = sys.without_sharing();
            }
            let r = run_trace(&mut sys, &reqs, &cost, rate);
            println!(
                "  {:<22} {:<10} {:>8.1} {:>14.4} {:>11.1}% {:>12}",
                r.system,
                label,
                rate,
                r.mean_normalized_latency,
                r.avg_sharing_savings * 100.0,
                r.copied_tokens
            );
        }
    }

    println!("\n(B) admission watermark: ShareGPT @ 2.2 req/s (preemption-heavy)");
    println!(
        "  {:<22} {:>14} {:>14} {:>12}",
        "watermark", "norm-lat(s)", "preemptions", "finished"
    );
    for watermark in [0.0, 0.01, 0.05] {
        let trace = Trace::synthesize(&Dataset::sharegpt(), 2.2, 520, 42);
        let reqs = trace_to_requests(&trace, 1, false);
        let mut sys =
            VllmSimSystem::with_watermark(server, 16, PreemptionMode::Recompute, watermark);
        let r = run_trace(&mut sys, &reqs, &cost, 2.2);
        println!(
            "  {:<22} {:>14.4} {:>14} {:>12}",
            format!("{:.0}%", watermark * 100.0),
            r.mean_normalized_latency,
            r.preemptions,
            r.num_finished
        );
    }

    println!("\n(C) prefix cache on/off: 5-shot translation @ 14 req/s");
    let prefix = PrefixKind::FiveShot;
    let trace = synthesize_translation_trace(prefix, 14.0, (14.0 * 240.0) as usize, 42);
    let reqs = trace_to_requests(&trace.trace, 1, false);
    for cached in [true, false] {
        let mut sys = VllmSimSystem::new(server, 16, PreemptionMode::Recompute);
        sys.set_shared_prefix(prefix.tokens(50_000), cached);
        let r = run_trace(&mut sys, &reqs, &cost, 14.0);
        println!(
            "  prefix cache {:<5} norm-lat {:>10.4} s/token",
            cached, r.mean_normalized_latency
        );
    }

    println!("\n(D) preemption victim policy: ShareGPT @ 2.4 req/s");
    println!(
        "  {:<22} {:>14} {:>10} {:>14} {:>12}",
        "policy", "norm-lat(s)", "p99(s)", "preemptions", "finished"
    );
    for (policy, label) in [
        (VictimPolicy::LatestArrival, "latest-arrival"),
        (VictimPolicy::LargestFootprint, "largest-footprint"),
    ] {
        let trace = Trace::synthesize(&Dataset::sharegpt(), 2.4, 580, 42);
        let reqs = trace_to_requests(&trace, 1, false);
        let mut sys =
            VllmSimSystem::with_options(server, 16, PreemptionMode::Recompute, 0.01, policy);
        let r = run_trace(&mut sys, &reqs, &cost, 2.4);
        println!(
            "  {:<22} {:>14.4} {:>10.3} {:>14} {:>12}",
            label,
            r.mean_normalized_latency,
            r.p99_normalized_latency,
            r.preemptions,
            r.num_finished
        );
    }
}
