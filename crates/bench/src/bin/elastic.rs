//! Elastic block-pool capacity curves: fixed-pool paged vs elastic paged vs
//! the vAttention-style contiguous baseline, at an equal KV memory budget.
//!
//! Two KV layouts are swept (Fig. 12-style rate sweep each):
//!
//! * **scalar** — fp16 KV, the paper's Table 1 budget.
//! * **quant-kv8** — int8 KV halves the bytes per token, doubling the slot
//!   count the same byte budget buys.
//!
//! For each (layout, system, rate) the harness replays the same synthesized
//! trace and records normalized latency, the time-weighted and peak batch
//! sizes, and the memory-waste breakdown. Results go to `results/elastic.json`
//! and `BENCH_elastic.json` (JSON lines). With `--ci` the run additionally
//! asserts the capacity gates (elastic peak batch >= fixed-pool baseline at
//! equal budget; contiguous completes with zero external fragmentation) and
//! writes its artifact under `target/ci-elastic/`, exiting non-zero on any
//! failure.

use std::fmt::Write as _;

use vllm_bench::SystemKind;
use vllm_sim::{
    run_trace_with_timeline, trace_to_requests, CostModel, RunReport, ServerConfig,
    ACTIVATION_RESERVE_FRACTION,
};
use vllm_workloads::{Dataset, Trace};

/// Paged block size (tokens per KV block).
const BLOCK_SIZE: usize = 16;
/// Virtual trace duration per sweep point, seconds.
const TRACE_SECONDS: f64 = 60.0;
/// Offered rates; the highest point saturates the small server's KV budget
/// (ShareGPT's long sequences make capacity, not compute, the binding
/// constraint).
const RATES: [f64; 2] = [0.5, 1.5];
/// Timeline sampling interval for peak-batch detection, seconds.
const SAMPLE_DT: f64 = 0.25;
/// Trace synthesis seed.
const SEED: u64 = 42;

/// One (layout, system, rate) measurement.
struct Row {
    layout: &'static str,
    rate: f64,
    capacity_slots: usize,
    peak_running: usize,
    report: RunReport,
}

/// The small test server: OPT-13B shape with memory trimmed so sweeps run
/// in seconds (~4.6K KV slots at fp16).
fn scalar_server() -> ServerConfig {
    let mut cfg = ServerConfig::opt_13b_1gpu();
    cfg.gpu.mem_bytes_per_gpu = 30e9;
    cfg
}

/// Same server with int8 KV: half the bytes per token means the identical
/// byte budget holds twice the slots. Modeled by solving for the total
/// memory whose KV budget is doubled at unchanged weights and reserve
/// fraction.
fn quant_kv8_server() -> ServerConfig {
    let base = scalar_server();
    let kv2 = 2.0 * base.kv_cache_bytes();
    let mut cfg = base;
    cfg.gpu.mem_bytes_per_gpu = (kv2 + base.model.weight_bytes())
        / ((1.0 - ACTIVATION_RESERVE_FRACTION) * base.gpu.num_gpus as f64);
    cfg
}

fn run_point(layout: &'static str, kind: SystemKind, server: ServerConfig, rate: f64) -> Row {
    let trace = Trace::synthesize(
        &Dataset::sharegpt(),
        rate,
        (rate * TRACE_SECONDS).ceil() as usize,
        SEED,
    );
    let requests = trace_to_requests(&trace, 1, false);
    let cost = CostModel::contiguous(server);
    let mut system = kind.build(server, BLOCK_SIZE);
    let report = run_trace_with_timeline(system.as_mut(), &requests, &cost, rate, SAMPLE_DT);
    let peak_running = report
        .timeline
        .iter()
        .map(|p| p.running_requests)
        .max()
        .unwrap_or(0);
    Row {
        layout,
        rate,
        capacity_slots: server.max_kv_slots(),
        peak_running,
        report,
    }
}

fn row_json(r: &Row) -> String {
    format!(
        concat!(
            "{{\"layout\":\"{}\",\"system\":\"{}\",\"rate\":{:.2},",
            "\"capacity_slots\":{},\"requests\":{},\"finished\":{},",
            "\"mean_norm_latency_s\":{:.4},\"p90_norm_latency_s\":{:.4},",
            "\"avg_running\":{:.2},\"peak_running\":{},",
            "\"mem_used_frac\":{:.4},\"mem_internal_frac\":{:.4},",
            "\"mem_external_frac\":{:.4},\"preemptions\":{},",
            "\"copied_tokens\":{}}}"
        ),
        r.layout,
        r.report.system,
        r.rate,
        r.capacity_slots,
        r.report.num_requests,
        r.report.num_finished,
        r.report.mean_normalized_latency,
        r.report.p90_normalized_latency,
        r.report.avg_running_requests,
        r.peak_running,
        r.report.mem.used,
        r.report.mem.internal,
        r.report.mem.external,
        r.report.preemptions,
        r.report.copied_tokens,
    )
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");

    let layouts: [(&'static str, ServerConfig); 2] = [
        ("scalar", scalar_server()),
        ("quant-kv8", quant_kv8_server()),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (layout, server) in layouts {
        println!(
            "== layout {layout}: {} KV slots at equal byte budget ==",
            server.max_kv_slots()
        );
        println!(
            "  {:<24} {:>6} {:>10} {:>6} {:>12} {:>8}",
            "system", "rate", "finished", "peak", "norm-lat(s)", "preempt"
        );
        for kind in SystemKind::capacity_set() {
            for rate in RATES {
                let row = run_point(layout, kind, server, rate);
                println!(
                    "  {:<24} {:>6.1} {:>10} {:>6} {:>12.4} {:>8}",
                    row.report.system,
                    rate,
                    format!("{}/{}", row.report.num_finished, row.report.num_requests),
                    row.peak_running,
                    row.report.mean_normalized_latency,
                    row.report.preemptions
                );
                rows.push(row);
            }
        }
        println!();
    }

    // JSON-lines artifact (one row per measurement).
    let mut lines = String::new();
    for r in &rows {
        writeln!(lines, "{}", row_json(r)).unwrap();
    }
    let root = repo_root();
    std::fs::create_dir_all(root.join("results")).expect("create results dir");
    std::fs::write(root.join("results/elastic.json"), &lines).expect("write results/elastic.json");
    std::fs::write(root.join("BENCH_elastic.json"), &lines).expect("write BENCH_elastic.json");
    println!("wrote results/elastic.json and BENCH_elastic.json");
    if ci {
        std::fs::create_dir_all(root.join("target/ci-elastic")).expect("create ci dir");
        std::fs::write(root.join("target/ci-elastic/elastic.json"), &lines)
            .expect("write ci artifact");
    }

    if !ci {
        return;
    }

    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failures += 1;
        }
    };

    let find = |layout: &str, system: &str, rate: f64| -> &Row {
        rows.iter()
            .find(|r| {
                r.layout == layout && r.report.system == system && (r.rate - rate).abs() < 1e-9
            })
            .unwrap_or_else(|| panic!("missing row {layout}/{system}/{rate}"))
    };

    for layout in ["scalar", "quant-kv8"] {
        for rate in RATES {
            let fixed = find(layout, "vLLM", rate);
            let elastic = find(layout, "vLLM (elastic)", rate);
            let contig = find(layout, "vAttention (contiguous)", rate);

            // Everyone drains the trace.
            for r in [fixed, elastic, contig] {
                check(
                    r.report.num_finished == r.report.num_requests,
                    &format!(
                        "{layout}@{rate}: {} finished {}/{}",
                        r.report.system, r.report.num_finished, r.report.num_requests
                    ),
                );
            }
            // Capacity gate: the elastic pool inflates to at least the
            // fixed-pool batch at the same budget.
            check(
                elastic.peak_running >= fixed.peak_running,
                &format!(
                    "{layout}@{rate}: elastic peak batch {} < fixed {}",
                    elastic.peak_running, fixed.peak_running
                ),
            );
            // Contiguous has commit-on-demand semantics: no allocator holes.
            check(
                contig.report.mem.external.abs() < 1e-12,
                &format!("{layout}@{rate}: contiguous reported external fragmentation"),
            );
        }
    }

    // quant-kv8 doubles the slot budget, which must not lower the peak batch.
    for rate in RATES {
        let scalar = find("scalar", "vLLM (elastic)", rate);
        let quant = find("quant-kv8", "vLLM (elastic)", rate);
        check(
            quant.peak_running >= scalar.peak_running,
            &format!(
                "quant-kv8@{rate}: peak batch {} < scalar {}",
                quant.peak_running, scalar.peak_running
            ),
        );
    }

    if failures > 0 {
        eprintln!("{failures} elastic capacity check(s) failed");
        std::process::exit(1);
    }
    println!("elastic capacity CI gate passed");
}

fn repo_root() -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."))
}
