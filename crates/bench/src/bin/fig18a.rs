//! Fig. 18a: attention kernel microbenchmark — latency of the paged
//! decode-attention kernel vs the contiguous (FasterTransformer-style)
//! kernel, measured on the real CPU kernels of `vllm-model`.
//!
//! Paper reference: the GPU PagedAttention kernel is 20–26% slower than
//! the fused FasterTransformer kernel. The CPU analog measures the same
//! quantity (block-table indirection overhead) on this machine; the
//! absolute ratio differs but stays a bounded constant factor that only
//! affects the attention operator.

use std::time::Instant;

use vllm_model::{contiguous_attention_decode, paged_attention_decode, KvPool};

const N_HEADS: usize = 8;
const HEAD_DIM: usize = 64;
const HIDDEN: usize = N_HEADS * HEAD_DIM;
const BLOCK_SIZE: usize = 16;

fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 / 1000.0) - 1.0
        })
        .collect()
}

fn bench<F: FnMut()>(mut f: F, iters: usize) -> f64 {
    // Warm up.
    for _ in 0..3 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    vllm_bench::print_figure_header(
        "Fig. 18a",
        "Decode attention kernel latency: paged (block table) vs contiguous, CPU analog",
    );
    println!(
        "  {:>6} {:>6} {:>16} {:>16} {:>10}",
        "batch", "ctx", "contiguous(us)", "paged(us)", "overhead"
    );
    for &batch in &[1usize, 8, 32] {
        for &ctx in &[64usize, 256, 1024] {
            let k = fill(3, ctx * HIDDEN);
            let v = fill(5, ctx * HIDDEN);
            let qs: Vec<Vec<f32>> = (0..batch).map(|i| fill(7 + i as u64, HIDDEN)).collect();

            // Paged copy of the same KV, scattered over a block table.
            let n_blocks = ctx.div_ceil(BLOCK_SIZE);
            let mut pool = KvPool::new(1, n_blocks + 2, BLOCK_SIZE, HIDDEN);
            let table: Vec<usize> = (0..n_blocks).map(|j| (n_blocks + 1) - j).collect();
            for t in 0..ctx {
                pool.write(
                    0,
                    table[t / BLOCK_SIZE],
                    t % BLOCK_SIZE,
                    &k[t * HIDDEN..(t + 1) * HIDDEN],
                    &v[t * HIDDEN..(t + 1) * HIDDEN],
                );
            }

            let mut out = vec![0.0f32; HIDDEN];
            let iters = (200_000 / (batch * ctx)).clamp(5, 2000);
            let t_flat = bench(
                || {
                    for q in &qs {
                        contiguous_attention_decode(q, &k, &v, ctx, N_HEADS, HEAD_DIM, &mut out);
                    }
                },
                iters,
            );
            let t_paged = bench(
                || {
                    for q in &qs {
                        paged_attention_decode(
                            q, &pool, 0, &table, ctx, N_HEADS, HEAD_DIM, &mut out,
                        );
                    }
                },
                iters,
            );
            println!(
                "  {:>6} {:>6} {:>16.1} {:>16.1} {:>9.1}%",
                batch,
                ctx,
                t_flat * 1e6,
                t_paged * 1e6,
                (t_paged / t_flat - 1.0) * 100.0
            );
        }
    }
    println!(
        "\npaper (GPU): paged kernel 20-26% slower than FasterTransformer's \
         fused kernel; the simulator's end-to-end runs charge a 22% KV-read \
         overhead to vLLM accordingly."
    );
}
