//! Distributed-tracing soak: span propagation across kill/retry, Perfetto
//! export, and span/metric consistency gates.
//!
//! Replays a mixed workload through the [`FaultCluster`] harness while one
//! replica is killed mid-run (and restarted later), so at least one request
//! is re-routed and its retry shows up as a sibling `attempt` span under the
//! same root. Every request's spans — from the cluster's root context down
//! through queue/prefill/decode stage spans to per-backend kernel spans —
//! are collected from all replicas (including engines archived on restart),
//! stitched under one synthesized `router` root per request, and exported
//! two ways:
//!
//! * `results/trace.json` — one-line JSON (`{"tracks": [...]}`), the same
//!   style as the metrics exposition;
//! * `results/trace_perfetto.json` — Chrome trace-event JSON, loadable in
//!   Perfetto / `chrome://tracing`, one track per replica generation.
//!
//! With `--ci` the harness writes under `target/ci-trace/` and gates:
//!
//! 1. every traced request forms a complete, well-nested span tree
//!    (root → attempt → ≥3 engine stages → ≥1 kernel span);
//! 2. at least one killed request carries two sibling `attempt` spans;
//! 3. the Perfetto artifact parses and is structurally valid;
//! 4. the sum of attempt-span durations matches the merged
//!    `vllm_request_e2e_seconds` histogram sums within 1%;
//! 5. no span log reported drops at default capacity.

use std::collections::HashMap;
use std::fmt::Write as _;

use vllm_cluster::{
    ClusterRequest, FaultCluster, FaultClusterConfig, FaultKind, FaultPlan, RoutePolicy,
};
use vllm_core::telemetry::{
    spans_to_chrome_trace, spans_to_json, trace_seed, validate_span_tree, Json, MetricValue, Span,
    TraceContext,
};

/// Fleet size under test.
const REPLICAS: usize = 3;
/// Requests in the mixed workload.
const REQUESTS: u64 = 36;
/// Lockstep step at which replica 0 is killed.
const KILL_AT: u64 = 6;
/// Lockstep step at which replica 0 is restarted.
const RESTART_AT: u64 = 30;

fn prompt(id: u64, len: usize) -> Vec<u32> {
    (0..len)
        .map(|i| 1 + ((id * 31 + i as u64 * 7) % 997) as u32)
        .collect()
}

/// A mixed workload: prompt lengths 12–20 tokens, outputs 6–15 tokens, one
/// arrival per lockstep step.
fn workload() -> Vec<ClusterRequest> {
    (0..REQUESTS)
        .map(|i| ClusterRequest {
            id: i,
            arrival: i as f64,
            prompt: prompt(i, 12 + (i % 3) as usize * 4),
            output_len: 6 + (i % 4) as usize * 3,
        })
        .collect()
}

/// The root trace context the cluster mints for request `id` (deterministic,
/// so the bench can re-derive it to stitch attempts together).
fn root_ctx(id: u64) -> TraceContext {
    TraceContext::mint(trace_seed(&id.to_string()), true)
}

/// Synthesizes the per-request `router` root span covering every span its
/// attempts produced, so the attempts' shared parent id resolves and the
/// tree has exactly one root.
fn synthesize_roots(tracks: &[(String, Vec<Span>)]) -> Vec<Span> {
    let mut bounds: HashMap<u64, (f64, f64)> = HashMap::new();
    for (_, spans) in tracks {
        for s in spans {
            if s.trace_id == 0 {
                continue;
            }
            let e = bounds.entry(s.trace_id).or_insert((s.start, s.end));
            e.0 = e.0.min(s.start);
            e.1 = e.1.max(s.end);
        }
    }
    let mut roots = Vec::new();
    for id in 0..REQUESTS {
        let ctx = root_ctx(id);
        if let Some(&(start, end)) = bounds.get(&ctx.trace_id) {
            roots.push(Span {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                parent_span_id: 0,
                name: "router".to_string(),
                start,
                end,
                attrs: vec![("request_id".to_string(), id.to_string())],
            });
        }
    }
    roots
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");

    let plan = FaultPlan::new(0)
        .with_event(KILL_AT, 0, FaultKind::KillReplica)
        .with_event(RESTART_AT, 0, FaultKind::RestartReplica);
    let mut cluster =
        FaultCluster::new(FaultClusterConfig::new(REPLICAS).with_policy(RoutePolicy::RoundRobin));
    let report = cluster.run(&plan, workload());
    println!(
        "run: {}/{} completed, {} rejected, {} retries, {} kills, {} steps",
        report.completed,
        report.num_requests,
        report.rejected,
        report.retries,
        report.kills,
        report.steps
    );

    // One track per replica generation (archived engines first, the live
    // fleet last), plus the cluster-level fault-event track and the
    // synthesized per-request roots.
    let all = cluster.all_spans();
    let live_start = all.len() - REPLICAS;
    let mut tracks: Vec<(String, Vec<Span>)> = all
        .into_iter()
        .enumerate()
        .map(|(pos, (i, spans))| {
            let label = if pos < live_start {
                format!("replica{i}.gen{pos}")
            } else {
                format!("replica{i}")
            };
            (label, spans)
        })
        .collect();
    tracks.push((
        "cluster".to_string(),
        cluster.telemetry().spans().snapshot(),
    ));
    let roots = synthesize_roots(&tracks);
    tracks.insert(0, ("router".to_string(), roots));
    let span_count: usize = tracks.iter().map(|(_, s)| s.len()).sum();
    println!(
        "collected {span_count} spans across {} tracks",
        tracks.len()
    );

    let dir = if ci { "target/ci-trace" } else { "results" };
    std::fs::create_dir_all(dir).expect("create output dir");
    let json_path = format!("{dir}/trace.json");
    let perfetto_path = format!("{dir}/trace_perfetto.json");
    std::fs::write(&json_path, spans_to_json(&tracks).to_string() + "\n")
        .expect("write trace.json");
    let perfetto = spans_to_chrome_trace(&tracks).to_string();
    std::fs::write(&perfetto_path, perfetto.clone() + "\n").expect("write trace_perfetto.json");
    println!("wrote {json_path}");
    println!("wrote {perfetto_path}");

    // Per-trace span sets (traced spans only; untraced step/fault spans have
    // trace id 0 and live outside request trees).
    let mut by_trace: HashMap<u64, Vec<Span>> = HashMap::new();
    for (_, spans) in &tracks {
        for s in spans {
            if s.trace_id != 0 {
                by_trace.entry(s.trace_id).or_default().push(s.clone());
            }
        }
    }

    // Span/metric consistency: each `attempt` span that has a `decode`
    // child ends exactly when the e2e histogram observed its sample, so the
    // two sums must agree.
    let mut attempt_sum = 0.0f64;
    for spans in by_trace.values() {
        for a in spans.iter().filter(|s| s.name == "attempt") {
            // Truncated decode spans (attempt died mid-generation) have no
            // matching e2e sample, so only clean decodes pair with the
            // histogram.
            if spans.iter().any(|s| {
                s.name == "decode"
                    && s.parent_span_id == a.span_id
                    && !s.attrs.iter().any(|(k, _)| k == "truncated")
            }) {
                attempt_sum += a.duration();
            }
        }
    }
    let merged = cluster.merged_snapshot();
    let e2e_sum: f64 = merged
        .metrics
        .iter()
        .filter(|m| m.name.starts_with("vllm_request_e2e_seconds{"))
        .filter_map(|m| match &m.value {
            MetricValue::Histogram(h) => Some(h.sum),
            _ => None,
        })
        .sum();
    let rel = if e2e_sum > 0.0 {
        (attempt_sum - e2e_sum).abs() / e2e_sum
    } else {
        f64::INFINITY
    };
    println!(
        "attempt-span sum {attempt_sum:.6}s vs e2e histogram sum {e2e_sum:.6}s \
         (rel diff {:.4}%)",
        rel * 100.0
    );
    println!("span-log drops: {}", cluster.span_log_drops());

    // Summary artifact alongside the trace dumps.
    let mut summary = String::new();
    write!(
        summary,
        concat!(
            "{{\"requests\":{},\"completed\":{},\"retries\":{},\"kills\":{},",
            "\"spans\":{},\"traces\":{},\"attempt_span_sum\":{:.6},",
            "\"e2e_histogram_sum\":{:.6},\"span_log_drops\":{}}}"
        ),
        report.num_requests,
        report.completed,
        report.retries,
        report.kills,
        span_count,
        by_trace.len(),
        attempt_sum,
        e2e_sum,
        cluster.span_log_drops()
    )
    .unwrap();
    std::fs::write(format!("{dir}/trace_summary.json"), summary + "\n")
        .expect("write trace_summary.json");

    if !ci {
        return;
    }

    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failures += 1;
        }
    };

    check(report.kills == 1, "expected exactly one kill");
    check(report.lost == 0, "requests were lost");
    check(report.duplicates == 0, "duplicate completions");
    check(
        report.completed == report.num_requests,
        "capacity is ample: every request must complete",
    );
    check(report.retries > 0, "the kill must force re-routing retries");

    // Gate 1: every traced request forms a complete, well-nested tree.
    check(
        by_trace.len() == REQUESTS as usize,
        "every request must leave a trace",
    );
    let mut deep_validated = 0usize;
    let mut sibling_retries = 0usize;
    for (trace_id, spans) in &by_trace {
        if let Err(e) = validate_span_tree(spans) {
            check(false, &format!("trace {trace_id:016x}: {e}"));
            continue;
        }
        let attempts: Vec<&Span> = spans.iter().filter(|s| s.name == "attempt").collect();
        check(
            !attempts.is_empty(),
            &format!("trace {trace_id:016x}: no attempt span"),
        );
        if attempts.len() >= 2 {
            sibling_retries += 1;
            check(
                attempts
                    .iter()
                    .all(|a| a.parent_span_id == attempts[0].parent_span_id),
                &format!("trace {trace_id:016x}: retry attempts are not siblings"),
            );
        }
        // Depth: root → attempt → ≥3 engine stage spans → ≥1 kernel span.
        let deep = attempts.iter().any(|a| {
            let stages = spans
                .iter()
                .filter(|s| {
                    s.parent_span_id == a.span_id
                        && matches!(s.name.as_str(), "admit" | "queue" | "prefill" | "decode")
                })
                .count();
            stages >= 3
        });
        let kernels = spans.iter().any(|s| s.name.starts_with("kernel:"));
        if deep && kernels {
            deep_validated += 1;
        }
    }
    check(
        deep_validated > 0,
        "no request produced the full router → replica → stages → kernel tree",
    );
    check(
        sibling_retries > 0,
        "the killed requests must show retry attempts as sibling spans",
    );

    // Gate 2: kernel spans carry the backend label.
    let backend_labeled = tracks
        .iter()
        .flat_map(|(_, s)| s)
        .any(|s| s.name.starts_with("kernel:") && s.attrs.iter().any(|(k, _)| k == "backend"));
    check(backend_labeled, "kernel spans must carry a backend label");

    // Gate 3: the Perfetto artifact parses and is structurally valid.
    match Json::parse(&perfetto) {
        Err(e) => check(false, &format!("perfetto JSON does not parse: {e}")),
        Ok(doc) => {
            let events = doc.get("traceEvents").and_then(Json::as_arr);
            check(events.is_some(), "perfetto JSON lacks traceEvents");
            if let Some(events) = events {
                check(!events.is_empty(), "perfetto traceEvents is empty");
                let well_formed = events.iter().all(|e| {
                    let ph = e.get("ph").and_then(Json::as_str);
                    e.get("pid").and_then(Json::as_f64).is_some()
                        && e.get("tid").and_then(Json::as_f64).is_some()
                        && e.get("name").and_then(Json::as_str).is_some()
                        && match ph {
                            Some("X") => {
                                e.get("ts").and_then(Json::as_f64).is_some()
                                    && e.get("dur").and_then(Json::as_f64).is_some()
                            }
                            Some("M") => true,
                            _ => false,
                        }
                });
                check(well_formed, "perfetto traceEvents are malformed");
            }
            check(
                doc.get("displayTimeUnit").and_then(Json::as_str) == Some("ms"),
                "perfetto JSON lacks displayTimeUnit",
            );
        }
    }

    // Gate 4: span durations vs e2e histogram within 1%.
    check(
        rel <= 0.01,
        &format!("span/e2e consistency off by {:.4}% (> 1%)", rel * 100.0),
    );

    // Gate 5: no span-log drops at default capacity.
    check(
        cluster.span_log_drops() == 0,
        "span logs dropped spans at default capacity",
    );

    if failures > 0 {
        eprintln!("{failures} tracing check(s) failed");
        std::process::exit(1);
    }
    println!("tracing CI gate passed");
}
