//! Fig. 15 (and the §6.3 ShareGPT numbers): average memory saving from
//! sharing KV blocks — blocks saved by sharing divided by total logical
//! blocks — for parallel sampling (2/4/6) and beam search (2/4/6).
//!
//! Paper reference: Alpaca 6.1%–9.8% (parallel) and 37.6%–55.2% (beam);
//! ShareGPT 16.2%–30.5% (parallel) and 44.3%–66.3% (beam).

use vllm_bench::{sweep, SystemKind};
use vllm_sim::ServerConfig;
use vllm_workloads::Dataset;

fn main() {
    vllm_bench::print_figure_header(
        "Fig. 15",
        "Average memory saving from block sharing while serving OPT-13B",
    );
    let server = ServerConfig::opt_13b_1gpu();
    for (dataset, rate_parallel, rate_beam) in [
        (Dataset::alpaca(), 16.0, 6.0),
        (Dataset::sharegpt(), 1.2, 0.8),
    ] {
        println!("{} trace:", dataset.name);
        println!(
            "  {:<22} {:>6} {:>6} {:>6}",
            "decoding", "n=2", "n=4", "n=6"
        );
        for (mode_label, is_beam, rate) in [
            ("parallel sampling", false, rate_parallel),
            ("beam search", true, rate_beam),
        ] {
            print!("  {mode_label:<22}");
            for n in [2usize, 4, 6] {
                let pts = sweep(
                    SystemKind::Vllm,
                    server,
                    16,
                    &dataset,
                    &[rate],
                    240.0,
                    n,
                    is_beam,
                );
                print!(" {:>5.1}%", pts[0].report.avg_sharing_savings * 100.0);
            }
            println!();
        }
        println!();
    }
    println!(
        "paper: Alpaca parallel 6.1-9.8%, beam 37.6-55.2%; ShareGPT parallel \
         16.2-30.5%, beam 44.3-66.3% (savings grow with n and with longer \
         prompts)."
    );
}
