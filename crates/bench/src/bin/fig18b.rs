//! Fig. 18b: impact of the KV block size on end-to-end latency, OPT-13B
//! with the ShareGPT and Alpaca traces at fixed request rates.
//!
//! Paper reference: block sizes 16–128 perform best on ShareGPT; on Alpaca
//! 16–32 works well and larger blocks degrade (sequences shorter than the
//! block); vLLM defaults to 16.

use vllm_bench::{sweep, SystemKind};
use vllm_sim::ServerConfig;
use vllm_workloads::Dataset;

const SECONDS: f64 = 300.0;

fn main() {
    vllm_bench::print_figure_header(
        "Fig. 18b",
        "End-to-end normalized latency vs block size, OPT-13B (fixed rates)",
    );
    let server = ServerConfig::opt_13b_1gpu();
    let block_sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    println!(
        "  {:<12} {}",
        "block size",
        block_sizes
            .iter()
            .map(|b| format!("{b:>9}"))
            .collect::<String>()
    );
    for (dataset, rate) in [(Dataset::sharegpt(), 1.6), (Dataset::alpaca(), 24.0)] {
        print!("  {:<12}", format!("{} @{rate}", dataset.name));
        for &bs in &block_sizes {
            let pts = sweep(
                SystemKind::Vllm,
                server,
                bs,
                &dataset,
                &[rate],
                SECONDS,
                1,
                false,
            );
            print!("{:>9.3}", pts[0].report.mean_normalized_latency);
        }
        println!();
    }
    println!(
        "\nexpected shape: tiny blocks (1-4) hurt (the kernel cannot use the \
         GPU's memory parallelism); very large blocks hurt Alpaca (internal \
         fragmentation shrinks the batch); 16 is the sweet spot and vLLM's \
         default."
    );
}
