//! Fig. 16: translation workload where input prompts share a common
//! prefix — (a) 1-shot prefix of 80 tokens, (b) 5-shot prefix of 341
//! tokens — LLaMA-13B on 1×A100.
//!
//! Paper reference: vLLM achieves 1.67x (1-shot) and 3.58x (5-shot) higher
//! throughput than Orca (Oracle).

use vllm_baselines::{OrcaSystem, ReservationPolicy};
use vllm_core::config::PreemptionMode;
use vllm_sim::{run_trace, trace_to_requests, CostModel, RunReport, ServerConfig, VllmSimSystem};
use vllm_workloads::{synthesize_translation_trace, PrefixKind};

const THRESHOLD: f64 = 1.0;
const SECONDS: f64 = 240.0;

fn run_vllm(server: ServerConfig, prefix: PrefixKind, rate: f64, cached: bool) -> RunReport {
    let trace = synthesize_translation_trace(prefix, rate, (rate * SECONDS) as usize, 42);
    let requests = trace_to_requests(&trace.trace, 1, false);
    let mut system = VllmSimSystem::new(server, 16, PreemptionMode::Recompute);
    system.set_shared_prefix(prefix.tokens(50_000), cached);
    let cost = CostModel::contiguous(server);
    run_trace(&mut system, &requests, &cost, rate)
}

fn run_orca(server: ServerConfig, prefix: PrefixKind, rate: f64) -> RunReport {
    let trace = synthesize_translation_trace(prefix, rate, (rate * SECONDS) as usize, 42);
    let requests = trace_to_requests(&trace.trace, 1, false);
    let mut system = OrcaSystem::new(
        ReservationPolicy::Oracle,
        server.max_kv_slots(),
        server.model.max_len,
        256,
    );
    let cost = CostModel::contiguous(server);
    run_trace(&mut system, &requests, &cost, rate)
}

fn sustained<F: FnMut(f64) -> RunReport>(rates: &[f64], mut run: F) -> (f64, Vec<(f64, f64)>) {
    let mut best = 0.0f64;
    let mut series = Vec::new();
    for &rate in rates {
        let r = run(rate);
        series.push((rate, r.mean_normalized_latency));
        if r.mean_normalized_latency <= THRESHOLD {
            best = best.max(rate);
        }
    }
    (best, series)
}

fn panel(label: &str, prefix: PrefixKind, rates: &[f64]) {
    let server = ServerConfig::llama_13b_1gpu();
    println!(
        "--- {label}: {}-token shared prefix, LLaMA-13B, WMT-style trace ---",
        prefix.len()
    );
    let (v_cached, s_cached) = sustained(rates, |r| run_vllm(server, prefix, r, true));
    let (v_plain, s_plain) = sustained(rates, |r| run_vllm(server, prefix, r, false));
    let (o_rate, s_orca) = sustained(rates, |r| run_orca(server, prefix, r));

    println!(
        "  {:<26} {}",
        "rate (req/s):",
        rates
            .iter()
            .map(|r| format!("{r:>8.1}"))
            .collect::<String>()
    );
    for (name, series) in [
        ("vLLM (prefix cached)", &s_cached),
        ("vLLM (no prefix cache)", &s_plain),
        ("Orca (Oracle)", &s_orca),
    ] {
        println!(
            "  {:<26} {}",
            name,
            series
                .iter()
                .map(|(_, l)| format!("{l:>8.3}"))
                .collect::<String>()
        );
    }
    println!(
        "  sustained: vLLM(cached) {v_cached:.1} | vLLM(plain) {v_plain:.1} | Orca(Oracle) {o_rate:.1} req/s"
    );
    println!(
        "  vLLM(cached) vs Orca(Oracle): {:.2}x\n",
        if o_rate > 0.0 {
            v_cached / o_rate
        } else {
            f64::INFINITY
        }
    );
}

fn main() {
    vllm_bench::print_figure_header(
        "Fig. 16",
        "Shared-prefix translation throughput (paper: 1.67x over Orca(Oracle) 1-shot, 3.58x 5-shot)",
    );
    panel(
        "(a) 1-shot",
        PrefixKind::OneShot,
        &[10.0, 20.0, 30.0, 36.0, 42.0, 48.0, 56.0, 64.0],
    );
    panel(
        "(b) 5-shot",
        PrefixKind::FiveShot,
        &[4.0, 8.0, 12.0, 16.0, 20.0, 26.0, 32.0, 40.0, 48.0],
    );
    println!(
        "expected shape: caching the prefix removes its prefill compute and \
         shares its blocks; the advantage grows with prefix length (5-shot \
         >> 1-shot)."
    );
}
