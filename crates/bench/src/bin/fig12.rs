//! Fig. 12: single-sequence generation — mean normalized latency vs
//! request rate for vLLM, Orca (Oracle/Pow2/Max), and FasterTransformer on
//! OPT-13B/66B/175B over the ShareGPT and Alpaca workloads.
//!
//! Pass `--quick` to run a reduced sweep (fewer rates, shorter traces).

use vllm_bench::{print_latency_series, sustained_rate, sweep, SystemKind};
use vllm_sim::ServerConfig;
use vllm_workloads::Dataset;

/// Normalized-latency threshold for "sustained rate" (the knee criterion).
const THRESHOLD: f64 = 1.0;

fn panel(label: &str, server: ServerConfig, dataset: &Dataset, rates: &[f64], seconds: f64) {
    println!(
        "--- {label}: {} on {} GPUs, {} ---",
        server.model.name, server.gpu.num_gpus, dataset.name
    );
    let mut sustained = Vec::new();
    for kind in SystemKind::fig12_set() {
        let pts = sweep(kind, server, 16, dataset, rates, seconds, 1, false);
        print_latency_series(&pts);
        sustained.push((
            pts[0].report.system.clone(),
            sustained_rate(&pts, THRESHOLD),
        ));
    }
    println!("  sustained rate @ normalized latency <= {THRESHOLD}s:");
    let vllm_rate = sustained[0].1;
    for (name, rate) in &sustained {
        let advantage = if *rate > 0.0 {
            vllm_rate / rate
        } else {
            f64::INFINITY
        };
        println!("    {name:<22} {rate:>6.2} req/s   (vLLM advantage {advantage:>5.2}x)");
    }
    println!();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seconds = if quick { 180.0 } else { 600.0 };
    let thin = |v: Vec<f64>| {
        if quick {
            v.into_iter().step_by(2).collect()
        } else {
            v
        }
    };
    vllm_bench::print_figure_header(
        "Fig. 12",
        "Single-sequence generation: normalized latency vs request rate (six panels)",
    );

    panel(
        "(a)",
        ServerConfig::opt_13b_1gpu(),
        &Dataset::sharegpt(),
        &thin(vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]),
        seconds,
    );
    panel(
        "(b)",
        ServerConfig::opt_66b_4gpu(),
        &Dataset::sharegpt(),
        &thin(vec![0.10, 0.25, 0.40, 0.55, 0.70, 0.85, 1.0]),
        seconds,
    );
    panel(
        "(c)",
        ServerConfig::opt_175b_8gpu(),
        &Dataset::sharegpt(),
        &thin(vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]),
        seconds.min(300.0), // Paper also shortens the 175B traces.
    );
    panel(
        "(d)",
        ServerConfig::opt_13b_1gpu(),
        &Dataset::alpaca(),
        &thin(vec![5.0, 10.0, 20.0, 30.0, 35.0, 40.0, 45.0, 50.0]),
        seconds.min(300.0),
    );
    panel(
        "(e)",
        ServerConfig::opt_66b_4gpu(),
        &Dataset::alpaca(),
        &thin(vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]),
        seconds.min(300.0),
    );
    panel(
        "(f)",
        ServerConfig::opt_175b_8gpu(),
        &Dataset::alpaca(),
        &thin(vec![2.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0]),
        seconds.min(300.0),
    );

    println!(
        "expected shape: vLLM sustains 1.7x-2.7x the rate of Orca (Oracle) and \
         2.7x-8x Orca (Max) on ShareGPT, and up to 22x FasterTransformer; the \
         advantage narrows on panel (f) (OPT-175B + Alpaca), where ample KV \
         memory and short sequences make the workload compute-bound."
    );
}
