//! Table 1: model sizes and server configurations, with the derived KV
//! cache budgets and slot counts next to the paper's reported values.

use vllm_sim::ServerConfig;

fn main() {
    vllm_bench::print_figure_header(
        "Table 1",
        "Model sizes and server configurations (paper values in parentheses)",
    );
    let rows = [
        (ServerConfig::opt_13b_1gpu(), "26 GB", "12 GB", "15.7K"),
        (ServerConfig::opt_66b_4gpu(), "132 GB", "21 GB", "9.7K"),
        (ServerConfig::opt_175b_8gpu(), "346 GB", "264 GB", "60.1K"),
    ];
    println!(
        "{:<10} {:>14} {:>16} {:>22} {:>24} {:>26}",
        "Model",
        "GPUs",
        "Total GPU mem",
        "Parameter size",
        "Memory for KV cache",
        "Max # KV cache slots"
    );
    for (cfg, p_params, p_kv, p_slots) in rows {
        println!(
            "{:<10} {:>10}x{:<4} {:>13.0} GB {:>14.0} GB ({:>6}) {:>14.1} GB ({:>6}) {:>17.1}K ({:>6})",
            cfg.model.name,
            cfg.gpu.num_gpus,
            cfg.gpu.name,
            cfg.total_mem_bytes() / 1e9,
            cfg.model.weight_bytes() / 1e9,
            p_params,
            cfg.kv_cache_bytes() / 1e9,
            p_kv,
            cfg.max_kv_slots() as f64 / 1e3,
            p_slots,
        );
    }
    println!(
        "\nderivation: KV budget = total memory - FP16 weights - 5% activation \
         reserve; slots = budget / (2 x 2 bytes x hidden x layers)."
    );
    println!(
        "OPT-13B KV bytes/token = {} (paper: 800 KB, Section 3).",
        ServerConfig::opt_13b_1gpu().model.kv_bytes_per_token()
    );
}
