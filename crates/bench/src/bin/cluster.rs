//! Cluster routing bench: throughput scaling and cache-aware placement.
//!
//! Drives a shared-prefix-heavy trace (many requests extending one of a few
//! long system prompts) through [`ClusterSystem`] fleets and compares the
//! routing policies against a single-replica baseline:
//!
//! 1. Calibrate: saturate one replica to measure its capacity `C1` and p99
//!    normalized latency.
//! 2. Run a 4-replica cluster at an offered load of `3.6 * C1` under each
//!    policy (`round-robin`, `jsq`, `prefix-affinity`).
//!
//! Writes per-policy throughput, prefix-cache hit rate, and latency
//! percentiles to `results/cluster.json`. With `--ci` the harness asserts
//! the acceptance criteria instead — JSQ and prefix-affinity sustain at
//! least `3 * C1` without exceeding the baseline's p99, prefix-affinity
//! strictly beats round-robin's cache hit rate, runs are deterministic, and
//! every routing decision shows up in the merged telemetry — writing its
//! artifact under `target/ci-cluster/` and exiting non-zero on any failure.

use std::fmt::Write as _;

use vllm_cluster::{ClusterReport, ClusterRequest, ClusterSystem, RoutePolicy, RouterConfig};
use vllm_core::telemetry::MetricsSnapshot;
use vllm_core::{PreemptionMode, TokenId};
use vllm_model::BackendKind;
use vllm_sim::{sim_prompt_tokens, ServerConfig, VllmSimSystem};

/// Distinct shared prefixes (system prompts) in the trace.
const NUM_PREFIXES: usize = 8;
/// Shared prefix length in tokens (three 16-token blocks).
const PREFIX_LEN: usize = 48;
/// Unique per-request suffix length in tokens.
const SUFFIX_LEN: usize = 32;
/// Scripted output length in tokens.
const OUTPUT_LEN: usize = 128;
/// Cluster size under test.
const REPLICAS: usize = 4;
/// Requests in the single-replica calibration run.
const CAL_REQUESTS: u64 = 192;
/// Requests in each cluster run.
const RUN_REQUESTS: u64 = 720;
/// Offered load relative to single-replica capacity for cluster runs.
const LOAD_FACTOR: f64 = 3.6;

fn replica() -> VllmSimSystem {
    let mut cfg = ServerConfig::opt_13b_1gpu();
    cfg.gpu.mem_bytes_per_gpu = 30e9; // Small KV pool: placement matters.
    VllmSimSystem::new(cfg, 16, PreemptionMode::Recompute)
}

fn prefixes() -> Vec<Vec<TokenId>> {
    (0..NUM_PREFIXES)
        .map(|p| sim_prompt_tokens(1_000 + p as u64, PREFIX_LEN))
        .collect()
}

/// A shared-prefix-heavy trace. The prefix index is decorrelated from the
/// request index (a plain `i % NUM_PREFIXES` would let round-robin placement
/// line up with the prefix cycle by accident).
fn trace(n: u64, rate: f64) -> Vec<ClusterRequest> {
    let prefixes = prefixes();
    (0..n)
        .map(|i| {
            let p = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % NUM_PREFIXES;
            let mut prompt = prefixes[p].clone();
            prompt.extend(sim_prompt_tokens(10_000 + i, SUFFIX_LEN));
            ClusterRequest {
                id: i,
                arrival: i as f64 / rate,
                prompt,
                output_len: OUTPUT_LEN,
            }
        })
        .collect()
}

/// Builds an `n`-replica cluster with the shared prefixes spread round-robin
/// across replicas (a single replica holds them all).
fn build_cluster(n: usize, policy: RoutePolicy) -> ClusterSystem {
    let mut cluster = ClusterSystem::new(
        (0..n).map(|_| replica()).collect(),
        RouterConfig::new(policy),
    );
    for (p, tokens) in prefixes().into_iter().enumerate() {
        cluster.register_prefix(p % n, tokens);
    }
    cluster
}

fn run_cluster(
    n: usize,
    policy: RoutePolicy,
    num_requests: u64,
    rate: f64,
) -> (ClusterReport, MetricsSnapshot) {
    let mut cluster = build_cluster(n, policy);
    let report = cluster.run(trace(num_requests, rate));
    (report, cluster.merged_snapshot())
}

fn report_json(r: &ClusterReport, speedup: f64) -> String {
    let routed: Vec<String> = r.routed_per_replica.iter().map(u64::to_string).collect();
    format!(
        concat!(
            "{{\"policy\":\"{}\",\"throughput\":{:.4},\"speedup\":{:.3},",
            "\"norm_lat_p50\":{:.6},\"norm_lat_p99\":{:.6},",
            "\"cache_hit_rate\":{:.4},\"affinity_hits\":{},\"failovers\":{},",
            "\"routed_per_replica\":[{}]}}"
        ),
        r.policy,
        r.throughput,
        speedup,
        r.norm_lat_p50,
        r.norm_lat_p99,
        r.cache_hit_rate,
        r.affinity_hits,
        r.failovers,
        routed.join(",")
    )
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");

    // Calibrate one replica at saturation.
    let (single, _) = run_cluster(1, RoutePolicy::RoundRobin, CAL_REQUESTS, 50.0);
    let c1 = single.throughput;
    let rate = LOAD_FACTOR * c1;
    println!(
        "single replica: {:.2} req/s (p99 norm lat {:.4} s/tok); cluster offered load {:.2} req/s",
        c1, single.norm_lat_p99, rate
    );

    let policies = [
        RoutePolicy::RoundRobin,
        RoutePolicy::JoinShortestQueue,
        RoutePolicy::PrefixAffinity,
    ];
    let runs: Vec<(ClusterReport, MetricsSnapshot)> = policies
        .iter()
        .map(|&p| run_cluster(REPLICAS, p, RUN_REQUESTS, rate))
        .collect();
    for (r, _) in &runs {
        println!(
            "{:>15}: {:.2} req/s ({:.2}x single), p99 norm lat {:.4}, cache hit rate {:.0}%, routed {:?}",
            r.policy,
            r.throughput,
            r.throughput / c1,
            r.norm_lat_p99,
            100.0 * r.cache_hit_rate,
            r.routed_per_replica
        );
    }

    // JSON artifact. The backend field records which kernel backend the
    // environment selects for real serving runs alongside these sim numbers.
    let backend = BackendKind::from_env().name();
    let mut json = String::new();
    write!(
        json,
        "{{\"backend\":\"{backend}\",\"num_replicas\":{REPLICAS},\"offered_rate\":{rate:.4},\"single\":{},\"policies\":[",
        report_json(&single, 1.0)
    )
    .unwrap();
    for (i, (r, _)) in runs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&report_json(r, r.throughput / c1));
    }
    json.push_str("]}");
    let dir = if ci { "target/ci-cluster" } else { "results" };
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = format!("{dir}/cluster.json");
    std::fs::write(&path, json + "\n").expect("write artifact");
    println!("wrote {path}");

    if !ci {
        return;
    }

    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failures += 1;
        }
    };

    let rr = &runs[0].0;
    for (r, _) in &runs[1..] {
        check(
            r.throughput >= 3.0 * c1,
            &format!(
                "{} throughput {:.2} < 3x single ({:.2})",
                r.policy,
                r.throughput,
                3.0 * c1
            ),
        );
        check(
            r.norm_lat_p99 <= single.norm_lat_p99,
            &format!(
                "{} p99 norm lat {:.4} exceeds single baseline {:.4}",
                r.policy, r.norm_lat_p99, single.norm_lat_p99
            ),
        );
    }
    let affinity = &runs[2].0;
    check(
        affinity.cache_hit_rate > rr.cache_hit_rate,
        &format!(
            "prefix-affinity hit rate {:.3} not above round-robin {:.3}",
            affinity.cache_hit_rate, rr.cache_hit_rate
        ),
    );
    for (r, _) in std::iter::once(&(single.clone(), runs[0].1.clone())).chain(runs.iter()) {
        check(
            r.num_finished == r.num_requests,
            &format!(
                "{}: {}/{} requests finished",
                r.policy, r.num_finished, r.num_requests
            ),
        );
    }

    // Determinism: identical trace + policy => identical placements.
    let (again, _) = run_cluster(REPLICAS, RoutePolicy::JoinShortestQueue, RUN_REQUESTS, rate);
    check(
        again.assignments == runs[1].0.assignments,
        "JSQ placements differ between identical runs",
    );

    // Every routing decision lands in the merged telemetry, losslessly in
    // both expositions.
    for (r, snap) in &runs {
        check(
            snap.counter("vllm_cluster_requests_routed_total") == Some(RUN_REQUESTS),
            &format!("{}: routed counter misses requests", r.policy),
        );
        let per_replica: u64 = (0..REPLICAS)
            .map(|i| {
                snap.counter(&format!(
                    "vllm_cluster_replica_routed_total{{replica=\"{i}\"}}"
                ))
                .unwrap_or(0)
            })
            .sum();
        check(
            per_replica == RUN_REQUESTS,
            &format!(
                "{}: per-replica routed counters sum to {per_replica}",
                r.policy
            ),
        );
        check(
            snap.counter("vllm_cluster_affinity_hits_total") == Some(r.affinity_hits),
            &format!("{}: affinity counter disagrees with report", r.policy),
        );
        match MetricsSnapshot::from_prometheus_text(&snap.to_prometheus_text()) {
            Ok(rt) => check(
                &rt == snap,
                &format!(
                    "{}: text exposition round-trip changed the snapshot",
                    r.policy
                ),
            ),
            Err(e) => check(
                false,
                &format!("{}: text exposition failed to parse: {e}", r.policy),
            ),
        }
        match MetricsSnapshot::from_json(&snap.to_json()) {
            Ok(rt) => check(
                &rt == snap,
                &format!("{}: JSON round-trip changed the snapshot", r.policy),
            ),
            Err(e) => check(false, &format!("{}: JSON failed to parse: {e}", r.policy)),
        }
    }

    if failures > 0 {
        eprintln!("cluster CI check: {failures} failure(s)");
        std::process::exit(1);
    }
    println!(
        "cluster CI check OK: jsq {:.2}x, prefix-affinity {:.2}x single throughput, hit rate {:.0}% vs {:.0}%",
        runs[1].0.throughput / c1,
        affinity.throughput / c1,
        100.0 * affinity.cache_hit_rate,
        100.0 * rr.cache_hit_rate
    );
}
