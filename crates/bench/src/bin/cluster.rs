//! Cluster routing bench: throughput scaling and cache-aware placement.
//!
//! Drives a shared-prefix-heavy trace (many requests extending one of a few
//! long system prompts) through [`ClusterSystem`] fleets and compares the
//! routing policies against a single-replica baseline:
//!
//! 1. Calibrate: saturate one replica to measure its capacity `C1` and p99
//!    normalized latency.
//! 2. Run a 4-replica cluster at an offered load of `3.6 * C1` under each
//!    policy (`round-robin`, `jsq`, `prefix-affinity`).
//!
//! A second comparison pits a disaggregated prefill/decode fleet against a
//! monolithic (unified) fleet of the same size under a ShareGPT-style
//! multi-turn chat trace: each conversation's later turns extend the full
//! earlier context, so the cluster-shared prefix tier serves the re-covered
//! KV from CPU memory instead of re-prefilling it.
//!
//! Writes per-policy throughput, prefix-cache hit rate, and latency
//! percentiles — plus the disaggregated-vs-monolithic records — to
//! `results/cluster.json`. With `--ci` the harness asserts the acceptance
//! criteria instead — JSQ and prefix-affinity sustain at least `3 * C1`
//! without exceeding the baseline's p99, prefix-affinity strictly beats
//! round-robin's cache hit rate, runs are deterministic, every routing
//! decision shows up in the merged telemetry, and the disaggregated fleet
//! holds p99 TTFT at or below the monolithic fleet's at equal replica count
//! with a warm tier (hit rate above zero) — writing its artifact under
//! `target/ci-cluster/` and exiting non-zero on any failure.

use std::fmt::Write as _;

use vllm_cluster::{
    ClusterConfig, ClusterReport, ClusterRequest, ClusterSystem, RoutePolicy, RouterConfig,
};
use vllm_core::telemetry::MetricsSnapshot;
use vllm_core::{PreemptionMode, TokenId};
use vllm_model::BackendKind;
use vllm_sim::{sim_prompt_tokens, ServerConfig, VllmSimSystem};

/// Distinct shared prefixes (system prompts) in the trace.
const NUM_PREFIXES: usize = 8;
/// Shared prefix length in tokens (three 16-token blocks).
const PREFIX_LEN: usize = 48;
/// Unique per-request suffix length in tokens.
const SUFFIX_LEN: usize = 32;
/// Scripted output length in tokens.
const OUTPUT_LEN: usize = 128;
/// Cluster size under test.
const REPLICAS: usize = 4;
/// Requests in the single-replica calibration run.
const CAL_REQUESTS: u64 = 192;
/// Requests in each cluster run.
const RUN_REQUESTS: u64 = 720;
/// Offered load relative to single-replica capacity for cluster runs.
const LOAD_FACTOR: f64 = 3.6;
/// Conversations in the multi-turn chat trace.
const CHAT_CONVS: u64 = 48;
/// Turns per conversation; turn `t+1`'s prompt extends turn `t`'s full
/// context so the shared prefix tier gets real continuation hits.
const CHAT_TURNS: u64 = 4;
/// Prefill replicas in the disaggregated fleet (decode gets the rest).
const PREFILL_REPLICAS: usize = 2;
/// Shared CPU prefix-tier capacity in KV blocks.
const TIER_BLOCKS: usize = 4096;
/// Offered chat load relative to single-replica capacity. Lower than
/// `LOAD_FACTOR`: chat turns carry whole conversations as prompt tokens.
const CHAT_LOAD_FACTOR: f64 = 2.0;

fn replica() -> VllmSimSystem {
    let mut cfg = ServerConfig::opt_13b_1gpu();
    cfg.gpu.mem_bytes_per_gpu = 30e9; // Small KV pool: placement matters.
    VllmSimSystem::new(cfg, 16, PreemptionMode::Recompute)
}

fn prefixes() -> Vec<Vec<TokenId>> {
    (0..NUM_PREFIXES)
        .map(|p| sim_prompt_tokens(1_000 + p as u64, PREFIX_LEN))
        .collect()
}

/// A shared-prefix-heavy trace. The prefix index is decorrelated from the
/// request index (a plain `i % NUM_PREFIXES` would let round-robin placement
/// line up with the prefix cycle by accident).
fn trace(n: u64, rate: f64) -> Vec<ClusterRequest> {
    let prefixes = prefixes();
    (0..n)
        .map(|i| {
            let p = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % NUM_PREFIXES;
            let mut prompt = prefixes[p].clone();
            prompt.extend(sim_prompt_tokens(10_000 + i, SUFFIX_LEN));
            ClusterRequest {
                id: i,
                arrival: i as f64 / rate,
                prompt,
                output_len: OUTPUT_LEN,
            }
        })
        .collect()
}

/// Cheap decorrelating hash (Fibonacci multiplier, top bits).
fn mix(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33
}

/// ShareGPT-style multi-turn chat trace. Each conversation opens with a
/// prompt of mixed length; every later turn's prompt is the full prior
/// context (prompt + scripted reply + fresh user message), so turn `t+1`
/// re-covers turn `t`'s KV — the access pattern the cluster-shared prefix
/// tier exists for. Turns arrive turn-major (all first turns, then all
/// second turns, ...) so continuations land after their parents publish.
fn chat_trace(rate: f64) -> Vec<ClusterRequest> {
    let mut contexts: Vec<Vec<TokenId>> = (0..CHAT_CONVS)
        .map(|c| sim_prompt_tokens(20_000 + c, 32 + (mix(c) % 5) as usize * 16))
        .collect();
    let mut reqs = Vec::with_capacity((CHAT_CONVS * CHAT_TURNS) as usize);
    let mut i = 0u64;
    for t in 0..CHAT_TURNS {
        for c in 0..CHAT_CONVS {
            let output_len = 48 + (mix(c * 31 + t) % 4) as usize * 16;
            reqs.push(ClusterRequest {
                id: i,
                arrival: i as f64 / rate,
                prompt: contexts[c as usize].clone(),
                output_len,
            });
            // Grow the context for the next turn: a stand-in for the reply
            // (the sim scripts output lengths, not tokens) plus new input.
            // Only the prompt needs to extend the parent for a tier hit.
            let ctx = &mut contexts[c as usize];
            ctx.extend(sim_prompt_tokens(30_000 + i, output_len));
            ctx.extend(sim_prompt_tokens(
                40_000 + i,
                16 + (mix(i) % 3) as usize * 8,
            ));
            i += 1;
        }
    }
    reqs
}

/// Runs the chat trace through a fleet built from `cfg` (monolithic or
/// disaggregated; both route with prefix affinity).
fn run_chat(cfg: ClusterConfig, rate: f64) -> (ClusterReport, MetricsSnapshot) {
    let n = cfg.num_replicas();
    let mut cluster = ClusterSystem::with_config((0..n).map(|_| replica()).collect(), cfg);
    let report = cluster.run(chat_trace(rate));
    let snap = cluster.merged_snapshot();
    (report, snap)
}

/// Builds an `n`-replica cluster with the shared prefixes spread round-robin
/// across replicas (a single replica holds them all).
fn build_cluster(n: usize, policy: RoutePolicy) -> ClusterSystem {
    let mut cluster = ClusterSystem::new(
        (0..n).map(|_| replica()).collect(),
        RouterConfig::new(policy),
    );
    for (p, tokens) in prefixes().into_iter().enumerate() {
        cluster.register_prefix(p % n, tokens);
    }
    cluster
}

fn run_cluster(
    n: usize,
    policy: RoutePolicy,
    num_requests: u64,
    rate: f64,
) -> (ClusterReport, MetricsSnapshot) {
    let mut cluster = build_cluster(n, policy);
    let report = cluster.run(trace(num_requests, rate));
    (report, cluster.merged_snapshot())
}

fn report_json(r: &ClusterReport, speedup: f64) -> String {
    let routed: Vec<String> = r.routed_per_replica.iter().map(u64::to_string).collect();
    format!(
        concat!(
            "{{\"policy\":\"{}\",\"throughput\":{:.4},\"speedup\":{:.3},",
            "\"norm_lat_p50\":{:.6},\"norm_lat_p99\":{:.6},",
            "\"cache_hit_rate\":{:.4},\"affinity_hits\":{},\"failovers\":{},",
            "\"routed_per_replica\":[{}]}}"
        ),
        r.policy,
        r.throughput,
        speedup,
        r.norm_lat_p50,
        r.norm_lat_p99,
        r.cache_hit_rate,
        r.affinity_hits,
        r.failovers,
        routed.join(",")
    )
}

/// JSON record for one chat-trace run (monolithic or disaggregated).
fn chat_report_json(r: &ClusterReport) -> String {
    format!(
        concat!(
            "{{\"mode\":\"{}\",\"throughput\":{:.4},",
            "\"ttft_p50\":{:.6},\"ttft_p99\":{:.6},",
            "\"norm_lat_p99\":{:.6},\"handoffs\":{},\"handoff_blocks\":{},",
            "\"tier_hits\":{},\"tier_misses\":{},\"tier_hit_rate\":{:.4},",
            "\"num_finished\":{}}}"
        ),
        if r.disaggregated {
            "disaggregated"
        } else {
            "monolithic"
        },
        r.throughput,
        r.ttft_p50,
        r.ttft_p99,
        r.norm_lat_p99,
        r.handoffs,
        r.handoff_blocks,
        r.tier_hits,
        r.tier_misses,
        r.tier_hit_rate,
        r.num_finished
    )
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");

    // Calibrate one replica at saturation.
    let (single, _) = run_cluster(1, RoutePolicy::RoundRobin, CAL_REQUESTS, 50.0);
    let c1 = single.throughput;
    let rate = LOAD_FACTOR * c1;
    println!(
        "single replica: {:.2} req/s (p99 norm lat {:.4} s/tok); cluster offered load {:.2} req/s",
        c1, single.norm_lat_p99, rate
    );

    let policies = [
        RoutePolicy::RoundRobin,
        RoutePolicy::JoinShortestQueue,
        RoutePolicy::PrefixAffinity,
    ];
    let runs: Vec<(ClusterReport, MetricsSnapshot)> = policies
        .iter()
        .map(|&p| run_cluster(REPLICAS, p, RUN_REQUESTS, rate))
        .collect();
    for (r, _) in &runs {
        println!(
            "{:>15}: {:.2} req/s ({:.2}x single), p99 norm lat {:.4}, cache hit rate {:.0}%, routed {:?}",
            r.policy,
            r.throughput,
            r.throughput / c1,
            r.norm_lat_p99,
            100.0 * r.cache_hit_rate,
            r.routed_per_replica
        );
    }

    // Disaggregated vs monolithic at equal replica count under the
    // multi-turn chat trace. Prefill replicas only ever run prompt-phase
    // stubs, so first tokens never queue behind decode batches; the shared
    // tier turns continuation turns into CPU-side installs.
    let chat_rate = CHAT_LOAD_FACTOR * c1;
    let (mono, _) = run_chat(ClusterConfig::new(REPLICAS), chat_rate);
    let (disagg, disagg_snap) = run_chat(
        ClusterConfig::disaggregated(PREFILL_REPLICAS, REPLICAS - PREFILL_REPLICAS)
            .with_prefix_tier_blocks(TIER_BLOCKS),
        chat_rate,
    );
    for r in [&mono, &disagg] {
        println!(
            "{:>15}: {:.2} req/s, ttft p50 {:.3}s p99 {:.3}s, handoffs {}, tier hit rate {:.0}%",
            if r.disaggregated {
                "disaggregated"
            } else {
                "monolithic"
            },
            r.throughput,
            r.ttft_p50,
            r.ttft_p99,
            r.handoffs,
            100.0 * r.tier_hit_rate
        );
    }

    // JSON artifact. The backend field records which kernel backend the
    // environment selects for real serving runs alongside these sim numbers.
    let backend = BackendKind::from_env().name();
    let mut json = String::new();
    write!(
        json,
        "{{\"backend\":\"{backend}\",\"num_replicas\":{REPLICAS},\"offered_rate\":{rate:.4},\"single\":{},\"policies\":[",
        report_json(&single, 1.0)
    )
    .unwrap();
    for (i, (r, _)) in runs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&report_json(r, r.throughput / c1));
    }
    json.push_str("],");
    write!(
        json,
        concat!(
            "\"disaggregated\":{{\"num_replicas\":{},\"prefill_replicas\":{},",
            "\"tier_blocks\":{},\"offered_rate\":{:.4},\"runs\":[{},{}]}}}}"
        ),
        REPLICAS,
        PREFILL_REPLICAS,
        TIER_BLOCKS,
        chat_rate,
        chat_report_json(&mono),
        chat_report_json(&disagg)
    )
    .unwrap();
    let dir = if ci { "target/ci-cluster" } else { "results" };
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = format!("{dir}/cluster.json");
    std::fs::write(&path, json + "\n").expect("write artifact");
    println!("wrote {path}");

    if !ci {
        return;
    }

    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failures += 1;
        }
    };

    let rr = &runs[0].0;
    for (r, _) in &runs[1..] {
        check(
            r.throughput >= 3.0 * c1,
            &format!(
                "{} throughput {:.2} < 3x single ({:.2})",
                r.policy,
                r.throughput,
                3.0 * c1
            ),
        );
        check(
            r.norm_lat_p99 <= single.norm_lat_p99,
            &format!(
                "{} p99 norm lat {:.4} exceeds single baseline {:.4}",
                r.policy, r.norm_lat_p99, single.norm_lat_p99
            ),
        );
    }
    let affinity = &runs[2].0;
    check(
        affinity.cache_hit_rate > rr.cache_hit_rate,
        &format!(
            "prefix-affinity hit rate {:.3} not above round-robin {:.3}",
            affinity.cache_hit_rate, rr.cache_hit_rate
        ),
    );
    for (r, _) in std::iter::once(&(single.clone(), runs[0].1.clone())).chain(runs.iter()) {
        check(
            r.num_finished == r.num_requests,
            &format!(
                "{}: {}/{} requests finished",
                r.policy, r.num_finished, r.num_requests
            ),
        );
    }

    // Disaggregated serving gates: at equal hardware the split fleet must
    // hold first-token latency at or below the monolithic fleet's, with the
    // shared tier actually serving continuations (warm, not decorative).
    check(
        disagg.ttft_p99 <= mono.ttft_p99,
        &format!(
            "disaggregated p99 TTFT {:.4}s exceeds monolithic {:.4}s at equal replica count",
            disagg.ttft_p99, mono.ttft_p99
        ),
    );
    check(
        disagg.tier_hit_rate > 0.0,
        "prefix tier saw no hits under the multi-turn chat trace",
    );
    check(
        disagg.handoffs > 0,
        "disaggregated run recorded no handoffs",
    );
    for r in [&mono, &disagg] {
        check(
            r.num_finished == r.num_requests,
            &format!(
                "chat trace ({}): {}/{} requests finished",
                if r.disaggregated {
                    "disaggregated"
                } else {
                    "monolithic"
                },
                r.num_finished,
                r.num_requests
            ),
        );
    }
    check(
        disagg_snap.counter("vllm_cluster_handoffs_total") == Some(disagg.handoffs),
        "handoff counter disagrees with report",
    );
    check(
        disagg_snap
            .counter("vllm_cluster_handoff_tier_installs_total")
            .unwrap_or(0)
            > 0,
        "tier hits produced no KV installs on routed replicas",
    );

    // Determinism: identical trace + policy => identical placements.
    let (again, _) = run_cluster(REPLICAS, RoutePolicy::JoinShortestQueue, RUN_REQUESTS, rate);
    check(
        again.assignments == runs[1].0.assignments,
        "JSQ placements differ between identical runs",
    );

    // Every routing decision lands in the merged telemetry, losslessly in
    // both expositions.
    for (r, snap) in &runs {
        check(
            snap.counter("vllm_cluster_requests_routed_total") == Some(RUN_REQUESTS),
            &format!("{}: routed counter misses requests", r.policy),
        );
        let per_replica: u64 = (0..REPLICAS)
            .map(|i| {
                snap.counter(&format!(
                    "vllm_cluster_replica_routed_total{{replica=\"{i}\"}}"
                ))
                .unwrap_or(0)
            })
            .sum();
        check(
            per_replica == RUN_REQUESTS,
            &format!(
                "{}: per-replica routed counters sum to {per_replica}",
                r.policy
            ),
        );
        check(
            snap.counter("vllm_cluster_affinity_hits_total") == Some(r.affinity_hits),
            &format!("{}: affinity counter disagrees with report", r.policy),
        );
        match MetricsSnapshot::from_prometheus_text(&snap.to_prometheus_text()) {
            Ok(rt) => check(
                &rt == snap,
                &format!(
                    "{}: text exposition round-trip changed the snapshot",
                    r.policy
                ),
            ),
            Err(e) => check(
                false,
                &format!("{}: text exposition failed to parse: {e}", r.policy),
            ),
        }
        match MetricsSnapshot::from_json(&snap.to_json()) {
            Ok(rt) => check(
                &rt == snap,
                &format!("{}: JSON round-trip changed the snapshot", r.policy),
            ),
            Err(e) => check(false, &format!("{}: JSON failed to parse: {e}", r.policy)),
        }
    }

    if failures > 0 {
        eprintln!("cluster CI check: {failures} failure(s)");
        std::process::exit(1);
    }
    println!(
        "cluster CI check OK: jsq {:.2}x, prefix-affinity {:.2}x single throughput, hit rate {:.0}% vs {:.0}%",
        runs[1].0.throughput / c1,
        affinity.throughput / c1,
        100.0 * affinity.cache_hit_rate,
        100.0 * rr.cache_hit_rate
    );
    println!(
        "disaggregated CI check OK: p99 TTFT {:.3}s vs monolithic {:.3}s, tier hit rate {:.0}%",
        disagg.ttft_p99,
        mono.ttft_p99,
        100.0 * disagg.tier_hit_rate
    );
}
