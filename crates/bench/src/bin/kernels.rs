//! Numeric-layer microbenchmarks: the seed repository's scalar per-sequence
//! decode/prefill paths vs the new blocked kernels and batched decode
//! forward.
//!
//! Writes `BENCH_kernels.json` at the repository root (tokens/sec plus
//! per-kernel nanoseconds from [`vllm_model::ops::timing`]). With `--ci` it
//! additionally gates the batched-decode speedup (≥2× over the scalar
//! per-sequence path at batch 16), checks that batched logits stay
//! bit-identical to per-sequence blocked decode, and round-trips the JSON
//! artifact, exiting non-zero on any failure.

use std::time::Instant;

use vllm_model::ops::{self, timing};
use vllm_model::{
    contiguous_causal_attention, paged_attention_decode, pool, DecodeInput, KvPool, ModelConfig,
    PositionEncoding, Transformer,
};

/// Decode batch width the CI gate is defined over.
const BATCH: usize = 16;
/// Measured decode steps per path.
const DECODE_STEPS: usize = 8;
/// Unmeasured warm-up decode steps per path.
const WARMUP_STEPS: usize = 2;
/// Prompt length used for prefill and decode context.
const PREFILL: usize = 32;
/// Prompt length of the prefill-latency measurement.
const PREFILL_BENCH_TOKENS: usize = 64;
/// Prefill-latency iterations per path.
const PREFILL_ITERS: usize = 3;
/// KV block size (tokens per block).
const BLOCK_SIZE: usize = 16;
/// GEMM microbench shape (a prefill QKV projection).
const GEMM_M: usize = 16;
/// GEMM depth.
const GEMM_K: usize = 256;
/// GEMM width.
const GEMM_N: usize = 1024;
/// GEMM microbench iterations per kernel.
const GEMM_ITERS: usize = 10;
/// Layer-norm epsilon (matches the transformer's).
const LN_EPS: f32 = 1e-5;

/// A mid-size model: big enough that weight traffic dominates, small
/// enough to bench in seconds.
fn bench_config() -> ModelConfig {
    ModelConfig {
        vocab_size: 8192,
        hidden: 256,
        n_layers: 4,
        n_heads: 8,
        max_position: 256,
        eos_token_id: 0,
        seed: 0xbe9c,
        position_encoding: PositionEncoding::Learned,
    }
}

/// Deterministic pseudo-random token for sequence `seq` at `pos`.
fn tok(seq: usize, pos: usize, vocab: usize) -> u32 {
    let mixed = (seq * 131 + pos * 65_537 + 9).wrapping_mul(2_654_435_761);
    (mixed % vocab) as u32
}

/// The seed repository's scalar LM head: one sequential dot product per
/// vocabulary row, no unrolling.
fn lm_head_seed(model: &Transformer, hidden_state: &[f32], logits: &mut [f32]) {
    let h = model.config.hidden;
    for (j, row) in model.wte.chunks_exact(h).enumerate() {
        let mut s = 0.0f32;
        for (x, w) in hidden_state.iter().zip(row) {
            s += x * w;
        }
        logits[j] = s;
    }
}

/// The seed repository's per-sequence decode step, reconstructed as the
/// "old path" throughput baseline: scalar ikj [`ops::matmul_reference`]
/// for every projection and a scalar LM-head loop. Attention reuses the
/// shared PagedAttention kernel (unchanged math between old and new).
fn forward_decode_seed(
    model: &Transformer,
    token: u32,
    position: usize,
    kv: &mut KvPool,
    table: &[usize],
) -> Vec<f32> {
    let h = model.config.hidden;
    let bs = kv.block_size();
    let ctx = position + 1;
    let mut x = vec![0.0f32; h];
    let e = &model.wte[token as usize * h..(token as usize + 1) * h];
    let p = &model.wpe[position * h..(position + 1) * h];
    for j in 0..h {
        x[j] = e[j] + p[j];
    }
    let mut qkv = vec![0.0f32; 3 * h];
    let mut attn = vec![0.0f32; h];
    let mut proj = vec![0.0f32; h];
    let mut mid = vec![0.0f32; 4 * h];
    for (li, lw) in model.layers.iter().enumerate() {
        let mut hst = x.clone();
        ops::layer_norm(&mut hst, &lw.ln1_g, &lw.ln1_b, LN_EPS);
        ops::matmul_reference(&hst, &lw.w_qkv, 1, h, 3 * h, &mut qkv);
        ops::add_bias(&mut qkv, &lw.b_qkv);
        kv.write(
            li,
            table[position / bs],
            position % bs,
            &qkv[h..2 * h],
            &qkv[2 * h..3 * h],
        );
        paged_attention_decode(
            &qkv[..h],
            kv,
            li,
            table,
            ctx,
            model.config.n_heads,
            model.config.head_dim(),
            &mut attn,
        );
        ops::matmul_reference(&attn, &lw.w_o, 1, h, h, &mut proj);
        ops::add_bias(&mut proj, &lw.b_o);
        ops::add_inplace(&mut x, &proj);

        let mut hst = x.clone();
        ops::layer_norm(&mut hst, &lw.ln2_g, &lw.ln2_b, LN_EPS);
        ops::matmul_reference(&hst, &lw.w_fc, 1, h, 4 * h, &mut mid);
        ops::add_bias(&mut mid, &lw.b_fc);
        ops::gelu(&mut mid);
        ops::matmul_reference(&mid, &lw.w_proj, 1, 4 * h, h, &mut proj);
        ops::add_bias(&mut proj, &lw.b_proj);
        ops::add_inplace(&mut x, &proj);
    }
    ops::layer_norm(&mut x, &model.ln_f_g, &model.ln_f_b, LN_EPS);
    let mut logits = vec![0.0f32; model.config.vocab_size];
    lm_head_seed(model, &x, &mut logits);
    logits
}

/// The seed repository's scalar prefill, reconstructed for the
/// prefill-latency comparison (same structure as
/// [`Transformer::forward_paged`], scalar matmuls and LM head).
fn forward_prefill_seed(
    model: &Transformer,
    tokens: &[u32],
    kv: &mut KvPool,
    table: &[usize],
) -> Vec<f32> {
    let n = tokens.len();
    let h = model.config.hidden;
    let bs = kv.block_size();
    let mut x = vec![0.0f32; n * h];
    for (i, &t) in tokens.iter().enumerate() {
        let e = &model.wte[t as usize * h..(t as usize + 1) * h];
        let p = &model.wpe[i * h..(i + 1) * h];
        for j in 0..h {
            x[i * h + j] = e[j] + p[j];
        }
    }
    let mut qkv = vec![0.0f32; n * 3 * h];
    let mut attn = vec![0.0f32; n * h];
    let mut proj = vec![0.0f32; n * h];
    let mut mid = vec![0.0f32; n * 4 * h];
    for (li, lw) in model.layers.iter().enumerate() {
        let mut hst = x.clone();
        ops::layer_norm(&mut hst, &lw.ln1_g, &lw.ln1_b, LN_EPS);
        ops::matmul_reference(&hst, &lw.w_qkv, n, h, 3 * h, &mut qkv);
        ops::add_bias(&mut qkv, &lw.b_qkv);
        for (i, row) in qkv.chunks_exact(3 * h).enumerate() {
            kv.write(
                li,
                table[i / bs],
                i % bs,
                &row[h..2 * h],
                &row[2 * h..3 * h],
            );
        }
        let (ks, vs) = kv.gather(li, table, n);
        let mut q = vec![0.0f32; n * h];
        for i in 0..n {
            q[i * h..(i + 1) * h].copy_from_slice(&qkv[i * 3 * h..i * 3 * h + h]);
        }
        contiguous_causal_attention(
            &q,
            &ks,
            &vs,
            n,
            n,
            0,
            model.config.n_heads,
            model.config.head_dim(),
            &mut attn,
        );
        ops::matmul_reference(&attn, &lw.w_o, n, h, h, &mut proj);
        ops::add_bias(&mut proj, &lw.b_o);
        ops::add_inplace(&mut x, &proj);

        let mut hst = x.clone();
        ops::layer_norm(&mut hst, &lw.ln2_g, &lw.ln2_b, LN_EPS);
        ops::matmul_reference(&hst, &lw.w_fc, n, h, 4 * h, &mut mid);
        ops::add_bias(&mut mid, &lw.b_fc);
        ops::gelu(&mut mid);
        ops::matmul_reference(&mid, &lw.w_proj, n, 4 * h, h, &mut proj);
        ops::add_bias(&mut proj, &lw.b_proj);
        ops::add_inplace(&mut x, &proj);
    }
    let mut last = x[(n - 1) * h..n * h].to_vec();
    ops::layer_norm(&mut last, &model.ln_f_g, &model.ln_f_b, LN_EPS);
    let mut logits = vec![0.0f32; model.config.vocab_size];
    lm_head_seed(model, &last, &mut logits);
    logits
}

/// Everything the bench measures; serialized to `BENCH_kernels.json`.
struct BenchReport {
    batch_size: usize,
    decode_steps: usize,
    scalar_tokens_per_sec: f64,
    per_seq_tokens_per_sec: f64,
    batched_tokens_per_sec: f64,
    batched_decode_speedup: f64,
    prefill_tokens: usize,
    prefill_scalar_latency_ms: f64,
    prefill_latency_ms: f64,
    prefill_speedup: f64,
    gemm_m: usize,
    gemm_k: usize,
    gemm_n: usize,
    matmul_reference_ns: f64,
    matmul_blocked_ns: f64,
    matmul_blocked_speedup: f64,
    kernel_matmul_ns: u64,
    kernel_matmul_calls: u64,
    kernel_paged_attention_ns: u64,
    kernel_paged_attention_calls: u64,
    kernel_logits_ns: u64,
    kernel_logits_calls: u64,
    threads: usize,
    logits_match: bool,
}

impl BenchReport {
    /// One-line flat JSON document (numbers and one boolean; no nesting so
    /// the round-trip parser stays trivial).
    fn to_json(&self) -> String {
        let mut s = String::from("{");
        let push_num = |s: &mut String, key: &str, v: f64| {
            s.push_str(&format!("\"{key}\":{v:.4},"));
        };
        push_num(&mut s, "batch_size", self.batch_size as f64);
        push_num(&mut s, "decode_steps", self.decode_steps as f64);
        push_num(&mut s, "scalar_tokens_per_sec", self.scalar_tokens_per_sec);
        push_num(
            &mut s,
            "per_seq_tokens_per_sec",
            self.per_seq_tokens_per_sec,
        );
        push_num(
            &mut s,
            "batched_tokens_per_sec",
            self.batched_tokens_per_sec,
        );
        push_num(
            &mut s,
            "batched_decode_speedup",
            self.batched_decode_speedup,
        );
        push_num(&mut s, "prefill_tokens", self.prefill_tokens as f64);
        push_num(
            &mut s,
            "prefill_scalar_latency_ms",
            self.prefill_scalar_latency_ms,
        );
        push_num(&mut s, "prefill_latency_ms", self.prefill_latency_ms);
        push_num(&mut s, "prefill_speedup", self.prefill_speedup);
        push_num(&mut s, "gemm_m", self.gemm_m as f64);
        push_num(&mut s, "gemm_k", self.gemm_k as f64);
        push_num(&mut s, "gemm_n", self.gemm_n as f64);
        push_num(&mut s, "matmul_reference_ns", self.matmul_reference_ns);
        push_num(&mut s, "matmul_blocked_ns", self.matmul_blocked_ns);
        push_num(
            &mut s,
            "matmul_blocked_speedup",
            self.matmul_blocked_speedup,
        );
        push_num(&mut s, "kernel_matmul_ns", self.kernel_matmul_ns as f64);
        push_num(
            &mut s,
            "kernel_matmul_calls",
            self.kernel_matmul_calls as f64,
        );
        push_num(
            &mut s,
            "kernel_paged_attention_ns",
            self.kernel_paged_attention_ns as f64,
        );
        push_num(
            &mut s,
            "kernel_paged_attention_calls",
            self.kernel_paged_attention_calls as f64,
        );
        push_num(&mut s, "kernel_logits_ns", self.kernel_logits_ns as f64);
        push_num(
            &mut s,
            "kernel_logits_calls",
            self.kernel_logits_calls as f64,
        );
        push_num(&mut s, "threads", self.threads as f64);
        s.push_str(&format!("\"logits_match\":{}}}", self.logits_match));
        s
    }
}

/// Extracts a numeric field from a flat JSON document written by
/// [`BenchReport::to_json`]. Returns `None` if the key is absent or its
/// value does not parse as a number.
fn json_get(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// The repository root (two levels above the bench crate manifest).
fn repo_root() -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."))
}

/// GEMM microbench: seed-scalar `matmul_reference` vs the blocked kernel,
/// average nanoseconds per call over [`GEMM_ITERS`] iterations.
fn bench_gemm() -> (f64, f64) {
    let mut state = 0x1234_5678_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    let a: Vec<f32> = (0..GEMM_M * GEMM_K).map(|_| next()).collect();
    let b: Vec<f32> = (0..GEMM_K * GEMM_N).map(|_| next()).collect();
    let mut out_ref = vec![0.0f32; GEMM_M * GEMM_N];
    let mut out_blk = vec![0.0f32; GEMM_M * GEMM_N];

    // Warm both kernels once before timing.
    ops::matmul_reference(&a, &b, GEMM_M, GEMM_K, GEMM_N, &mut out_ref);
    ops::matmul(&a, &b, GEMM_M, GEMM_K, GEMM_N, &mut out_blk);
    for (r, bl) in out_ref.iter().zip(&out_blk) {
        assert!(
            (r - bl).abs() < 1e-2,
            "blocked matmul diverged from reference: {r} vs {bl}"
        );
    }

    let t0 = Instant::now();
    for _ in 0..GEMM_ITERS {
        ops::matmul_reference(&a, &b, GEMM_M, GEMM_K, GEMM_N, &mut out_ref);
    }
    let ref_ns = t0.elapsed().as_nanos() as f64 / GEMM_ITERS as f64;

    let t0 = Instant::now();
    for _ in 0..GEMM_ITERS {
        ops::matmul(&a, &b, GEMM_M, GEMM_K, GEMM_N, &mut out_blk);
    }
    let blk_ns = t0.elapsed().as_nanos() as f64 / GEMM_ITERS as f64;
    (ref_ns, blk_ns)
}

/// Runs the full measurement suite and assembles the report.
fn run_bench() -> BenchReport {
    let config = bench_config();
    let vocab = config.vocab_size;
    let model = Transformer::new(config.clone());

    // Enough blocks for BATCH decode sequences plus the prefill-latency
    // scratch sequence.
    let blocks_per_seq = (PREFILL + WARMUP_STEPS + DECODE_STEPS + 1).div_ceil(BLOCK_SIZE);
    let scratch_blocks = PREFILL_BENCH_TOKENS.div_ceil(BLOCK_SIZE);
    let total_blocks = BATCH * blocks_per_seq + scratch_blocks;
    let mut kv = KvPool::new(config.n_layers, total_blocks, BLOCK_SIZE, config.hidden);

    // Disjoint per-sequence block tables.
    let tables: Vec<Vec<usize>> = (0..BATCH)
        .map(|i| (i * blocks_per_seq..(i + 1) * blocks_per_seq).collect())
        .collect();

    // Prefill every sequence with a deterministic prompt.
    for (i, table) in tables.iter().enumerate() {
        let tokens: Vec<u32> = (0..PREFILL).map(|p| tok(i, p, vocab)).collect();
        let positions: Vec<usize> = (0..PREFILL).collect();
        model.forward_paged(&tokens, &positions, &mut kv, table, 0);
    }

    // All three decode paths run the SAME tokens at the SAME positions:
    // each pass rewrites K/V at those positions, and the two blocked paths
    // (which run last) write bit-identical values, so the bit-identity
    // check at the end compares consistent states.
    let step_inputs: Vec<Vec<(u32, usize)>> = (0..WARMUP_STEPS + DECODE_STEPS)
        .map(|s| {
            let pos = PREFILL + s;
            (0..BATCH).map(|i| (tok(i, pos, vocab), pos)).collect()
        })
        .collect();

    // Old path: scalar per-sequence decode (the pre-optimization code).
    for step in &step_inputs[..WARMUP_STEPS] {
        for (i, &(t, pos)) in step.iter().enumerate() {
            forward_decode_seed(&model, t, pos, &mut kv, &tables[i]);
        }
    }
    let t0 = Instant::now();
    for step in &step_inputs[WARMUP_STEPS..] {
        for (i, &(t, pos)) in step.iter().enumerate() {
            forward_decode_seed(&model, t, pos, &mut kv, &tables[i]);
        }
    }
    let scalar_elapsed = t0.elapsed();

    // New kernels, still one sequence at a time.
    let mut per_seq_last = vec![Vec::new(); BATCH];
    for step in &step_inputs[..WARMUP_STEPS] {
        for (i, &(t, pos)) in step.iter().enumerate() {
            model.forward_paged(&[t], &[pos], &mut kv, &tables[i], pos);
        }
    }
    let t0 = Instant::now();
    for step in &step_inputs[WARMUP_STEPS..] {
        for (i, &(t, pos)) in step.iter().enumerate() {
            per_seq_last[i] = model.forward_paged(&[t], &[pos], &mut kv, &tables[i], pos);
        }
    }
    let per_seq_elapsed = t0.elapsed();

    // New path: one stacked batched forward per step.
    let run_batched = |kv: &mut KvPool, step: &[(u32, usize)]| -> Vec<f32> {
        let inputs: Vec<DecodeInput<'_>> = step
            .iter()
            .enumerate()
            .map(|(i, &(t, pos))| DecodeInput {
                token: t,
                position: pos,
                block_table: &tables[i],
            })
            .collect();
        model.forward_decode_batch(&inputs, kv)
    };
    for step in &step_inputs[..WARMUP_STEPS] {
        run_batched(&mut kv, step);
    }
    let kernels_before = timing::snapshot();
    let mut batched_last = Vec::new();
    let t0 = Instant::now();
    for step in &step_inputs[WARMUP_STEPS..] {
        batched_last = run_batched(&mut kv, step);
    }
    let batched_elapsed = t0.elapsed();
    let kernels = timing::snapshot().delta_since(&kernels_before);

    // Bit-identity spot check on the final step's logits (blocked paths).
    let logits_match =
        (0..BATCH).all(|i| per_seq_last[i][..] == batched_last[i * vocab..(i + 1) * vocab]);

    // Prefill latency, old vs new, over a scratch sequence.
    let scratch_table: Vec<usize> =
        (BATCH * blocks_per_seq..BATCH * blocks_per_seq + scratch_blocks).collect();
    let tokens: Vec<u32> = (0..PREFILL_BENCH_TOKENS)
        .map(|p| tok(99, p, vocab))
        .collect();
    let positions: Vec<usize> = (0..PREFILL_BENCH_TOKENS).collect();
    forward_prefill_seed(&model, &tokens, &mut kv, &scratch_table);
    let t0 = Instant::now();
    for _ in 0..PREFILL_ITERS {
        forward_prefill_seed(&model, &tokens, &mut kv, &scratch_table);
    }
    let prefill_scalar_ms = t0.elapsed().as_secs_f64() * 1e3 / PREFILL_ITERS as f64;
    model.forward_paged(&tokens, &positions, &mut kv, &scratch_table, 0);
    let t0 = Instant::now();
    for _ in 0..PREFILL_ITERS {
        model.forward_paged(&tokens, &positions, &mut kv, &scratch_table, 0);
    }
    let prefill_ms = t0.elapsed().as_secs_f64() * 1e3 / PREFILL_ITERS as f64;

    let (ref_ns, blk_ns) = bench_gemm();

    let decoded_tokens = (BATCH * DECODE_STEPS) as f64;
    let scalar_tps = decoded_tokens / scalar_elapsed.as_secs_f64();
    let per_seq_tps = decoded_tokens / per_seq_elapsed.as_secs_f64();
    let batched_tps = decoded_tokens / batched_elapsed.as_secs_f64();
    BenchReport {
        batch_size: BATCH,
        decode_steps: DECODE_STEPS,
        scalar_tokens_per_sec: scalar_tps,
        per_seq_tokens_per_sec: per_seq_tps,
        batched_tokens_per_sec: batched_tps,
        batched_decode_speedup: batched_tps / scalar_tps,
        prefill_tokens: PREFILL_BENCH_TOKENS,
        prefill_scalar_latency_ms: prefill_scalar_ms,
        prefill_latency_ms: prefill_ms,
        prefill_speedup: prefill_scalar_ms / prefill_ms,
        gemm_m: GEMM_M,
        gemm_k: GEMM_K,
        gemm_n: GEMM_N,
        matmul_reference_ns: ref_ns,
        matmul_blocked_ns: blk_ns,
        matmul_blocked_speedup: ref_ns / blk_ns,
        kernel_matmul_ns: kernels.matmul_ns,
        kernel_matmul_calls: kernels.matmul_calls,
        kernel_paged_attention_ns: kernels.attention_ns,
        kernel_paged_attention_calls: kernels.attention_calls,
        kernel_logits_ns: kernels.logits_ns,
        kernel_logits_calls: kernels.logits_calls,
        threads: pool::global().parallelism(),
        logits_match,
    }
}

fn print_report(r: &BenchReport) {
    println!("=== kernels: numeric-layer microbenchmarks ===");
    println!("worker pool threads: {}", r.threads);
    println!();
    println!(
        "decode throughput (batch {}, {} steps):",
        r.batch_size, r.decode_steps
    );
    println!(
        "  per-sequence, seed scalar kernels {:>10.1} tok/s",
        r.scalar_tokens_per_sec
    );
    println!(
        "  per-sequence, blocked kernels     {:>10.1} tok/s",
        r.per_seq_tokens_per_sec
    );
    println!(
        "  batched forward, blocked kernels  {:>10.1} tok/s",
        r.batched_tokens_per_sec
    );
    println!(
        "  batched speedup over seed scalar  {:>10.2}x",
        r.batched_decode_speedup
    );
    println!(
        "  batched logits bit-identical to per-sequence blocked: {}",
        r.logits_match
    );
    println!();
    println!("prefill latency ({} tokens):", r.prefill_tokens);
    println!(
        "  seed scalar {:>8.2} ms   blocked {:>8.2} ms   speedup {:.2}x",
        r.prefill_scalar_latency_ms, r.prefill_latency_ms, r.prefill_speedup
    );
    println!();
    println!(
        "GEMM {}x{}x{} (avg of {} iters):",
        r.gemm_m, r.gemm_k, r.gemm_n, GEMM_ITERS
    );
    println!("  seed scalar   {:>12.0} ns", r.matmul_reference_ns);
    println!("  blocked       {:>12.0} ns", r.matmul_blocked_ns);
    println!("  speedup       {:>12.2}x", r.matmul_blocked_speedup);
    println!();
    println!("per-kernel CPU time over the batched decode phase:");
    println!(
        "  matmul          {:>12} ns  ({} calls)",
        r.kernel_matmul_ns, r.kernel_matmul_calls
    );
    println!(
        "  paged_attention {:>12} ns  ({} calls)",
        r.kernel_paged_attention_ns, r.kernel_paged_attention_calls
    );
    println!(
        "  logits          {:>12} ns  ({} calls)",
        r.kernel_logits_ns, r.kernel_logits_calls
    );
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");
    let report = run_bench();
    print_report(&report);

    let path = repo_root().join("BENCH_kernels.json");
    let mut json = report.to_json();
    json.push('\n');
    std::fs::write(&path, &json).expect("write BENCH_kernels.json");
    println!();
    println!("wrote {}", path.display());

    if !ci {
        return;
    }

    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failures += 1;
        }
    };

    check(
        report.batched_decode_speedup >= 2.0,
        &format!(
            "batched decode speedup {:.2}x is below the 2x gate at batch {}",
            report.batched_decode_speedup, report.batch_size
        ),
    );
    check(
        report.logits_match,
        "batched decode logits are not bit-identical to per-sequence decode",
    );
    check(
        report.kernel_matmul_calls > 0
            && report.kernel_paged_attention_calls > 0
            && report.kernel_logits_calls > 0,
        "kernel timing counters did not advance during the batched phase",
    );

    // JSON round trip: every numeric field must survive write + parse.
    let written = std::fs::read_to_string(&path).expect("read back BENCH_kernels.json");
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-3 * a.abs().max(1.0);
    let fields: Vec<(&str, f64)> = vec![
        ("batch_size", report.batch_size as f64),
        ("decode_steps", report.decode_steps as f64),
        ("scalar_tokens_per_sec", report.scalar_tokens_per_sec),
        ("per_seq_tokens_per_sec", report.per_seq_tokens_per_sec),
        ("batched_tokens_per_sec", report.batched_tokens_per_sec),
        ("batched_decode_speedup", report.batched_decode_speedup),
        (
            "prefill_scalar_latency_ms",
            report.prefill_scalar_latency_ms,
        ),
        ("prefill_latency_ms", report.prefill_latency_ms),
        ("matmul_reference_ns", report.matmul_reference_ns),
        ("matmul_blocked_ns", report.matmul_blocked_ns),
        ("kernel_matmul_ns", report.kernel_matmul_ns as f64),
        ("kernel_logits_calls", report.kernel_logits_calls as f64),
        ("threads", report.threads as f64),
    ];
    for (key, expect) in fields {
        match json_get(&written, key) {
            Some(v) => check(
                close(v, expect),
                &format!("round-trip mismatch for {key}: wrote {expect}, parsed {v}"),
            ),
            None => check(false, &format!("round-trip lost field {key}")),
        }
    }

    if failures > 0 {
        eprintln!("kernels bench CI: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("kernels bench CI OK");
}
