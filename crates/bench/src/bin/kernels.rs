//! Numeric-layer microbenchmarks across the pluggable kernel backends.
//!
//! For every [`BackendKind`] (scalar, simd, quant-kv8) the bench measures
//! decode throughput (per-sequence and batched) against the seed
//! repository's scalar baseline, a serial GEMM microbench, the kernel
//! timing counters, and — via [`BlockSpaceManager`] sizing at a fixed
//! memory budget — the KV block capacity and the max concurrent batch a
//! small engine simulation sustains. One flat JSON record per backend is
//! written to `BENCH_kernels.json` (JSON lines).
//!
//! With `--ci` it gates:
//! - per backend: batched logits bit-identical to per-sequence decode,
//!   kernel counters advancing;
//! - scalar: batched decode ≥ 2× the seed scalar path at batch 16;
//! - simd: serial GEMM ≥ 1.3× the scalar backend's serial GEMM;
//! - quant-kv8: ≥ 1.8× the scalar block capacity at equal cache bytes
//!   (asserted through `BlockSpaceManager`, not just arithmetic) and a
//!   strictly larger max concurrent batch in the engine simulation;
//! - JSON round-trip of every record.

use std::time::Instant;

use vllm_core::{BlockSpaceManager, CacheConfig, LlmEngine, SamplingParams, SchedulerConfig};
use vllm_model::backend::{self, BackendKind, KvElement, KvLayout};
use vllm_model::ops::{self, timing};
use vllm_model::{
    paged_attention_decode, pool, CpuModelExecutor, DecodeInput, KvPool, ModelConfig,
    PositionEncoding, Transformer,
};

/// Decode batch width the CI gate is defined over.
const BATCH: usize = 16;
/// Measured decode steps per path.
const DECODE_STEPS: usize = 8;
/// Unmeasured warm-up decode steps per path.
const WARMUP_STEPS: usize = 2;
/// Prompt length used for prefill and decode context.
const PREFILL: usize = 32;
/// KV block size (tokens per block).
const BLOCK_SIZE: usize = 16;
/// GEMM microbench shape (a prefill QKV projection).
const GEMM_M: usize = 16;
/// GEMM depth.
const GEMM_K: usize = 256;
/// GEMM width.
const GEMM_N: usize = 1024;
/// GEMM microbench iterations per kernel.
const GEMM_ITERS: usize = 20;
/// Layer-norm epsilon (matches the transformer's).
const LN_EPS: f32 = 1e-5;
/// Memory budget for the capacity comparison: what 64 f32 blocks of the
/// bench model cost. Every backend gets the same byte budget.
const CAPACITY_F32_BLOCKS: usize = 64;
/// Requests submitted to the max-concurrent-batch simulation.
const SIM_REQUESTS: usize = 16;
/// Prompt length per simulated request.
const SIM_PROMPT: usize = 24;
/// Tokens generated per simulated request.
const SIM_GEN: usize = 16;
/// f32 KV blocks the simulation's memory budget is defined over.
const SIM_F32_BLOCKS: usize = 20;

/// A mid-size model: big enough that weight traffic dominates, small
/// enough to bench in seconds.
fn bench_config(kind: BackendKind) -> ModelConfig {
    ModelConfig {
        vocab_size: 8192,
        hidden: 256,
        n_layers: 4,
        n_heads: 8,
        max_position: 256,
        eos_token_id: 0,
        seed: 0xbe9c,
        position_encoding: PositionEncoding::Learned,
        backend: kind,
    }
}

/// Deterministic pseudo-random token for sequence `seq` at `pos`.
fn tok(seq: usize, pos: usize, vocab: usize) -> u32 {
    let mixed = (seq * 131 + pos * 65_537 + 9).wrapping_mul(2_654_435_761);
    (mixed % vocab) as u32
}

/// The seed repository's scalar LM head: one sequential dot product per
/// vocabulary row, no unrolling.
fn lm_head_seed(model: &Transformer, hidden_state: &[f32], logits: &mut [f32]) {
    let h = model.config.hidden;
    for (j, row) in model.wte.chunks_exact(h).enumerate() {
        let mut s = 0.0f32;
        for (x, w) in hidden_state.iter().zip(row) {
            s += x * w;
        }
        logits[j] = s;
    }
}

/// The seed repository's per-sequence decode step, reconstructed as the
/// "old path" throughput baseline: scalar ikj [`ops::matmul_reference`]
/// for every projection and a scalar LM-head loop. Attention reuses the
/// shared f32 PagedAttention kernel (unchanged math between old and new).
fn forward_decode_seed(
    model: &Transformer,
    token: u32,
    position: usize,
    kv: &mut KvPool,
    table: &[usize],
) -> Vec<f32> {
    let h = model.config.hidden;
    let bs = kv.block_size();
    let ctx = position + 1;
    let mut x = vec![0.0f32; h];
    let e = &model.wte[token as usize * h..(token as usize + 1) * h];
    let p = &model.wpe[position * h..(position + 1) * h];
    for j in 0..h {
        x[j] = e[j] + p[j];
    }
    let mut qkv = vec![0.0f32; 3 * h];
    let mut attn = vec![0.0f32; h];
    let mut proj = vec![0.0f32; h];
    let mut mid = vec![0.0f32; 4 * h];
    for (li, lw) in model.layers.iter().enumerate() {
        let mut hst = x.clone();
        ops::layer_norm(&mut hst, &lw.ln1_g, &lw.ln1_b, LN_EPS);
        ops::matmul_reference(&hst, &lw.w_qkv, 1, h, 3 * h, &mut qkv);
        ops::add_bias(&mut qkv, &lw.b_qkv);
        kv.write(
            li,
            table[position / bs],
            position % bs,
            &qkv[h..2 * h],
            &qkv[2 * h..3 * h],
        );
        paged_attention_decode(
            &qkv[..h],
            kv,
            li,
            table,
            ctx,
            model.config.n_heads,
            model.config.head_dim(),
            &mut attn,
        );
        ops::matmul_reference(&attn, &lw.w_o, 1, h, h, &mut proj);
        ops::add_bias(&mut proj, &lw.b_o);
        ops::add_inplace(&mut x, &proj);

        let mut hst = x.clone();
        ops::layer_norm(&mut hst, &lw.ln2_g, &lw.ln2_b, LN_EPS);
        ops::matmul_reference(&hst, &lw.w_fc, 1, h, 4 * h, &mut mid);
        ops::add_bias(&mut mid, &lw.b_fc);
        ops::gelu(&mut mid);
        ops::matmul_reference(&mid, &lw.w_proj, 1, 4 * h, h, &mut proj);
        ops::add_bias(&mut proj, &lw.b_proj);
        ops::add_inplace(&mut x, &proj);
    }
    ops::layer_norm(&mut x, &model.ln_f_g, &model.ln_f_b, LN_EPS);
    let mut logits = vec![0.0f32; model.config.vocab_size];
    lm_head_seed(model, &x, &mut logits);
    logits
}

/// One backend's measurements; serialized as one JSON line.
struct BackendReport {
    backend: &'static str,
    batch_size: usize,
    decode_steps: usize,
    seed_scalar_tokens_per_sec: f64,
    per_seq_tokens_per_sec: f64,
    batched_tokens_per_sec: f64,
    batched_decode_speedup: f64,
    gemm_m: usize,
    gemm_k: usize,
    gemm_n: usize,
    gemm_serial_ns: f64,
    gemm_speedup_vs_scalar: f64,
    kernel_matmul_ns: u64,
    kernel_matmul_calls: u64,
    kernel_paged_attention_ns: u64,
    kernel_paged_attention_calls: u64,
    kernel_logits_ns: u64,
    kernel_logits_calls: u64,
    kv_bytes_per_block: usize,
    num_gpu_blocks_at_budget: usize,
    block_capacity_ratio_vs_scalar: f64,
    max_concurrent_batch: usize,
    threads: usize,
    configured_threads: usize,
    logits_match: bool,
}

impl BackendReport {
    /// One-line flat JSON document: a `backend` string, numbers, and one
    /// boolean; no nesting so the round-trip parser stays trivial.
    fn to_json(&self) -> String {
        let mut s = format!("{{\"backend\":\"{}\",", self.backend);
        let push_num = |s: &mut String, key: &str, v: f64| {
            s.push_str(&format!("\"{key}\":{v:.4},"));
        };
        push_num(&mut s, "batch_size", self.batch_size as f64);
        push_num(&mut s, "decode_steps", self.decode_steps as f64);
        push_num(
            &mut s,
            "seed_scalar_tokens_per_sec",
            self.seed_scalar_tokens_per_sec,
        );
        push_num(
            &mut s,
            "per_seq_tokens_per_sec",
            self.per_seq_tokens_per_sec,
        );
        push_num(
            &mut s,
            "batched_tokens_per_sec",
            self.batched_tokens_per_sec,
        );
        push_num(
            &mut s,
            "batched_decode_speedup",
            self.batched_decode_speedup,
        );
        push_num(&mut s, "gemm_m", self.gemm_m as f64);
        push_num(&mut s, "gemm_k", self.gemm_k as f64);
        push_num(&mut s, "gemm_n", self.gemm_n as f64);
        push_num(&mut s, "gemm_serial_ns", self.gemm_serial_ns);
        push_num(
            &mut s,
            "gemm_speedup_vs_scalar",
            self.gemm_speedup_vs_scalar,
        );
        push_num(&mut s, "kernel_matmul_ns", self.kernel_matmul_ns as f64);
        push_num(
            &mut s,
            "kernel_matmul_calls",
            self.kernel_matmul_calls as f64,
        );
        push_num(
            &mut s,
            "kernel_paged_attention_ns",
            self.kernel_paged_attention_ns as f64,
        );
        push_num(
            &mut s,
            "kernel_paged_attention_calls",
            self.kernel_paged_attention_calls as f64,
        );
        push_num(&mut s, "kernel_logits_ns", self.kernel_logits_ns as f64);
        push_num(
            &mut s,
            "kernel_logits_calls",
            self.kernel_logits_calls as f64,
        );
        push_num(&mut s, "kv_bytes_per_block", self.kv_bytes_per_block as f64);
        push_num(
            &mut s,
            "num_gpu_blocks_at_budget",
            self.num_gpu_blocks_at_budget as f64,
        );
        push_num(
            &mut s,
            "block_capacity_ratio_vs_scalar",
            self.block_capacity_ratio_vs_scalar,
        );
        push_num(
            &mut s,
            "max_concurrent_batch",
            self.max_concurrent_batch as f64,
        );
        push_num(&mut s, "threads", self.threads as f64);
        push_num(&mut s, "configured_threads", self.configured_threads as f64);
        s.push_str(&format!("\"logits_match\":{}}}", self.logits_match));
        s
    }
}

/// Extracts a numeric field from a flat JSON document written by
/// [`BackendReport::to_json`]. Returns `None` if the key is absent or its
/// value does not parse as a number.
fn json_get(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// The repository root (two levels above the bench crate manifest).
fn repo_root() -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."))
}

/// Serial GEMM microbench for one backend: average nanoseconds per
/// `matmul_serial` call, with the scalar backend's output as the
/// correctness reference.
fn bench_gemm_serial(kind: BackendKind) -> f64 {
    let mut state = 0x1234_5678_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    let a: Vec<f32> = (0..GEMM_M * GEMM_K).map(|_| next()).collect();
    let b: Vec<f32> = (0..GEMM_K * GEMM_N).map(|_| next()).collect();
    let be = backend::by_kind(kind);
    let mut out = vec![0.0f32; GEMM_M * GEMM_N];
    let mut out_ref = vec![0.0f32; GEMM_M * GEMM_N];

    // Warm and verify against the scalar reference before timing.
    ops::matmul_reference(&a, &b, GEMM_M, GEMM_K, GEMM_N, &mut out_ref);
    be.matmul_serial(&a, &b, GEMM_M, GEMM_K, GEMM_N, &mut out);
    for (r, v) in out_ref.iter().zip(&out) {
        assert!(
            (r - v).abs() < 1e-2,
            "{} matmul diverged from reference: {r} vs {v}",
            kind.name()
        );
    }

    let t0 = Instant::now();
    for _ in 0..GEMM_ITERS {
        be.matmul_serial(&a, &b, GEMM_M, GEMM_K, GEMM_N, &mut out);
    }
    t0.elapsed().as_nanos() as f64 / GEMM_ITERS as f64
}

/// GPU block capacity the block manager derives for `kind` at the shared
/// byte budget, asserted through a real [`BlockSpaceManager`].
fn capacity_at_budget(kind: BackendKind) -> (usize, usize) {
    let cfg = bench_config(kind);
    let layout = backend::by_kind(kind).kv_layout();
    let bytes_per_block = layout.bytes_per_block(cfg.n_layers, BLOCK_SIZE, cfg.hidden);
    let f32_block = KvLayout {
        element: KvElement::F32,
    }
    .bytes_per_block(cfg.n_layers, BLOCK_SIZE, cfg.hidden);
    let budget = f32_block * CAPACITY_F32_BLOCKS;
    let cache = CacheConfig::from_memory_budget(BLOCK_SIZE, bytes_per_block, budget)
        .expect("budget holds at least one block");
    let manager = BlockSpaceManager::new(&cache);
    (bytes_per_block, manager.num_total_gpu_blocks())
}

/// Runs a small engine under a fixed byte budget and reports the largest
/// concurrent running batch the scheduler sustained — the Figure-12-style
/// payoff of compact KV storage: same bytes, more blocks, bigger batches.
fn max_concurrent_batch(kind: BackendKind) -> usize {
    let mcfg = ModelConfig {
        vocab_size: 128,
        hidden: 32,
        n_layers: 2,
        n_heads: 4,
        max_position: 256,
        eos_token_id: 0,
        seed: 0x5eed,
        position_encoding: PositionEncoding::Learned,
        backend: kind,
    };
    let layout = backend::by_kind(kind).kv_layout();
    let bytes_per_block = layout.bytes_per_block(mcfg.n_layers, BLOCK_SIZE, mcfg.hidden);
    let f32_block = KvLayout {
        element: KvElement::F32,
    }
    .bytes_per_block(mcfg.n_layers, BLOCK_SIZE, mcfg.hidden);
    let budget = f32_block * SIM_F32_BLOCKS;
    let cache = CacheConfig::from_memory_budget(BLOCK_SIZE, bytes_per_block, budget)
        .expect("budget holds at least one block");
    let sched = SchedulerConfig::new(2048, 64, 2048).expect("valid scheduler config");
    let exec = CpuModelExecutor::from_config(mcfg, &cache);
    let mut engine = LlmEngine::new(exec, cache, sched);
    for i in 0..SIM_REQUESTS {
        let prompt: Vec<u32> = (0..SIM_PROMPT).map(|p| tok(i, p, 128)).collect();
        engine
            .add_request(format!("r{i}"), prompt, SamplingParams::greedy(SIM_GEN))
            .expect("request admitted");
    }
    let mut max_running = 0;
    while engine.has_unfinished() {
        engine.step().expect("sim step");
        max_running = max_running.max(engine.scheduler().num_running());
    }
    max_running
}

/// Measures one backend's decode paths against the shared seed baseline.
fn run_backend_bench(
    kind: BackendKind,
    seed_scalar_tps: f64,
    scalar_gemm_ns: f64,
    scalar_blocks: usize,
) -> BackendReport {
    let config = bench_config(kind);
    let vocab = config.vocab_size;
    let model = Transformer::new(config.clone());
    let layout = model.backend().kv_layout();

    let blocks_per_seq = (PREFILL + WARMUP_STEPS + DECODE_STEPS + 1).div_ceil(BLOCK_SIZE);
    let total_blocks = BATCH * blocks_per_seq;
    let mut kv = KvPool::with_element(
        config.n_layers,
        total_blocks,
        BLOCK_SIZE,
        config.hidden,
        layout.element,
    );

    // Disjoint per-sequence block tables, deterministic prompts.
    let tables: Vec<Vec<usize>> = (0..BATCH)
        .map(|i| (i * blocks_per_seq..(i + 1) * blocks_per_seq).collect())
        .collect();
    for (i, table) in tables.iter().enumerate() {
        let tokens: Vec<u32> = (0..PREFILL).map(|p| tok(i, p, vocab)).collect();
        let positions: Vec<usize> = (0..PREFILL).collect();
        model.forward_paged(&tokens, &positions, &mut kv, table, 0);
    }

    // Both decode paths run the SAME tokens at the SAME positions: each
    // pass rewrites K/V at those positions with bit-identical values, so
    // the bit-identity check at the end compares consistent states.
    let step_inputs: Vec<Vec<(u32, usize)>> = (0..WARMUP_STEPS + DECODE_STEPS)
        .map(|s| {
            let pos = PREFILL + s;
            (0..BATCH).map(|i| (tok(i, pos, vocab), pos)).collect()
        })
        .collect();

    // This backend's kernels, one sequence at a time.
    let mut per_seq_last = vec![Vec::new(); BATCH];
    for step in &step_inputs[..WARMUP_STEPS] {
        for (i, &(t, pos)) in step.iter().enumerate() {
            model.forward_paged(&[t], &[pos], &mut kv, &tables[i], pos);
        }
    }
    let t0 = Instant::now();
    for step in &step_inputs[WARMUP_STEPS..] {
        for (i, &(t, pos)) in step.iter().enumerate() {
            per_seq_last[i] = model.forward_paged(&[t], &[pos], &mut kv, &tables[i], pos);
        }
    }
    let per_seq_elapsed = t0.elapsed();

    // One stacked batched forward per step.
    let run_batched = |kv: &mut KvPool, step: &[(u32, usize)]| -> Vec<f32> {
        let inputs: Vec<DecodeInput<'_>> = step
            .iter()
            .enumerate()
            .map(|(i, &(t, pos))| DecodeInput {
                token: t,
                position: pos,
                block_table: &tables[i],
            })
            .collect();
        model.forward_decode_batch(&inputs, kv)
    };
    for step in &step_inputs[..WARMUP_STEPS] {
        run_batched(&mut kv, step);
    }
    let kernels_before = timing::snapshot();
    let mut batched_last = Vec::new();
    let t0 = Instant::now();
    for step in &step_inputs[WARMUP_STEPS..] {
        batched_last = run_batched(&mut kv, step);
    }
    let batched_elapsed = t0.elapsed();
    let kernels = timing::snapshot().delta_since(&kernels_before);

    // Bit-identity spot check on the final step's logits: the batched
    // forward must equal the per-sequence forward under this backend's
    // k-only accumulation-order contract.
    let logits_match =
        (0..BATCH).all(|i| per_seq_last[i][..] == batched_last[i * vocab..(i + 1) * vocab]);

    let gemm_ns = bench_gemm_serial(kind);
    let (bytes_per_block, blocks_at_budget) = capacity_at_budget(kind);

    let decoded_tokens = (BATCH * DECODE_STEPS) as f64;
    let per_seq_tps = decoded_tokens / per_seq_elapsed.as_secs_f64();
    let batched_tps = decoded_tokens / batched_elapsed.as_secs_f64();
    BackendReport {
        backend: kind.name(),
        batch_size: BATCH,
        decode_steps: DECODE_STEPS,
        seed_scalar_tokens_per_sec: seed_scalar_tps,
        per_seq_tokens_per_sec: per_seq_tps,
        batched_tokens_per_sec: batched_tps,
        batched_decode_speedup: batched_tps / seed_scalar_tps,
        gemm_m: GEMM_M,
        gemm_k: GEMM_K,
        gemm_n: GEMM_N,
        gemm_serial_ns: gemm_ns,
        gemm_speedup_vs_scalar: scalar_gemm_ns / gemm_ns,
        kernel_matmul_ns: kernels.matmul_ns,
        kernel_matmul_calls: kernels.matmul_calls,
        kernel_paged_attention_ns: kernels.attention_ns,
        kernel_paged_attention_calls: kernels.attention_calls,
        kernel_logits_ns: kernels.logits_ns,
        kernel_logits_calls: kernels.logits_calls,
        kv_bytes_per_block: bytes_per_block,
        num_gpu_blocks_at_budget: blocks_at_budget,
        block_capacity_ratio_vs_scalar: blocks_at_budget as f64 / scalar_blocks as f64,
        max_concurrent_batch: max_concurrent_batch(kind),
        threads: pool::global().parallelism(),
        configured_threads: pool::configured_threads(),
        logits_match,
    }
}

/// Measures the seed repository's scalar per-sequence decode throughput
/// once; it is backend-independent (reference kernels, f32 KV).
fn run_seed_baseline() -> f64 {
    let config = bench_config(BackendKind::Scalar);
    let vocab = config.vocab_size;
    let model = Transformer::new(config.clone());
    let blocks_per_seq = (PREFILL + WARMUP_STEPS + DECODE_STEPS + 1).div_ceil(BLOCK_SIZE);
    let mut kv = KvPool::new(
        config.n_layers,
        BATCH * blocks_per_seq,
        BLOCK_SIZE,
        config.hidden,
    );
    let tables: Vec<Vec<usize>> = (0..BATCH)
        .map(|i| (i * blocks_per_seq..(i + 1) * blocks_per_seq).collect())
        .collect();
    for (i, table) in tables.iter().enumerate() {
        let tokens: Vec<u32> = (0..PREFILL).map(|p| tok(i, p, vocab)).collect();
        let positions: Vec<usize> = (0..PREFILL).collect();
        model.forward_paged(&tokens, &positions, &mut kv, table, 0);
    }
    let step_inputs: Vec<Vec<(u32, usize)>> = (0..WARMUP_STEPS + DECODE_STEPS)
        .map(|s| {
            let pos = PREFILL + s;
            (0..BATCH).map(|i| (tok(i, pos, vocab), pos)).collect()
        })
        .collect();
    for step in &step_inputs[..WARMUP_STEPS] {
        for (i, &(t, pos)) in step.iter().enumerate() {
            forward_decode_seed(&model, t, pos, &mut kv, &tables[i]);
        }
    }
    let t0 = Instant::now();
    for step in &step_inputs[WARMUP_STEPS..] {
        for (i, &(t, pos)) in step.iter().enumerate() {
            forward_decode_seed(&model, t, pos, &mut kv, &tables[i]);
        }
    }
    (BATCH * DECODE_STEPS) as f64 / t0.elapsed().as_secs_f64()
}

fn print_report(r: &BackendReport) {
    println!("=== backend: {} ===", r.backend);
    println!(
        "  threads: {} (VLLM_NUM_THREADS={})",
        r.threads, r.configured_threads
    );
    println!(
        "  decode (batch {}, {} steps): seed scalar {:.1} tok/s | per-seq {:.1} tok/s | batched {:.1} tok/s ({:.2}x vs seed)",
        r.batch_size,
        r.decode_steps,
        r.seed_scalar_tokens_per_sec,
        r.per_seq_tokens_per_sec,
        r.batched_tokens_per_sec,
        r.batched_decode_speedup
    );
    println!(
        "  batched logits bit-identical to per-sequence: {}",
        r.logits_match
    );
    println!(
        "  serial GEMM {}x{}x{}: {:.0} ns ({:.2}x vs scalar backend)",
        r.gemm_m, r.gemm_k, r.gemm_n, r.gemm_serial_ns, r.gemm_speedup_vs_scalar
    );
    println!(
        "  KV bytes/block {} -> {} GPU blocks at the shared budget ({:.2}x scalar capacity)",
        r.kv_bytes_per_block, r.num_gpu_blocks_at_budget, r.block_capacity_ratio_vs_scalar
    );
    println!(
        "  max concurrent batch in sim ({} reqs, equal bytes): {}",
        SIM_REQUESTS, r.max_concurrent_batch
    );
    println!(
        "  kernel counters over batched phase: matmul {} ns/{} calls, attention {} ns/{} calls, logits {} ns/{} calls",
        r.kernel_matmul_ns,
        r.kernel_matmul_calls,
        r.kernel_paged_attention_ns,
        r.kernel_paged_attention_calls,
        r.kernel_logits_ns,
        r.kernel_logits_calls
    );
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");

    println!("=== kernels: per-backend numeric-layer microbenchmarks ===");
    let seed_scalar_tps = run_seed_baseline();

    // The scalar backend anchors the cross-backend comparisons.
    let scalar_gemm_ns = bench_gemm_serial(BackendKind::Scalar);
    let (_, scalar_blocks) = capacity_at_budget(BackendKind::Scalar);

    let mut reports: Vec<BackendReport> = BackendKind::all()
        .iter()
        .map(|&kind| run_backend_bench(kind, seed_scalar_tps, scalar_gemm_ns, scalar_blocks))
        .collect();
    // Re-anchor GEMM speedups on the scalar record's own in-loop timing so
    // the scalar row reads exactly 1.0x and cross-backend ratios share one
    // measurement context.
    let scalar_loop_gemm_ns = reports
        .iter()
        .find(|r| r.backend == "scalar")
        .map_or(scalar_gemm_ns, |r| r.gemm_serial_ns);
    for r in &mut reports {
        r.gemm_speedup_vs_scalar = scalar_loop_gemm_ns / r.gemm_serial_ns;
    }
    for r in &reports {
        print_report(r);
        println!();
    }

    let path = repo_root().join("BENCH_kernels.json");
    let mut json = String::new();
    for r in &reports {
        json.push_str(&r.to_json());
        json.push('\n');
    }
    std::fs::write(&path, &json).expect("write BENCH_kernels.json");
    println!("wrote {} ({} records)", path.display(), reports.len());

    if !ci {
        return;
    }

    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failures += 1;
        }
    };

    let by_name = |name: &str| -> &BackendReport {
        reports
            .iter()
            .find(|r| r.backend == name)
            .expect("all backends benched")
    };
    let scalar = by_name("scalar");
    let simd = by_name("simd");
    let quant = by_name("quant-kv8");

    for r in &reports {
        check(
            r.logits_match,
            &format!(
                "{}: batched decode logits are not bit-identical to per-sequence decode",
                r.backend
            ),
        );
        check(
            r.kernel_matmul_calls > 0
                && r.kernel_paged_attention_calls > 0
                && r.kernel_logits_calls > 0,
            &format!(
                "{}: kernel timing counters did not advance during the batched phase",
                r.backend
            ),
        );
    }
    check(
        scalar.batched_decode_speedup >= 2.0,
        &format!(
            "scalar batched decode speedup {:.2}x is below the 2x gate at batch {}",
            scalar.batched_decode_speedup, scalar.batch_size
        ),
    );
    check(
        simd.gemm_speedup_vs_scalar >= 1.3,
        &format!(
            "simd serial GEMM speedup {:.2}x is below the 1.3x gate",
            simd.gemm_speedup_vs_scalar
        ),
    );
    check(
        quant.num_gpu_blocks_at_budget as f64 >= 1.8 * scalar.num_gpu_blocks_at_budget as f64,
        &format!(
            "quant-kv8 block capacity {} is below 1.8x the scalar capacity {} at equal bytes",
            quant.num_gpu_blocks_at_budget, scalar.num_gpu_blocks_at_budget
        ),
    );
    check(
        quant.max_concurrent_batch > scalar.max_concurrent_batch,
        &format!(
            "quant-kv8 max concurrent batch {} does not exceed scalar's {} at equal bytes",
            quant.max_concurrent_batch, scalar.max_concurrent_batch
        ),
    );

    // JSON round trip: every record must name its backend and preserve its
    // numeric fields through write + parse.
    let written = std::fs::read_to_string(&path).expect("read back BENCH_kernels.json");
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-3 * a.abs().max(1.0);
    for r in &reports {
        let line = written
            .lines()
            .find(|l| l.contains(&format!("\"backend\":\"{}\"", r.backend)));
        let Some(line) = line else {
            check(false, &format!("round-trip lost the {} record", r.backend));
            continue;
        };
        let fields: Vec<(&str, f64)> = vec![
            ("batch_size", r.batch_size as f64),
            ("decode_steps", r.decode_steps as f64),
            ("seed_scalar_tokens_per_sec", r.seed_scalar_tokens_per_sec),
            ("per_seq_tokens_per_sec", r.per_seq_tokens_per_sec),
            ("batched_tokens_per_sec", r.batched_tokens_per_sec),
            ("batched_decode_speedup", r.batched_decode_speedup),
            ("gemm_serial_ns", r.gemm_serial_ns),
            ("gemm_speedup_vs_scalar", r.gemm_speedup_vs_scalar),
            ("kernel_matmul_ns", r.kernel_matmul_ns as f64),
            ("kernel_logits_calls", r.kernel_logits_calls as f64),
            ("kv_bytes_per_block", r.kv_bytes_per_block as f64),
            (
                "num_gpu_blocks_at_budget",
                r.num_gpu_blocks_at_budget as f64,
            ),
            ("max_concurrent_batch", r.max_concurrent_batch as f64),
            ("threads", r.threads as f64),
            ("configured_threads", r.configured_threads as f64),
        ];
        for (key, expect) in fields {
            match json_get(line, key) {
                Some(v) => check(
                    close(v, expect),
                    &format!(
                        "{}: round-trip mismatch for {key}: wrote {expect}, parsed {v}",
                        r.backend
                    ),
                ),
                None => check(
                    false,
                    &format!("{}: round-trip lost field {key}", r.backend),
                ),
            }
        }
    }

    if failures > 0 {
        eprintln!("kernels bench CI: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("kernels bench CI OK");
}
