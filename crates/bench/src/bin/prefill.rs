//! Chunked-prefill benchmark: scheduler-budgeted prefill admission
//! (`VLLM_STEP_TOKEN_BUDGET`) against the all-or-nothing baseline.
//!
//! Three sections:
//!
//! * **mixed** — a mixed long/short trace (10% of requests carry 4k-token
//!   prompts) replayed through the simulated engine, unchunked vs chunked
//!   at several step budgets. Records mean/p99 TTFT and generation
//!   throughput; the CI gate requires chunked p99 TTFT to improve while
//!   throughput stays within tolerance ("equal throughput").
//! * **bit_identity** — the real CPU engine on every kernel backend
//!   (scalar / simd / quant-kv8): greedy outputs and cumulative logprobs
//!   must be *bit-identical* between chunked and unchunked runs (the
//!   k-only accumulation-order contract of the prefill kernels).
//! * **smoke32k** — a 32k-token synthetic long-context prompt streamed
//!   through the simulated engine in 2k chunks: must complete end-to-end
//!   with the expected chunk count and block-table depth, leaking nothing.
//!
//! Results go to `results/prefill.json` and `BENCH_prefill.json` (JSON
//! lines). With `--ci` the gates are asserted and the artifact is copied
//! under `target/ci-prefill/`, exiting non-zero on failure.

use std::fmt::Write as _;

use vllm_baselines::types::BatchSystem;
use vllm_core::config::{CacheConfig, PreemptionMode, SchedulerConfig};
use vllm_core::engine::{LlmEngine, RequestOutput};
use vllm_core::sampling::SamplingParams;
use vllm_model::backend::BackendKind;
use vllm_model::config::ModelConfig;
use vllm_model::executor::CpuModelExecutor;
use vllm_sim::{ServerConfig, VllmSimSystem, ACTIVATION_RESERVE_FRACTION};
use vllm_workloads::{long_context_prompt, synthesize_mixed_trace, Trace, LONG_CONTEXT_PROMPT_LEN};

/// Paged block size (tokens per KV block).
const BLOCK_SIZE: usize = 16;
/// Vocabulary for synthetic sim prompts.
const SIM_VOCAB: u32 = 50_000;
/// Mixed-trace shape: offered rate, request count, long fraction/length,
/// short prompt bounds, scripted output length.
const MIXED_RATE: f64 = 3.0;
const MIXED_REQUESTS: usize = 240;
const LONG_FRACTION: f64 = 0.1;
const LONG_PROMPT: usize = 4096;
const SHORT_MIN: usize = 16;
const SHORT_MAX: usize = 128;
const OUTPUT_LEN: usize = 32;
const TRACE_SEED: u64 = 42;
/// Step budgets swept in the mixed section; the CI gate reads the middle.
const BUDGETS: [usize; 3] = [256, 512, 1024];
/// CI gate: overall chunked p99 TTFT must be at most this fraction of
/// unchunked (the tail is dominated by the long prompts' own prefill time,
/// so "no regression" is the meaningful bound here).
const TTFT_GATE: f64 = 1.0;
/// CI gate: short-request p99 TTFT must be at most this fraction of
/// unchunked — the headline win of chunked prefill is that short requests
/// stop queueing behind multi-second monolithic prefills.
const SHORT_TTFT_GATE: f64 = 0.5;
/// CI gate: chunked throughput must be at least this fraction of unchunked.
const THROUGHPUT_GATE: f64 = 0.9;
/// Chunk budget for the 32k smoke.
const SMOKE_BUDGET: usize = 2048;
/// Output tokens for the 32k smoke.
const SMOKE_OUTPUT: usize = 16;

/// An OPT-13B-shaped server stretched for long contexts: `max_len` model
/// context and memory solved so the KV budget holds `kv_slots` tokens.
fn long_context_server(max_len: usize, kv_slots: usize) -> ServerConfig {
    let mut cfg = ServerConfig::opt_13b_1gpu();
    cfg.model.max_len = max_len;
    cfg.gpu.mem_bytes_per_gpu = (kv_slots as f64 * cfg.model.kv_bytes_per_token()
        + cfg.model.weight_bytes())
        / (1.0 - ACTIVATION_RESERVE_FRACTION);
    cfg
}

/// Replays `trace` through a simulated engine, enqueuing requests as the
/// virtual clock passes their arrivals, and returns every finished request
/// (with first-token timestamps).
fn drive_trace(sys: &mut VllmSimSystem, trace: &Trace) -> Vec<RequestOutput> {
    let e = sys.engine_mut();
    let mut outs = Vec::new();
    let mut next = 0usize;
    while next < trace.requests.len() || e.has_unfinished() {
        if !e.has_unfinished() {
            e.advance_clock_to(trace.requests[next].arrival);
        }
        while next < trace.requests.len() && trace.requests[next].arrival <= e.clock() {
            let r = &trace.requests[next];
            e.add_request_at(
                r.id.to_string(),
                r.prompt_tokens(SIM_VOCAB),
                SamplingParams::greedy(r.output_len)
                    .with_ignore_eos()
                    .with_seed(r.id),
                r.arrival,
            )
            .expect("valid request");
            next += 1;
        }
        outs.extend(e.step().expect("engine step"));
    }
    outs
}

/// TTFT and throughput summary of one mixed-trace run.
struct MixedRow {
    system: String,
    budget: Option<usize>,
    mean_ttft: f64,
    p99_ttft: f64,
    p99_short_ttft: f64,
    throughput: f64,
    preemptions: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_mixed(budget: Option<usize>, trace: &Trace) -> MixedRow {
    let server = long_context_server(8192, 40_000);
    let mut sys = VllmSimSystem::new(server, BLOCK_SIZE, PreemptionMode::Recompute);
    if let Some(b) = budget {
        sys = sys.with_chunked_prefill(b);
    }
    let outs = drive_trace(&mut sys, trace);
    assert_eq!(outs.len(), trace.requests.len(), "all requests finish");

    let ttft = |o: &RequestOutput| o.first_token_time.expect("finished") - o.arrival_time;
    let mut all: Vec<f64> = outs.iter().map(ttft).collect();
    let mut short: Vec<f64> = outs
        .iter()
        .filter(|o| o.prompt_len < LONG_PROMPT)
        .map(ttft)
        .collect();
    all.sort_by(f64::total_cmp);
    short.sort_by(f64::total_cmp);
    let makespan = outs.iter().map(|o| o.finish_time).fold(0.0, f64::max);
    let tokens: usize = outs.iter().map(|o| o.mean_output_len() as usize).sum();
    MixedRow {
        system: sys.name(),
        budget,
        mean_ttft: all.iter().sum::<f64>() / all.len() as f64,
        p99_ttft: percentile(&all, 0.99),
        p99_short_ttft: percentile(&short, 0.99),
        throughput: tokens as f64 / makespan,
        preemptions: sys.engine().scheduler().stats().num_preemptions,
    }
}

/// One backend's chunked-vs-unchunked comparison on the real CPU engine.
struct IdentityRow {
    backend: &'static str,
    budget: usize,
    identical: bool,
}

fn run_engine(kind: BackendKind, budget: Option<usize>) -> Vec<RequestOutput> {
    let cache = CacheConfig::new(4, 128, 128).expect("cache config");
    let sched = SchedulerConfig::new(512, 32, 512).expect("scheduler config");
    let mut mc = ModelConfig::tiny();
    mc.backend = kind;
    let exec = CpuModelExecutor::from_config(mc, &cache);
    let mut e = LlmEngine::new(exec, cache, sched);
    e.set_step_token_budget(budget);
    // A long prompt that chunks unevenly plus a short one arriving just
    // behind it, so chunks co-batch with the short request's decodes.
    let long: Vec<u32> = (0..23u32).map(|i| (i * 7 + 3) % 128).collect();
    let short: Vec<u32> = (0..6u32).map(|i| (i * 11 + 5) % 128).collect();
    e.add_request("long", long, SamplingParams::greedy(8))
        .expect("add long");
    e.add_request_at("short", short, SamplingParams::greedy(8), 1e-6)
        .expect("add short");
    let mut outs = e.run_to_completion().expect("run");
    outs.sort_by(|a, b| a.request_id.cmp(&b.request_id));
    outs
}

fn bit_identical(kind: BackendKind, budget: usize) -> bool {
    let base = run_engine(kind, None);
    let chunked = run_engine(kind, Some(budget));
    base.len() == chunked.len()
        && base.iter().zip(&chunked).all(|(a, b)| {
            a.request_id == b.request_id
                && a.outputs.len() == b.outputs.len()
                && a.outputs.iter().zip(&b.outputs).all(|(x, y)| {
                    x.tokens == y.tokens
                        && x.cumulative_logprob.to_bits() == y.cumulative_logprob.to_bits()
                })
        })
}

/// 32k-prompt smoke result.
struct SmokeRow {
    prompt_tokens: usize,
    chunk_steps: usize,
    peak_blocks: usize,
    leaked_blocks: usize,
    output_tokens: usize,
}

fn run_smoke() -> SmokeRow {
    let server = long_context_server(LONG_CONTEXT_PROMPT_LEN + 256, 40_000);
    let mut sys = VllmSimSystem::new(server, BLOCK_SIZE, PreemptionMode::Recompute)
        .with_chunked_prefill(SMOKE_BUDGET);
    let e = sys.engine_mut();
    e.add_request(
        "long32k",
        long_context_prompt(7, LONG_CONTEXT_PROMPT_LEN, SIM_VOCAB),
        SamplingParams::greedy(SMOKE_OUTPUT).with_ignore_eos(),
    )
    .expect("add 32k request");
    let mut chunk_steps = 0usize;
    let mut peak_blocks = 0usize;
    let mut outs = Vec::new();
    while e.has_unfinished() {
        outs.extend(e.step().expect("engine step"));
        if !e.executor().last_work.prefill_tokens.is_empty() {
            chunk_steps += 1;
        }
        let bm = e.scheduler().block_manager();
        peak_blocks = peak_blocks.max(bm.num_allocated_gpu_blocks());
    }
    let bm = e.scheduler().block_manager();
    SmokeRow {
        prompt_tokens: LONG_CONTEXT_PROMPT_LEN,
        chunk_steps,
        peak_blocks,
        leaked_blocks: bm.num_total_gpu_blocks() - bm.num_free_gpu_blocks(),
        output_tokens: outs
            .first()
            .map_or(0, |o| o.outputs.first().map_or(0, |c| c.tokens.len())),
    }
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");
    let mut lines = String::new();

    // Section 1: mixed long/short TTFT.
    let trace = synthesize_mixed_trace(
        MIXED_RATE,
        MIXED_REQUESTS,
        LONG_FRACTION,
        LONG_PROMPT,
        SHORT_MIN..=SHORT_MAX,
        OUTPUT_LEN,
        TRACE_SEED,
    );
    println!("== mixed long/short traffic: {MIXED_REQUESTS} requests at {MIXED_RATE}/s, {:.0}% x {LONG_PROMPT}-token prompts ==", LONG_FRACTION * 100.0);
    println!(
        "  {:<18} {:>8} {:>12} {:>12} {:>14} {:>12} {:>9}",
        "system", "budget", "mean-ttft", "p99-ttft", "p99-short-ttft", "tput(tok/s)", "preempt"
    );
    let mut mixed: Vec<MixedRow> = Vec::new();
    let baseline = run_mixed(None, &trace);
    for row in std::iter::once(baseline).chain(BUDGETS.iter().map(|&b| run_mixed(Some(b), &trace)))
    {
        println!(
            "  {:<18} {:>8} {:>12.4} {:>12.4} {:>14.4} {:>12.2} {:>9}",
            row.system,
            row.budget.map_or("-".to_string(), |b| b.to_string()),
            row.mean_ttft,
            row.p99_ttft,
            row.p99_short_ttft,
            row.throughput,
            row.preemptions
        );
        writeln!(
            lines,
            concat!(
                "{{\"section\":\"mixed\",\"system\":\"{}\",\"budget\":{},",
                "\"mean_ttft_s\":{:.6},\"p99_ttft_s\":{:.6},",
                "\"p99_short_ttft_s\":{:.6},\"throughput_tok_s\":{:.3},",
                "\"preemptions\":{}}}"
            ),
            row.system,
            row.budget.map_or("null".to_string(), |b| b.to_string()),
            row.mean_ttft,
            row.p99_ttft,
            row.p99_short_ttft,
            row.throughput,
            row.preemptions
        )
        .unwrap();
        mixed.push(row);
    }

    // Section 2: chunked/unchunked bit identity on the real engine.
    println!("\n== greedy bit-identity: chunked vs unchunked, per backend ==");
    let mut identities: Vec<IdentityRow> = Vec::new();
    for kind in [
        BackendKind::Scalar,
        BackendKind::Simd,
        BackendKind::QuantKv8,
    ] {
        for budget in [5usize, 16] {
            let ok = bit_identical(kind, budget);
            println!(
                "  {:<10} budget {:>3}: {}",
                kind.name(),
                budget,
                if ok { "identical" } else { "DIVERGED" }
            );
            writeln!(
                lines,
                "{{\"section\":\"bit_identity\",\"backend\":\"{}\",\"budget\":{},\"identical\":{}}}",
                kind.name(),
                budget,
                ok
            )
            .unwrap();
            identities.push(IdentityRow {
                backend: kind.name(),
                budget,
                identical: ok,
            });
        }
    }

    // Section 3: 32k long-context smoke.
    let smoke = run_smoke();
    println!(
        "\n== 32k smoke: {} prompt tokens in {} chunks, peak {} blocks, {} leaked, {} output tokens ==",
        smoke.prompt_tokens, smoke.chunk_steps, smoke.peak_blocks, smoke.leaked_blocks, smoke.output_tokens
    );
    writeln!(
        lines,
        concat!(
            "{{\"section\":\"smoke32k\",\"prompt_tokens\":{},\"chunk_steps\":{},",
            "\"peak_blocks\":{},\"leaked_blocks\":{},\"output_tokens\":{}}}"
        ),
        smoke.prompt_tokens,
        smoke.chunk_steps,
        smoke.peak_blocks,
        smoke.leaked_blocks,
        smoke.output_tokens
    )
    .unwrap();

    let root = repo_root();
    std::fs::create_dir_all(root.join("results")).expect("create results dir");
    std::fs::write(root.join("results/prefill.json"), &lines).expect("write results/prefill.json");
    std::fs::write(root.join("BENCH_prefill.json"), &lines).expect("write BENCH_prefill.json");
    println!("wrote results/prefill.json and BENCH_prefill.json");
    if ci {
        std::fs::create_dir_all(root.join("target/ci-prefill")).expect("create ci dir");
        std::fs::write(root.join("target/ci-prefill/prefill.json"), &lines)
            .expect("write ci artifact");
    }

    if !ci {
        return;
    }

    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failures += 1;
        }
    };

    let base = &mixed[0];
    let gated = mixed
        .iter()
        .find(|r| r.budget == Some(BUDGETS[1]))
        .expect("gated budget row");
    check(
        gated.p99_ttft <= base.p99_ttft * TTFT_GATE,
        &format!(
            "p99 TTFT regressed: chunked {:.4}s vs unchunked {:.4}s (gate {:.0}%)",
            gated.p99_ttft,
            base.p99_ttft,
            TTFT_GATE * 100.0
        ),
    );
    check(
        gated.p99_short_ttft <= base.p99_short_ttft * SHORT_TTFT_GATE,
        &format!(
            "short-request p99 TTFT not improved: chunked {:.4}s vs unchunked {:.4}s (gate {:.0}%)",
            gated.p99_short_ttft,
            base.p99_short_ttft,
            SHORT_TTFT_GATE * 100.0
        ),
    );
    check(
        gated.throughput >= base.throughput * THROUGHPUT_GATE,
        &format!(
            "throughput not preserved: chunked {:.2} vs unchunked {:.2} tok/s (gate {:.0}%)",
            gated.throughput,
            base.throughput,
            THROUGHPUT_GATE * 100.0
        ),
    );

    for id in &identities {
        check(
            id.identical,
            &format!(
                "backend {} budget {}: chunked outputs diverge from unchunked",
                id.backend, id.budget
            ),
        );
    }

    check(
        smoke.chunk_steps == LONG_CONTEXT_PROMPT_LEN.div_ceil(SMOKE_BUDGET),
        &format!(
            "32k smoke: {} chunk steps, expected {}",
            smoke.chunk_steps,
            LONG_CONTEXT_PROMPT_LEN.div_ceil(SMOKE_BUDGET)
        ),
    );
    check(
        smoke.peak_blocks >= (LONG_CONTEXT_PROMPT_LEN + SMOKE_OUTPUT).div_ceil(BLOCK_SIZE),
        &format!(
            "32k smoke: peak block-table depth {} below prompt residency {}",
            smoke.peak_blocks,
            (LONG_CONTEXT_PROMPT_LEN + SMOKE_OUTPUT).div_ceil(BLOCK_SIZE)
        ),
    );
    check(
        smoke.leaked_blocks == 0,
        &format!("32k smoke: {} blocks leaked", smoke.leaked_blocks),
    );
    check(
        smoke.output_tokens == SMOKE_OUTPUT,
        &format!(
            "32k smoke: {} output tokens, expected {SMOKE_OUTPUT}",
            smoke.output_tokens
        ),
    );

    if failures > 0 {
        eprintln!("{failures} chunked-prefill check(s) failed");
        std::process::exit(1);
    }
    println!("chunked-prefill CI gate passed");
}

fn repo_root() -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."))
}
