//! Fault-injection soak: graceful degradation under seeded fault schedules.
//!
//! Exercises the [`FaultCluster`] harness two ways:
//!
//! 1. **Acceptance scenario** — a hand-built plan against a 3-replica
//!    fleet: one replica is killed mid-run (and later restarted) while a
//!    second has its CPU swap pool exhausted. Every request must complete
//!    exactly once or be terminally rejected with a retryable error; no
//!    request is lost or duplicated, and no KV block leaks.
//! 2. **Chunked-prefill scenario** — every replica is switched to
//!    scheduler-budgeted chunked prefill ([`FaultKind::StallPrefill`]), so
//!    prompts span several lockstep steps; a kill and a forward failure
//!    then land *between* chunks. Partially-prefilled requests must be
//!    re-routed and delivered exactly once with zero block leaks.
//! 3. **Seeded soak** — a batch of [`FaultPlan::seeded`] schedules (which
//!    include prefill-chunking switches), each run twice. The same seed
//!    must reproduce the identical [`FaultReport`] — same retry counts,
//!    same token fingerprint.
//!
//! Writes per-run outcome counts to `results/faults.json`. With `--ci` the
//! harness asserts the acceptance criteria instead, writing its artifact
//! under `target/ci-faults/` and exiting non-zero on any failure.

use std::fmt::Write as _;

use vllm_cluster::{
    ClusterRequest, FaultCluster, FaultClusterConfig, FaultKind, FaultPlan, FaultReport,
    RoutePolicy,
};
use vllm_core::telemetry::MetricsSnapshot;

/// Fleet size under test.
const REPLICAS: usize = 3;
/// Requests per run.
const REQUESTS: u64 = 72;
/// Request arrivals per lockstep step.
const ARRIVALS_PER_STEP: f64 = 2.0;
/// Fault-schedule horizon in lockstep steps.
const HORIZON: u64 = 48;
/// Seeds for the soak batch.
const SOAK_SEEDS: [u64; 5] = [1, 7, 23, 99, 2026];

fn prompt(id: u64, len: usize) -> Vec<u32> {
    (0..len)
        .map(|i| 1 + ((id * 31 + i as u64 * 7) % 997) as u32)
        .collect()
}

fn trace(n: u64, per_step: f64) -> Vec<ClusterRequest> {
    (0..n)
        .map(|i| ClusterRequest {
            id: i,
            arrival: i as f64 / per_step,
            prompt: prompt(i, 16),
            output_len: 12,
        })
        .collect()
}

/// The acceptance plan: kill replica 0 mid-run (restart it later) while
/// replica 1 loses its swap pool for most of the run and replica 2 has its
/// GPU block pool deflated mid-decode (elastic shrink + compaction).
fn acceptance_plan() -> FaultPlan {
    FaultPlan::new(0)
        .with_event(4, 1, FaultKind::ExhaustSwap)
        .with_event(6, 0, FaultKind::KillReplica)
        .with_event(8, 2, FaultKind::PoolPressure { fraction: 0.4 })
        .with_event(10, 2, FaultKind::FailForwards { count: 1 })
        .with_event(24, 2, FaultKind::RestorePool)
        .with_event(28, 1, FaultKind::RestoreSwap)
        .with_event(30, 0, FaultKind::RestartReplica)
}

/// The chunked-prefill plan: all replicas switch to chunked prefill (4
/// chunks per 16-token prompt) before traffic ramps, then replica 0 is
/// killed mid-prefill and replica 1 drops a forward pass — both faults
/// land between chunks of partially-prefilled prompts.
fn chunked_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(0);
    for r in 0..REPLICAS {
        plan = plan.with_event(0, r, FaultKind::StallPrefill { chunks: 4 });
    }
    plan.with_event(4, 0, FaultKind::KillReplica)
        .with_event(7, 1, FaultKind::FailForwards { count: 1 })
        .with_event(30, 0, FaultKind::RestartReplica)
}

fn run_plan(plan: &FaultPlan, policy: RoutePolicy) -> (FaultReport, MetricsSnapshot) {
    let mut cluster = FaultCluster::new(FaultClusterConfig::new(REPLICAS).with_policy(policy));
    let report = cluster.run(plan, trace(REQUESTS, ARRIVALS_PER_STEP));
    let snap = cluster.merged_snapshot();
    (report, snap)
}

fn report_json(label: &str, seed: u64, r: &FaultReport) -> String {
    format!(
        concat!(
            "{{\"label\":\"{}\",\"seed\":{},\"requests\":{},\"completed\":{},",
            "\"rejected\":{},\"lost\":{},\"duplicates\":{},\"retries\":{},",
            "\"faults_injected\":{},\"kills\":{},\"forward_failures\":{},",
            "\"steps\":{},\"leaked_blocks\":{},\"token_fingerprint\":{}}}"
        ),
        label,
        seed,
        r.num_requests,
        r.completed,
        r.rejected,
        r.lost,
        r.duplicates,
        r.retries,
        r.faults_injected,
        r.kills,
        r.forward_failures,
        r.steps,
        r.leaked_blocks,
        r.token_fingerprint
    )
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");

    // 1. Acceptance scenario.
    let (scenario, snap) = run_plan(&acceptance_plan(), RoutePolicy::PrefixAffinity);
    println!(
        "scenario: {}/{} completed, {} rejected, {} lost, {} dup, {} retries, {} leaked blocks",
        scenario.completed,
        scenario.num_requests,
        scenario.rejected,
        scenario.lost,
        scenario.duplicates,
        scenario.retries,
        scenario.leaked_blocks
    );

    // 2. Chunked-prefill scenario: kills land between prefill chunks.
    let (chunked, chunked_snap) = run_plan(&chunked_plan(), RoutePolicy::RoundRobin);
    println!(
        "chunked:  {}/{} completed, {} rejected, {} lost, {} dup, {} retries, {} leaked blocks",
        chunked.completed,
        chunked.num_requests,
        chunked.rejected,
        chunked.lost,
        chunked.duplicates,
        chunked.retries,
        chunked.leaked_blocks
    );

    // 3. Seeded soak, each seed run twice for determinism.
    let soak: Vec<(u64, FaultReport, FaultReport)> = SOAK_SEEDS
        .iter()
        .map(|&seed| {
            let plan = FaultPlan::seeded(seed, REPLICAS, HORIZON);
            let (a, _) = run_plan(&plan, RoutePolicy::PrefixAffinity);
            let (b, _) = run_plan(&plan, RoutePolicy::PrefixAffinity);
            (seed, a, b)
        })
        .collect();
    for (seed, r, _) in &soak {
        println!(
            "seed {seed:>5}: {}/{} completed, {} rejected, {} retries, {} faults, fp {:#x}",
            r.completed,
            r.num_requests,
            r.rejected,
            r.retries,
            r.faults_injected,
            r.token_fingerprint
        );
    }

    // JSON artifact.
    let mut json = String::new();
    write!(
        json,
        "{{\"replicas\":{REPLICAS},\"requests\":{REQUESTS},\"runs\":[{}",
        report_json("scenario", 0, &scenario)
    )
    .unwrap();
    write!(json, ",{}", report_json("chunked", 0, &chunked)).unwrap();
    for (seed, r, _) in &soak {
        write!(json, ",{}", report_json("seeded", *seed, r)).unwrap();
    }
    json.push_str("]}");
    let dir = if ci { "target/ci-faults" } else { "results" };
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = format!("{dir}/faults.json");
    std::fs::write(&path, json + "\n").expect("write artifact");
    println!("wrote {path}");

    if !ci {
        return;
    }

    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failures += 1;
        }
    };

    // Exactly-once delivery under kill + swap exhaustion.
    check(scenario.kills == 1, "scenario: expected exactly one kill");
    check(scenario.lost == 0, "scenario: requests were lost");
    check(scenario.duplicates == 0, "scenario: duplicate completions");
    check(
        scenario.completed + scenario.rejected == scenario.num_requests,
        "scenario: some requests neither completed nor rejected",
    );
    check(
        scenario.retries > 0,
        "scenario: the kill must force re-routing retries",
    );
    check(scenario.leaked_blocks == 0, "scenario: KV blocks leaked");

    // Fault and retry telemetry present in both expositions.
    check(
        snap.counter("vllm_fault_kills_total") == Some(scenario.kills),
        "scenario: vllm_fault_kills_total missing or wrong",
    );
    check(
        snap.counter("vllm_cluster_retries_total") == Some(scenario.retries),
        "scenario: vllm_cluster_retries_total missing or wrong",
    );
    check(
        snap.counter("vllm_fault_injected_total") == Some(scenario.faults_injected),
        "scenario: vllm_fault_injected_total missing or wrong",
    );
    check(
        snap.counter("vllm_fault_pool_pressure_total") == Some(1),
        "scenario: vllm_fault_pool_pressure_total missing or wrong",
    );
    let prom = snap.to_prometheus_text();
    let json_expo = snap.to_json();
    for name in [
        "vllm_fault_injected_total",
        "vllm_fault_kills_total",
        "vllm_fault_pool_pressure_total",
        "vllm_cluster_retries_total",
    ] {
        check(
            prom.contains(name),
            &format!("{name} absent from Prometheus exposition"),
        );
        check(
            json_expo.contains(name),
            &format!("{name} absent from JSON exposition"),
        );
    }

    // Chunked-prefill scenario: exactly-once delivery with kills landing
    // between prefill chunks, and exact block accounting for the aborted
    // chunk cursors.
    check(chunked.kills == 1, "chunked: expected exactly one kill");
    check(
        chunked.lost == 0,
        "chunked: partially-prefilled requests were lost",
    );
    check(chunked.duplicates == 0, "chunked: duplicate completions");
    check(
        chunked.completed + chunked.rejected == chunked.num_requests,
        "chunked: some requests neither completed nor rejected",
    );
    check(
        chunked.retries > 0,
        "chunked: the mid-prefill kill must force re-routing retries",
    );
    check(
        chunked.leaked_blocks == 0,
        "chunked: KV blocks leaked across chunk-cursor aborts",
    );
    check(
        chunked_snap.counter("vllm_fault_prefill_stalls_total") == Some(REPLICAS as u64),
        "chunked: vllm_fault_prefill_stalls_total missing or wrong",
    );

    // Seeded soak: determinism and zero-loss for every seed.
    for (seed, a, b) in &soak {
        check(
            a == b,
            &format!("seed {seed}: reports differ between identical runs"),
        );
        check(a.lost == 0, &format!("seed {seed}: requests were lost"));
        check(
            a.duplicates == 0,
            &format!("seed {seed}: duplicate completions"),
        );
        check(
            a.completed + a.rejected == a.num_requests,
            &format!("seed {seed}: some requests neither completed nor rejected"),
        );
        check(
            a.leaked_blocks == 0,
            &format!("seed {seed}: KV blocks leaked"),
        );
    }

    if failures > 0 {
        eprintln!("{failures} fault-injection check(s) failed");
        std::process::exit(1);
    }
    println!("fault-injection CI gate passed");
}
