//! Fig. 14: parallel generation (top row) and beam search (bottom row)
//! with OPT-13B on the Alpaca dataset — normalized latency vs request rate
//! for vLLM and the Orca variants, for 2/4/6 parallel samples and beam
//! widths 2/4/6.
//!
//! Pass `--quick` for a reduced sweep.

use vllm_bench::{print_latency_series, sustained_rate, sweep, SystemKind};
use vllm_sim::ServerConfig;
use vllm_workloads::Dataset;

const THRESHOLD: f64 = 1.0;

fn panel(label: &str, n_seqs: usize, is_beam: bool, rates: &[f64], seconds: f64) {
    let mode = if is_beam {
        "beam search"
    } else {
        "parallel sampling"
    };
    println!("--- {label}: {mode}, n = {n_seqs} ---");
    let server = ServerConfig::opt_13b_1gpu();
    let dataset = Dataset::alpaca();
    let mut sustained = Vec::new();
    for kind in SystemKind::orca_comparison_set() {
        let pts = sweep(kind, server, 16, &dataset, rates, seconds, n_seqs, is_beam);
        print_latency_series(&pts);
        sustained.push((
            pts[0].report.system.clone(),
            sustained_rate(&pts, THRESHOLD),
        ));
    }
    let vllm_rate = sustained[0].1;
    println!("  sustained rate @ <= {THRESHOLD}s/token:");
    for (name, rate) in &sustained {
        println!(
            "    {name:<22} {rate:>6.2} req/s   (vLLM advantage {:>5.2}x)",
            if *rate > 0.0 {
                vllm_rate / rate
            } else {
                f64::INFINITY
            }
        );
    }
    println!();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seconds = if quick { 120.0 } else { 300.0 };
    vllm_bench::print_figure_header(
        "Fig. 14",
        "Parallel sampling and beam search, OPT-13B + Alpaca (paper: vLLM's advantage over Orca(Oracle) grows from 1.3x basic to 2.3x at beam width 6)",
    );
    let parallel_rates: Vec<f64> = if quick {
        vec![4.0, 12.0, 20.0]
    } else {
        vec![4.0, 8.0, 12.0, 16.0, 20.0, 24.0]
    };
    let beam_rates: Vec<f64> = if quick {
        vec![2.0, 6.0, 10.0]
    } else {
        vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
    };
    for (label, n) in [("(a)", 2), ("(b)", 4), ("(c)", 6)] {
        panel(label, n, false, &parallel_rates, seconds);
    }
    for (label, n) in [("(d)", 2), ("(e)", 4), ("(f)", 6)] {
        panel(label, n, true, &beam_rates, seconds);
    }
    println!(
        "expected shape: vLLM's advantage grows with n, and is larger for \
         beam search than parallel sampling (more sharing to exploit)."
    );
}
