//! Fig. 2: average percentage of KV cache memory by category (token
//! states, reserved, internal fragmentation, external fragmentation)
//! during the §6.2 experiment.
//!
//! Paper reference points: Orca variants store token states in only
//! 20.4%–38.2% of their allocated KV memory; vLLM reaches ~96%.

use vllm_bench::{sweep, SystemKind, DEFAULT_TRACE_SECONDS};
use vllm_sim::ServerConfig;
use vllm_workloads::Dataset;

fn main() {
    vllm_bench::print_figure_header(
        "Fig. 2",
        "Average % of allocated KV memory per category, OPT-13B, ShareGPT @ 1.8 req/s",
    );
    let server = ServerConfig::opt_13b_1gpu();
    let dataset = Dataset::sharegpt();
    println!(
        "  {:<20} {:>12} {:>12} {:>12} {:>12}",
        "system", "token-states", "reserved", "internal", "external"
    );
    for kind in SystemKind::fig12_set() {
        let pts = sweep(
            kind,
            server,
            16,
            &dataset,
            &[1.8],
            DEFAULT_TRACE_SECONDS,
            1,
            false,
        );
        let m = &pts[0].report.mem;
        // Normalize by allocated memory (the paper's bars decompose each
        // system's own KV allocation).
        let allocated = (m.used + m.reserved + m.internal + m.external).max(1e-12);
        println!(
            "  {:<20} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            pts[0].report.system,
            m.used / allocated * 100.0,
            m.reserved / allocated * 100.0,
            m.internal / allocated * 100.0,
            m.external / allocated * 100.0,
        );
    }
    println!(
        "\npaper: Orca(Max) 20.4% ... Orca(Oracle) 38.2% token states; vLLM ~96% \
         (waste bounded to the last block of each sequence)."
    );
}
