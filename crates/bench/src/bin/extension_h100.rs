//! Memory-wall projection (§3): "the GPU's computation speed grows faster
//! than the memory capacity ... we believe the memory will become an
//! increasingly significant bottleneck."
//!
//! Serve OPT-66B with the same total memory (160 GB) on 4×A100-40GB vs
//! 2×H100-80GB (~2.3× the compute). If the claim holds, the faster compute
//! widens vLLM's advantage: the baselines saturate on memory earlier
//! relative to the hardware's compute capability, so efficient KV memory
//! management buys proportionally more throughput.

use vllm_bench::{sustained_rate, sweep, SystemKind};
use vllm_sim::ServerConfig;
use vllm_workloads::Dataset;

const THRESHOLD: f64 = 1.0;

fn panel(label: &str, server: ServerConfig, rates: &[f64]) -> (f64, f64) {
    println!(
        "--- {label}: {} on {}x{} ({:.0} TFLOP/s total, {:.0} GB total) ---",
        server.model.name,
        server.gpu.num_gpus,
        server.gpu.name,
        server.gpu.flops * server.gpu.num_gpus as f64 / 1e12,
        server.total_mem_bytes() / 1e9,
    );
    let dataset = Dataset::sharegpt();
    let mut sustained = Vec::new();
    for kind in [
        SystemKind::Vllm,
        SystemKind::OrcaOracle,
        SystemKind::OrcaMax,
    ] {
        let pts = sweep(kind, server, 16, &dataset, rates, 300.0, 1, false);
        let s = sustained_rate(&pts, THRESHOLD);
        println!(
            "  {:<20} sustains {:>5.2} req/s @ <= {THRESHOLD} s/token",
            pts[0].report.system, s
        );
        sustained.push(s);
    }
    println!();
    (sustained[0], sustained[1])
}

fn main() {
    vllm_bench::print_figure_header(
        "Extension: memory wall (A100 -> H100)",
        "Same 160 GB of KV-relevant memory, ~2.3x the compute: does vLLM's advantage grow?",
    );
    let rates: Vec<f64> = (1..=14).map(|i| i as f64 * 0.15).collect();
    let (v_a100, o_a100) = panel("(a)", ServerConfig::opt_66b_4gpu(), &rates);
    let (v_h100, o_h100) = panel("(b)", ServerConfig::opt_66b_2xh100(), &rates);

    let adv_a100 = v_a100 / o_a100.max(1e-9);
    let adv_h100 = v_h100 / o_h100.max(1e-9);
    println!("vLLM advantage over Orca (Oracle): A100 {adv_a100:.2}x -> H100 {adv_h100:.2}x");
    println!(
        "reading: with equal memory, the ~2.3x FLOPS upgrade moves nobody's \
         saturation knee — every system is capacity-bound, so the extra \
         compute is stranded and KV memory efficiency is the only lever on \
         throughput. This is the paper's Section 3 memory-wall projection \
         made concrete: as FLOPS outgrow memory, paged KV management's \
         advantage persists while raw hardware upgrades stop helping."
    );
}
