//! Fig. 19: recomputation vs swapping as the preemption recovery
//! mechanism.
//!
//! (a) Microbenchmark: time to evict + restore a 512-token sequence by
//!     swapping (PCIe, block-size dependent) vs recomputing (one prefill,
//!     block-size independent).
//! (b) End-to-end: OPT-13B + ShareGPT at a rate that forces preemptions,
//!     vLLM with swap vs recompute recovery across block sizes.
//!
//! Paper reference: swapping is dominated by many small transfers at small
//! block sizes; recomputation is flat; for block sizes 16–64 the two are
//! comparable end to end.

use vllm_bench::{sweep, SystemKind};
use vllm_sim::{CostModel, ServerConfig};
use vllm_workloads::Dataset;

fn main() {
    vllm_bench::print_figure_header("Fig. 19", "Recomputation vs swapping (§7.3)");
    let server = ServerConfig::opt_13b_1gpu();
    let block_sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];

    println!("(a) microbenchmark: evict + restore one 512-token sequence");
    println!(
        "  {:<22} {}",
        "block size",
        block_sizes
            .iter()
            .map(|b| format!("{b:>9}"))
            .collect::<String>()
    );
    print!("  {:<22}", "swap out+in (ms)");
    for &bs in &block_sizes {
        let m = CostModel::paged(server, bs);
        print!("{:>9.1}", 2.0 * m.swap_sequence_time(512) * 1e3);
    }
    println!();
    print!("  {:<22}", "recompute (ms)");
    for &bs in &block_sizes {
        let m = CostModel::paged(server, bs);
        print!("{:>9.1}", m.recompute_time(512) * 1e3);
    }
    println!("\n");

    println!("(b) end-to-end: OPT-13B, ShareGPT @ 2.2 req/s (preemption-heavy)");
    println!(
        "  {:<22} {:>10} {:>14} {:>14} {:>12}",
        "recovery", "block", "norm-lat(s)", "preemptions", "swapped-blk"
    );
    for &bs in &[8usize, 16, 32, 64, 128] {
        for (kind, label) in [
            (SystemKind::Vllm, "recompute"),
            (SystemKind::VllmSwap, "swap"),
        ] {
            let pts = sweep(
                kind,
                server,
                bs,
                &Dataset::sharegpt(),
                &[2.2],
                240.0,
                1,
                false,
            );
            let r = &pts[0].report;
            println!(
                "  {:<22} {:>10} {:>14.3} {:>14} {:>12}",
                label, bs, r.mean_normalized_latency, r.preemptions, r.swapped_blocks
            );
        }
    }
    println!(
        "\nexpected shape: swapping's overhead explodes at small block sizes \
         (many small PCIe transfers); recomputation is flat; they are \
         comparable in the 16-64 range."
    );
}
