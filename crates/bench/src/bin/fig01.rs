//! Fig. 1 (right): with the same KV budget, existing systems exhaust
//! memory at a small batch while vLLM's allocation grows smoothly with the
//! actual token count, so it batches more requests and serves more
//! throughput.

use vllm_bench::{sweep, SystemKind, DEFAULT_TRACE_SECONDS};
use vllm_sim::ServerConfig;
use vllm_workloads::Dataset;

fn main() {
    vllm_bench::print_figure_header(
        "Fig. 1 (right)",
        "Memory usage per batched request and resulting throughput, OPT-13B on 1xA100, ShareGPT @ 1.5 req/s",
    );
    let server = ServerConfig::opt_13b_1gpu();
    let dataset = Dataset::sharegpt();
    println!(
        "  {:<20} {:>10} {:>18} {:>16} {:>14}",
        "system", "batched", "KV slots/request", "throughput", "norm-lat(s)"
    );
    for kind in SystemKind::fig12_set() {
        let pts = sweep(
            kind,
            server,
            16,
            &dataset,
            &[1.5],
            DEFAULT_TRACE_SECONDS,
            1,
            false,
        );
        let r = &pts[0].report;
        let allocated_frac = 1.0 - r.mem.free;
        let slots_per_req = if r.avg_running_requests > 0.0 {
            allocated_frac * server.max_kv_slots() as f64 / r.avg_running_requests
        } else {
            0.0
        };
        println!(
            "  {:<20} {:>10.1} {:>18.0} {:>12.2}/s {:>14.3}",
            r.system,
            r.avg_running_requests,
            slots_per_req,
            r.throughput,
            r.mean_normalized_latency
        );
    }
    println!(
        "\nexpected shape: vLLM consumes the fewest KV slots per request \
         (allocation tracks actual tokens), batches the most requests, and \
         keeps latency low at the same offered rate."
    );

    // Fig. 1 right's growth curves: allocated KV fraction over the first
    // two minutes of the trace (existing systems jump to large reservations
    // at admission; vLLM grows smoothly with the generated tokens).
    println!("\nKV memory allocated (% of capacity) over time @ 1.5 req/s:");
    use vllm_core::config::PreemptionMode;
    use vllm_sim::{run_trace_with_timeline, CostModel, VllmSimSystem};
    use vllm_workloads::Trace;
    let cost = CostModel::contiguous(server);
    let trace = Trace::synthesize(&dataset, 1.5, 200, 42);
    let requests = vllm_sim::trace_to_requests(&trace, 1, false);
    let mut curves = Vec::new();
    for kind in [SystemKind::Vllm, SystemKind::OrcaMax] {
        let report = match kind {
            SystemKind::Vllm => {
                let mut sys = VllmSimSystem::new(server, 16, PreemptionMode::Recompute);
                run_trace_with_timeline(&mut sys, &requests, &cost, 1.5, 5.0)
            }
            _ => {
                let mut sys = kind.build(server, 16);
                run_trace_with_timeline(sys.as_mut(), &requests, &cost, 1.5, 5.0)
            }
        };
        curves.push((report.system.clone(), report.timeline));
    }
    print!("  {:<20}", "t(s)");
    for t in (0..=120).step_by(10) {
        print!("{t:>6}");
    }
    println!();
    for (name, timeline) in &curves {
        print!("  {name:<20}");
        for t in (0..=120).step_by(10) {
            let alloc = timeline
                .iter()
                .rfind(|p| p.t <= t as f64)
                .map_or(0.0, |p| p.allocated_frac);
            print!("{:>5.0}%", alloc * 100.0);
        }
        println!();
    }
    println!(
        "  (Orca(Max) saturates its allocation almost immediately — whole \
         2048-slot reservations per admitted request — while vLLM's \
         allocation tracks actual token counts.)"
    );
}
