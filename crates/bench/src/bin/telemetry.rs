//! Telemetry artifact harness.
//!
//! Runs a ShareGPT-style trace through the vLLM simulator with the serving
//! engine's telemetry attached, then writes the end-of-run metrics snapshot
//! to `results/telemetry.json` (one-line JSON) and `results/telemetry.prom`
//! (Prometheus text exposition).
//!
//! With `--ci` the harness runs a short two-phase workload instead, checks
//! the snapshot for internal consistency (non-empty, counters monotone
//! across phases, block-pool gauges within bounds, histogram bucket sums,
//! lossless text/JSON round-trips), writes its artifacts under
//! `target/ci-telemetry/`, and exits non-zero on any failure.

use vllm_bench::write_metrics_artifacts;
use vllm_core::config::PreemptionMode;
use vllm_core::telemetry::{MetricValue, MetricsSnapshot};
use vllm_sim::{run_trace_instrumented, trace_to_requests, CostModel, ServerConfig, VllmSimSystem};
use vllm_workloads::{Dataset, Trace};

/// Gauges that must land in `[0, 1]` (fractions/ratios).
const UNIT_INTERVAL_GAUGES: &[&str] = &[
    "vllm_block_manager_fragmentation_ratio",
    "vllm_sim_mem_used_fraction",
    "vllm_sim_mem_allocated_fraction",
];

/// Metrics the acceptance criteria require in the snapshot.
const REQUIRED_METRICS: &[&str] = &[
    "vllm_block_manager_gpu_blocks_free",
    "vllm_block_manager_gpu_blocks_used",
    "vllm_block_manager_gpu_blocks_total",
    "vllm_block_manager_fragmentation_ratio",
    "vllm_scheduler_preemptions_total",
    "vllm_scheduler_swap_preemptions_total",
    "vllm_block_manager_swapped_out_blocks_total",
    "vllm_step_schedule_seconds",
    "vllm_step_execute_seconds",
    "vllm_request_ttft_seconds",
    "vllm_request_normalized_latency_seconds",
    "vllm_sim_normalized_latency_seconds",
    "vllm_executor_forward_seconds",
];

fn small_server() -> ServerConfig {
    let mut cfg = ServerConfig::opt_13b_1gpu();
    cfg.gpu.mem_bytes_per_gpu = 30e9; // ~4.6K KV slots: small enough to preempt.
    cfg
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");
    if ci {
        run_ci();
    } else {
        run_artifacts();
    }
}

/// Default mode: one loaded ShareGPT trace, artifacts under `results/`.
fn run_artifacts() {
    let server = small_server();
    let cost = CostModel::contiguous(server);
    let trace = Trace::synthesize(&Dataset::sharegpt(), 1.0, 120, 42);
    let requests = trace_to_requests(&trace, 1, false);

    let mut system = VllmSimSystem::new(server, 16, PreemptionMode::Swap);
    let telemetry = system.engine().telemetry().clone();
    let report = run_trace_instrumented(
        &mut system,
        &requests,
        &cost,
        1.0,
        f64::INFINITY,
        Some(&telemetry),
    );
    let snapshot = system.engine().metrics_snapshot();
    let (json_path, prom_path) =
        write_metrics_artifacts(&snapshot, "results", "telemetry").expect("write artifacts");

    println!(
        "telemetry: {} requests finished in {:.1} virtual s; {} metrics registered",
        report.num_finished,
        report.duration,
        snapshot.metrics.len()
    );
    println!("  wrote {}", json_path.display());
    println!("  wrote {}", prom_path.display());
}

/// CI mode: short two-phase run plus consistency assertions.
fn run_ci() {
    let server = small_server();
    let cost = CostModel::contiguous(server);
    let mut system = VllmSimSystem::new(server, 16, PreemptionMode::Swap);
    let telemetry = system.engine().telemetry().clone();

    // Phase 1.
    let trace = Trace::synthesize(&Dataset::alpaca(), 2.0, 40, 42);
    let requests = trace_to_requests(&trace, 1, false);
    let r1 = run_trace_instrumented(
        &mut system,
        &requests,
        &cost,
        2.0,
        f64::INFINITY,
        Some(&telemetry),
    );
    let snap_a = system.engine().metrics_snapshot();

    // Phase 2: more work through the same engine; counters must not regress.
    let trace = Trace::synthesize(&Dataset::alpaca(), 2.0, 20, 7);
    let mut more = trace_to_requests(&trace, 1, false);
    for r in &mut more {
        r.id += 10_000; // Fresh request ids for the shared engine.
    }
    let r2 = run_trace_instrumented(
        &mut system,
        &more,
        &cost,
        2.0,
        f64::INFINITY,
        Some(&telemetry),
    );
    let snap_b = system.engine().metrics_snapshot();

    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("FAIL: {what}");
            failures += 1;
        }
    };

    check(!snap_b.metrics.is_empty(), "snapshot is empty");
    for name in REQUIRED_METRICS {
        check(
            snap_b.get(name).is_some(),
            &format!("missing metric {name}"),
        );
    }

    // Counters are monotone between the two phases.
    for entry in &snap_a.metrics {
        if let MetricValue::Counter(a) = entry.value {
            let b = snap_b.counter(&entry.name).unwrap_or(0);
            check(
                b >= a,
                &format!("counter {} regressed: {a} -> {b}", entry.name),
            );
        }
    }

    // Block-pool gauges stay within the pool bounds.
    let free = snap_b
        .gauge("vllm_block_manager_gpu_blocks_free")
        .unwrap_or(-1.0);
    let used = snap_b
        .gauge("vllm_block_manager_gpu_blocks_used")
        .unwrap_or(-1.0);
    let total = snap_b
        .gauge("vllm_block_manager_gpu_blocks_total")
        .unwrap_or(-1.0);
    check(
        free >= 0.0 && used >= 0.0 && total > 0.0,
        "block gauges missing",
    );
    check(
        (free + used - total).abs() < 1e-9,
        &format!("free ({free}) + used ({used}) != total ({total})"),
    );
    for name in UNIT_INTERVAL_GAUGES {
        let v = snap_b.gauge(name).unwrap_or(-1.0);
        check(
            (0.0..=1.0).contains(&v),
            &format!("{name} = {v} outside [0, 1]"),
        );
    }

    // Histograms are internally consistent (count == sum of bucket counts).
    for entry in &snap_b.metrics {
        if let MetricValue::Histogram(h) = &entry.value {
            check(
                h.is_consistent(),
                &format!("histogram {} inconsistent", entry.name),
            );
        }
    }

    // Work actually flowed and was observed end to end.
    let finished = (r1.num_finished + r2.num_finished) as u64;
    check(finished > 0, "no requests finished");
    check(
        snap_b.counter("vllm_engine_requests_finished_total") == Some(finished),
        "engine finished counter disagrees with driver report",
    );
    check(
        snap_b.counter("vllm_sim_requests_finished_total") == Some(finished),
        "sim finished counter disagrees with driver report",
    );
    check(
        snap_b
            .histogram("vllm_request_e2e_seconds")
            .is_some_and(|h| h.count == finished),
        "e2e latency histogram count != finished requests",
    );

    // Exposition round-trips losslessly through both formats.
    match MetricsSnapshot::from_prometheus_text(&snap_b.to_prometheus_text()) {
        Ok(rt) => check(
            rt == snap_b,
            "text exposition round-trip changed the snapshot",
        ),
        Err(e) => check(false, &format!("text exposition failed to parse: {e}")),
    }
    match MetricsSnapshot::from_json(&snap_b.to_json()) {
        Ok(rt) => check(rt == snap_b, "JSON round-trip changed the snapshot"),
        Err(e) => check(false, &format!("JSON failed to parse: {e}")),
    }

    write_metrics_artifacts(&snap_b, "target/ci-telemetry", "telemetry")
        .expect("write ci artifacts");

    if failures > 0 {
        eprintln!("telemetry CI check: {failures} failure(s)");
        std::process::exit(1);
    }
    println!(
        "telemetry CI check OK: {} metrics, {finished} requests finished",
        snap_b.metrics.len()
    );
}
