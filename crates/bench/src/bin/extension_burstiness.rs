//! Arrival-burstiness sensitivity (extension beyond §6.1): the paper
//! evaluates with Poisson arrivals (CV = 1). Real traffic is burstier.
//! This sweep holds the mean rate fixed and raises the inter-arrival
//! coefficient of variation; the question is whether vLLM's advantage
//! survives flash crowds, where preemption machinery is stressed hardest.

use vllm_bench::SystemKind;
use vllm_sim::{run_trace, trace_to_requests, CostModel, ServerConfig};
use vllm_workloads::{Dataset, Trace};

fn main() {
    vllm_bench::print_figure_header(
        "Extension: arrival burstiness",
        "OPT-13B + ShareGPT at a fixed 1.2 req/s mean rate, inter-arrival CV swept from 1 (Poisson, as in the paper) to 8 (flash crowds)",
    );
    let server = ServerConfig::opt_13b_1gpu();
    let cost = CostModel::contiguous(server);
    let cvs = [1.0, 2.0, 4.0, 8.0];

    println!(
        "  {:<20} {}",
        "CV",
        cvs.iter().map(|c| format!("{c:>12.0}")).collect::<String>()
    );
    for kind in [
        SystemKind::Vllm,
        SystemKind::OrcaOracle,
        SystemKind::OrcaMax,
    ] {
        let mut row = String::new();
        let mut name = String::new();
        for &cv in &cvs {
            let trace = Trace::synthesize_bursty(&Dataset::sharegpt(), 1.2, cv, 480, 42);
            let requests = trace_to_requests(&trace, 1, false);
            let mut sys = kind.build(server, 16);
            let r = run_trace(sys.as_mut(), &requests, &cost, 1.2);
            name = r.system.clone();
            row.push_str(&format!("{:>12.3}", r.mean_normalized_latency));
        }
        println!("  {name:<20} {row}");
    }
    println!(
        "\n(values are mean normalized latency, s/token)\n\
         expected shape: all systems degrade as bursts force queueing, but \
         vLLM degrades most gracefully — preemption (recompute/swap) absorbs \
         bursts that simply overflow the baselines' reservations."
    );
}
