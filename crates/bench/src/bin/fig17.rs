//! Fig. 17: chatbot workload — conversation history + last query truncated
//! to 1024 prompt tokens, up to 1024 output tokens, OPT-13B.
//!
//! Paper reference: vLLM sustains 2x the request rate of all three Orca
//! variants, which behave identically because most prompts saturate the
//! 1024-token limit and the buddy allocator rounds their reservations to
//! the same size.

use vllm_bench::{print_latency_series, sustained_rate, SweepPoint, SystemKind};
use vllm_sim::{run_trace, trace_to_requests, CostModel, ServerConfig};
use vllm_workloads::synthesize_chat_trace;

const THRESHOLD: f64 = 1.0;
const SECONDS: f64 = 300.0;

fn main() {
    vllm_bench::print_figure_header(
        "Fig. 17",
        "Chatbot workload, OPT-13B (paper: vLLM sustains 2x all Orca variants; the Orca variants collapse together)",
    );
    let server = ServerConfig::opt_13b_1gpu();
    let cost = CostModel::contiguous(server);
    let rates = [0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5];

    let mut sustained = Vec::new();
    for kind in SystemKind::orca_comparison_set() {
        let pts: Vec<SweepPoint> = rates
            .iter()
            .map(|&rate| {
                let trace = synthesize_chat_trace(rate, (rate * SECONDS) as usize, 42);
                let requests = trace_to_requests(&trace, 1, false);
                let mut system = kind.build(server, 16);
                let report = run_trace(system.as_mut(), &requests, &cost, rate);
                SweepPoint { rate, report }
            })
            .collect();
        print_latency_series(&pts);
        sustained.push((
            pts[0].report.system.clone(),
            sustained_rate(&pts, THRESHOLD),
        ));
    }
    println!("\nsustained rate @ <= {THRESHOLD}s/token:");
    let vllm_rate = sustained[0].1;
    for (name, rate) in &sustained {
        println!(
            "  {name:<22} {rate:>6.2} req/s (vLLM advantage {:>5.2}x)",
            if *rate > 0.0 {
                vllm_rate / rate
            } else {
                f64::INFINITY
            }
        );
    }
    println!(
        "\nexpected shape: the three Orca variants nearly coincide (long \
         prompts make every reservation ~2048 slots); vLLM handles the long \
         prompts without fragmentation and sustains ~2x their rate."
    );
}
