//! Fig. 11: input and output length distributions of the synthesized
//! ShareGPT and Alpaca workloads (histograms + summary statistics).

use rand::rngs::StdRng;
use rand::SeedableRng;
use vllm_workloads::Dataset;

const N: usize = 20_000;
const BUCKETS: &[usize] = &[0, 32, 64, 128, 256, 512, 1024, 2048];

fn summarize(name: &str, xs: &[usize]) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<usize>() as f64 / n;
    let var = xs
        .iter()
        .map(|&x| (x as f64 - mean) * (x as f64 - mean))
        .sum::<f64>()
        / n;
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    println!(
        "  {name:<22} mean {:>7.1}  std {:>7.1}  p50 {:>5}  p90 {:>5}  max {:>5}",
        mean,
        var.sqrt(),
        sorted[xs.len() / 2],
        sorted[xs.len() * 9 / 10],
        sorted[xs.len() - 1]
    );
    print!("  {:<22} ", "histogram");
    for w in BUCKETS.windows(2) {
        let count = xs.iter().filter(|&&x| x > w[0] && x <= w[1]).count();
        print!(
            "{:>4}-{:<4}:{:>5.1}% ",
            w[0],
            w[1],
            count as f64 / n * 100.0
        );
    }
    println!();
}

fn main() {
    vllm_bench::print_figure_header(
        "Fig. 11",
        "Input/output length distributions of the synthesized ShareGPT and Alpaca datasets",
    );
    for dataset in [Dataset::sharegpt(), Dataset::alpaca()] {
        let mut rng = StdRng::seed_from_u64(11);
        let pairs: Vec<(usize, usize)> = (0..N).map(|_| dataset.sample(&mut rng)).collect();
        let inputs: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let outputs: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        println!("{}:", dataset.name);
        summarize("input length", &inputs);
        summarize("output length", &outputs);
        println!();
    }
    println!(
        "paper (Section 6.1): ShareGPT has 8.4x longer inputs and 5.8x longer \
         outputs than Alpaca, with higher variance; totals capped at 2048."
    );
}
