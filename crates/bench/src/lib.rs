//! # vllm-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (§6–§7). Each `src/bin/figNN.rs` binary prints the same
//! rows/series the paper reports; `benches/` holds Criterion
//! microbenchmarks over the real CPU kernels.
//!
//! Shared helpers: system factories over a Table 1 server configuration,
//! request-rate sweeps, and plain-text table printing.

#![warn(missing_docs)]

use vllm_baselines::{
    BatchSystem, ContiguousSystem, FasterTransformerSystem, OrcaSystem, ReservationPolicy,
    DEFAULT_PAGE_SLOTS,
};
use vllm_core::config::PreemptionMode;
use vllm_sim::{run_trace, trace_to_requests, CostModel, RunReport, ServerConfig, VllmSimSystem};
use vllm_workloads::{Dataset, Trace};

/// Default virtual trace duration per sweep point, seconds. The paper uses
/// 1-hour traces; 600 s is enough for stable means at laptop speed.
pub const DEFAULT_TRACE_SECONDS: f64 = 600.0;

/// Which serving system to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// vLLM with recomputation recovery (the paper's default).
    Vllm,
    /// vLLM with swapping recovery.
    VllmSwap,
    /// vLLM with an elastic block pool (starts at a quarter of the budget,
    /// inflates under pressure, deflates and compacts when idle).
    VllmElastic,
    /// vAttention-style contiguous virtual allocation (reserve-max virtual,
    /// commit-on-demand physical pages, no sharing).
    Contiguous,
    /// Orca with oracle reservations.
    OrcaOracle,
    /// Orca with power-of-two reservations.
    OrcaPow2,
    /// Orca with max-length reservations.
    OrcaMax,
    /// FasterTransformer-style request-level batching.
    FasterTransformer,
}

impl SystemKind {
    /// The five systems of Fig. 12.
    #[must_use]
    pub fn fig12_set() -> Vec<Self> {
        vec![
            Self::Vllm,
            Self::OrcaOracle,
            Self::OrcaPow2,
            Self::OrcaMax,
            Self::FasterTransformer,
        ]
    }

    /// The systems of the elastic capacity comparison: fixed-pool paged,
    /// elastic paged, and the contiguous-virtual-allocation baseline, all
    /// at the same memory budget.
    #[must_use]
    pub fn capacity_set() -> Vec<Self> {
        vec![Self::Vllm, Self::VllmElastic, Self::Contiguous]
    }

    /// The systems of Figs. 14/16/17 (FasterTransformer excluded, as in the
    /// paper's multi-sequence workloads).
    #[must_use]
    pub fn orca_comparison_set() -> Vec<Self> {
        vec![Self::Vllm, Self::OrcaOracle, Self::OrcaPow2, Self::OrcaMax]
    }

    /// Instantiates the system for a server configuration.
    #[must_use]
    pub fn build(self, server: ServerConfig, block_size: usize) -> Box<dyn BatchSystem> {
        let slots = server.max_kv_slots();
        let max_len = server.model.max_len;
        match self {
            Self::Vllm => Box::new(VllmSimSystem::new(
                server,
                block_size,
                PreemptionMode::Recompute,
            )),
            Self::VllmSwap => Box::new(
                VllmSimSystem::new(server, block_size, PreemptionMode::Swap)
                    .with_label("vLLM (swap)"),
            ),
            Self::VllmElastic => Box::new(
                VllmSimSystem::new(server, block_size, PreemptionMode::Recompute)
                    .with_elastic(0.25),
            ),
            Self::Contiguous => Box::new(ContiguousSystem::new(
                slots,
                DEFAULT_PAGE_SLOTS,
                max_len,
                256,
            )),
            Self::OrcaOracle => Box::new(OrcaSystem::new(
                ReservationPolicy::Oracle,
                slots,
                max_len,
                256,
            )),
            Self::OrcaPow2 => Box::new(OrcaSystem::new(
                ReservationPolicy::Pow2,
                slots,
                max_len,
                256,
            )),
            Self::OrcaMax => Box::new(OrcaSystem::new(ReservationPolicy::Max, slots, max_len, 256)),
            Self::FasterTransformer => Box::new(FasterTransformerSystem::new(slots, max_len)),
        }
    }
}

/// One point of a rate sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered rate (req/s).
    pub rate: f64,
    /// Aggregated run metrics.
    pub report: RunReport,
}

/// Runs `kind` over `dataset` at each rate for `seconds` of virtual trace,
/// with `n_seqs`/`is_beam` decoding options.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    kind: SystemKind,
    server: ServerConfig,
    block_size: usize,
    dataset: &Dataset,
    rates: &[f64],
    seconds: f64,
    n_seqs: usize,
    is_beam: bool,
) -> Vec<SweepPoint> {
    let cost = CostModel::contiguous(server);
    rates
        .iter()
        .map(|&rate| {
            let trace = Trace::synthesize(dataset, rate, (rate * seconds).ceil() as usize, 42);
            let requests = trace_to_requests(&trace, n_seqs, is_beam);
            let mut system = kind.build(server, block_size);
            let report = run_trace(system.as_mut(), &requests, &cost, rate);
            SweepPoint { rate, report }
        })
        .collect()
}

/// Runs one system over an explicit request list.
#[must_use]
pub fn run_one(
    kind: SystemKind,
    server: ServerConfig,
    block_size: usize,
    requests: &[vllm_baselines::SimRequest],
    rate: f64,
) -> RunReport {
    let cost = CostModel::contiguous(server);
    let mut system = kind.build(server, block_size);
    run_trace(system.as_mut(), requests, &cost, rate)
}

/// Prints a header line for a figure harness.
pub fn print_figure_header(figure: &str, description: &str) {
    println!("=== {figure} ===");
    println!("{description}");
    println!();
}

/// Prints a normalized-latency-vs-rate series in the Fig. 12/14/16/17
/// layout.
pub fn print_latency_series(points: &[SweepPoint]) {
    println!(
        "  {:<22} {:>8} {:>14} {:>10} {:>10} {:>10}",
        "system", "rate", "norm-lat(s)", "p90(s)", "batched", "finished"
    );
    for p in points {
        println!(
            "  {:<22} {:>8.2} {:>14.4} {:>10.3} {:>10.1} {:>10}",
            p.report.system,
            p.rate,
            p.report.mean_normalized_latency,
            p.report.p90_normalized_latency,
            p.report.avg_running_requests,
            p.report.num_finished
        );
    }
}

/// Writes a metrics snapshot under `dir` as `<stem>.json` (one-line JSON
/// document) and `<stem>.prom` (Prometheus text exposition), creating the
/// directory as needed. Returns the two paths written.
///
/// # Errors
///
/// Propagates any I/O error from creating the directory or writing the
/// files.
pub fn write_metrics_artifacts(
    snapshot: &vllm_core::telemetry::MetricsSnapshot,
    dir: impl AsRef<std::path::Path>,
    stem: &str,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("{stem}.json"));
    let prom_path = dir.join(format!("{stem}.prom"));
    let mut json = snapshot.to_json();
    json.push('\n');
    std::fs::write(&json_path, json)?;
    std::fs::write(&prom_path, snapshot.to_prometheus_text())?;
    Ok((json_path, prom_path))
}

/// The highest offered rate whose mean normalized latency stays under the
/// threshold (the paper's "sustained request rate at similar latency").
#[must_use]
pub fn sustained_rate(points: &[SweepPoint], latency_threshold: f64) -> f64 {
    points
        .iter()
        .filter(|p| p.report.mean_normalized_latency <= latency_threshold)
        .map(|p| p.rate)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_server() -> ServerConfig {
        let mut cfg = ServerConfig::opt_13b_1gpu();
        cfg.gpu.mem_bytes_per_gpu = 30e9;
        cfg
    }

    #[test]
    fn sweep_produces_points() {
        let pts = sweep(
            SystemKind::Vllm,
            tiny_server(),
            16,
            &Dataset::alpaca(),
            &[1.0, 4.0],
            20.0,
            1,
            false,
        );
        assert_eq!(pts.len(), 2);
        assert!(pts[0].report.num_finished > 0);
    }

    #[test]
    fn sustained_rate_picks_threshold() {
        let pts = sweep(
            SystemKind::Vllm,
            tiny_server(),
            16,
            &Dataset::alpaca(),
            &[1.0, 2.0],
            15.0,
            1,
            false,
        );
        let s = sustained_rate(&pts, 1.0);
        assert!(s >= 1.0);
    }

    #[test]
    fn all_kinds_build() {
        for kind in SystemKind::fig12_set()
            .into_iter()
            .chain(SystemKind::capacity_set())
        {
            let sys = kind.build(tiny_server(), 16);
            assert!(!sys.name().is_empty());
        }
    }
}
