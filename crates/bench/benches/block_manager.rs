//! Criterion microbenchmark of the block-manager hot paths: prompt
//! allocation, per-step slot appends, forks, and swap round-trips — the
//! operations on the scheduler's critical path every iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use vllm_core::{
    BlockSpaceManager, CacheConfig, SamplingParams, Sequence, SequenceGroup, SequenceStatus,
};

fn group_with_prompt(id: u64, prompt_len: usize, block_size: usize) -> SequenceGroup {
    let seq = Sequence::new(id, vec![1; prompt_len], block_size);
    SequenceGroup::new(
        format!("r{id}"),
        seq,
        SamplingParams::greedy(64).with_ignore_eos(),
        0.0,
    )
}

fn bench_allocate_free(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_manager");
    for &prompt_len in &[64usize, 512, 2048] {
        g.bench_with_input(
            BenchmarkId::new("allocate_free", prompt_len),
            &prompt_len,
            |b, &prompt_len| {
                let cfg = CacheConfig::new(16, 4096, 0).unwrap();
                let mut m = BlockSpaceManager::new(&cfg);
                let group = group_with_prompt(0, prompt_len, 16);
                b.iter(|| {
                    m.allocate(black_box(&group)).unwrap();
                    m.free(0).unwrap();
                });
            },
        );
    }

    g.bench_function("append_slot_1k_tokens", |b| {
        let cfg = CacheConfig::new(16, 4096, 0).unwrap();
        b.iter(|| {
            let mut m = BlockSpaceManager::new(&cfg);
            let mut group = group_with_prompt(0, 8, 16);
            m.allocate(&group).unwrap();
            for t in 0..1000u32 {
                group.get_mut(0).unwrap().data.append_token(t);
                let seq = group.get(0).unwrap();
                black_box(m.append_slot(seq).unwrap());
            }
            m.free(0).unwrap();
        });
    });

    g.bench_function("fork_cow_split", |b| {
        let cfg = CacheConfig::new(16, 4096, 0).unwrap();
        b.iter(|| {
            let mut m = BlockSpaceManager::new(&cfg);
            let mut group = group_with_prompt(0, 100, 16);
            m.allocate(&group).unwrap();
            let child = group.get(0).unwrap().fork(1);
            group.add(child);
            m.fork(0, 1).unwrap();
            group.get_mut(1).unwrap().data.append_token(9);
            black_box(m.append_slot(group.get(1).unwrap()).unwrap());
            m.free(0).unwrap();
            m.free(1).unwrap();
        });
    });

    g.bench_function("swap_out_in_32_blocks", |b| {
        let cfg = CacheConfig::new(16, 4096, 4096).unwrap();
        b.iter(|| {
            let mut m = BlockSpaceManager::new(&cfg);
            let mut group = group_with_prompt(0, 512, 16);
            m.allocate(&group).unwrap();
            group.set_status_all(SequenceStatus::Running);
            black_box(m.swap_out(&group).unwrap());
            group.set_status_all(SequenceStatus::Swapped);
            black_box(m.swap_in(&group).unwrap());
            m.free(0).unwrap();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_allocate_free);
criterion_main!(benches);
