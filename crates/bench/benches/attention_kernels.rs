//! Criterion microbenchmark backing Fig. 18a: the paged decode-attention
//! kernel vs the contiguous reference, across context lengths and block
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use vllm_model::{contiguous_attention_decode, paged_attention_decode, KvPool};

const N_HEADS: usize = 8;
const HEAD_DIM: usize = 64;
const HIDDEN: usize = N_HEADS * HEAD_DIM;

fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 / 1000.0) - 1.0
        })
        .collect()
}

fn build_pool(k: &[f32], v: &[f32], ctx: usize, block_size: usize) -> (KvPool, Vec<usize>) {
    let n_blocks = ctx.div_ceil(block_size);
    let mut pool = KvPool::new(1, n_blocks + 1, block_size, HIDDEN);
    let table: Vec<usize> = (0..n_blocks).map(|j| n_blocks - j).collect();
    for t in 0..ctx {
        pool.write(
            0,
            table[t / block_size],
            t % block_size,
            &k[t * HIDDEN..(t + 1) * HIDDEN],
            &v[t * HIDDEN..(t + 1) * HIDDEN],
        );
    }
    (pool, table)
}

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_attention");
    for &ctx in &[128usize, 512, 1024] {
        let q = fill(1, HIDDEN);
        let k = fill(2, ctx * HIDDEN);
        let v = fill(3, ctx * HIDDEN);
        let mut out = vec![0.0f32; HIDDEN];

        group.bench_with_input(BenchmarkId::new("contiguous", ctx), &ctx, |b, &ctx| {
            b.iter(|| {
                contiguous_attention_decode(
                    black_box(&q),
                    black_box(&k),
                    black_box(&v),
                    ctx,
                    N_HEADS,
                    HEAD_DIM,
                    &mut out,
                );
            });
        });
        for &bs in &[8usize, 16, 32] {
            let (pool, table) = build_pool(&k, &v, ctx, bs);
            group.bench_with_input(
                BenchmarkId::new(format!("paged_bs{bs}"), ctx),
                &ctx,
                |b, &ctx| {
                    b.iter(|| {
                        paged_attention_decode(
                            black_box(&q),
                            black_box(&pool),
                            0,
                            black_box(&table),
                            ctx,
                            N_HEADS,
                            HEAD_DIM,
                            &mut out,
                        );
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
