//! Criterion microbenchmark of the "fused block copy" path (§5.1): one
//! batched pass over many pending copy-on-write copies vs issuing them as
//! separate operations, on the real KV storage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use vllm_core::block_manager::BlockCopy;
use vllm_core::executor::CacheOps;
use vllm_model::KvCache;

const LAYERS: usize = 8;
const HIDDEN: usize = 512;
const BLOCK_SIZE: usize = 16;

fn cache_with_blocks(n: usize) -> KvCache {
    KvCache::new(LAYERS, n, n, BLOCK_SIZE, HIDDEN)
}

fn copies(n: usize) -> Vec<BlockCopy> {
    (0..n).map(|i| BlockCopy { src: i, dst: i + n }).collect()
}

fn bench_copies(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_copy");
    for &n in &[4usize, 16, 64] {
        // Batched: one `apply` over the whole pending list (the fused path).
        g.bench_with_input(BenchmarkId::new("fused_batch", n), &n, |b, &n| {
            let mut cache = cache_with_blocks(2 * n);
            let ops = CacheOps {
                copies: copies(n),
                ..Default::default()
            };
            b.iter(|| cache.apply(black_box(&ops)));
        });
        // Unbatched: one `apply` per copy (models per-copy launch overhead).
        g.bench_with_input(BenchmarkId::new("per_copy", n), &n, |b, &n| {
            let mut cache = cache_with_blocks(2 * n);
            let singles: Vec<CacheOps> = copies(n)
                .into_iter()
                .map(|cp| CacheOps {
                    copies: vec![cp],
                    ..Default::default()
                })
                .collect();
            b.iter(|| {
                for ops in &singles {
                    cache.apply(black_box(ops));
                }
            });
        });
        // Swap transfers of the same volume, for scale.
        g.bench_with_input(BenchmarkId::new("swap_out", n), &n, |b, &n| {
            let mut cache = cache_with_blocks(2 * n);
            let ops = CacheOps {
                swap_out: copies(n),
                ..Default::default()
            };
            b.iter(|| cache.apply(black_box(&ops)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_copies);
criterion_main!(benches);
