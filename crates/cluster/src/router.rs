//! Request routing across engine replicas.
//!
//! The router is deliberately pure: [`Router::route`] maps (prompt chunk
//! hashes, per-replica snapshots) to a replica index with no clocks or
//! randomness, so the threaded frontend and the discrete-event simulator
//! make byte-identical decisions and runs replay deterministically.
//!
//! Policies:
//!
//! * [`RoutePolicy::RoundRobin`] — rotate through replicas.
//! * [`RoutePolicy::JoinShortestQueue`] — pick the replica with the fewest
//!   *outstanding tokens* (uncomputed prefill plus remaining decode budget),
//!   so one long prompt weighs more than many short ones.
//! * [`RoutePolicy::PrefixAffinity`] — prefer the replica whose prefix pool
//!   already covers the prompt's leading block-aligned chunks (longest
//!   coverage wins, outstanding tokens break ties); fall back to
//!   join-shortest-queue when no replica covers any chunk. This extends the
//!   paper's §4.4 block sharing across the fleet: a hit skips the shared
//!   prefill entirely on the chosen replica.
//!
//! Health and failover: a replica whose waiting queue exceeds
//! [`RouterConfig::max_queue_depth`] is marked unhealthy and receives no
//! traffic until its queue falls to half the bound (hysteresis, so a replica
//! hovering at the bound does not flap). When the policy's first choice is
//! unhealthy, the request fails over to the shortest healthy queue; if every
//! replica is unhealthy the policy choice stands (degraded, but requests are
//! never dropped).
//!
//! Replica loss: a replica reported dead via [`Router::mark_dead`] is
//! excluded from every policy (including prefix affinity — coverage on a
//! dead replica is worthless) until [`Router::mark_alive`] restores it after
//! a restart. If *every* replica is dead the policy choice stands, matching
//! the all-unhealthy degraded mode. Retries of in-flight requests re-routed
//! off a dead replica are counted via [`Router::record_retry`] and exported
//! as `vllm_cluster_retries_total`.

//! Roles: under disaggregated serving ([`crate::config::ReplicaRole`]) new
//! requests only route to prefill-capable replicas, and
//! [`Router::route_decode`] picks the decode-capable replica that receives
//! the KV handoff. If every replica of the required role is dead, any alive
//! replica may absorb the traffic (degraded beats dropped), mirroring the
//! all-dead fallback. A unified fleet (the default) behaves exactly as
//! before roles existed.

use crate::config::ReplicaRole;
use vllm_core::telemetry::{Counter, Gauge, Telemetry};
use vllm_core::EngineLoad;

/// A routing policy name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Rotate through replicas in index order.
    RoundRobin,
    /// Fewest outstanding tokens first.
    JoinShortestQueue,
    /// Longest resident prefix coverage first, JSQ fallback.
    PrefixAffinity,
}

impl RoutePolicy {
    /// The canonical CLI/report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::RoundRobin => "round-robin",
            Self::JoinShortestQueue => "jsq",
            Self::PrefixAffinity => "prefix-affinity",
        }
    }
}

impl std::fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for RoutePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" | "rr" => Ok(Self::RoundRobin),
            "jsq" | "shortest-queue" => Ok(Self::JoinShortestQueue),
            "prefix-affinity" | "affinity" => Ok(Self::PrefixAffinity),
            other => Err(format!(
                "unknown policy {other:?} (expected round-robin | jsq | prefix-affinity)"
            )),
        }
    }
}

/// Router configuration.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// The routing policy.
    pub policy: RoutePolicy,
    /// A replica whose waiting queue exceeds this is unhealthy and receives
    /// no traffic until the queue drains to half the bound.
    pub max_queue_depth: usize,
}

impl RouterConfig {
    /// A configuration with the default queue bound.
    #[must_use]
    pub fn new(policy: RoutePolicy) -> Self {
        Self {
            policy,
            max_queue_depth: 256,
        }
    }

    /// Overrides the failover queue bound.
    #[must_use]
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }
}

/// What the router sees of one replica at decision time.
#[derive(Debug, Clone, Default)]
pub struct ReplicaSnapshot {
    /// Queue/memory/latency load.
    pub load: EngineLoad,
    /// Sorted chunk hashes of the computed prefixes resident in the
    /// replica's pool (see `vllm_core::prefix::PrefixPool::coverage_hashes`).
    pub coverage: std::sync::Arc<Vec<u64>>,
}

/// The outcome of one routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Chosen replica index.
    pub replica: usize,
    /// Leading prompt chunks whose KV cache is resident on the chosen
    /// replica (> 0 means the request reuses cached prefix state).
    pub covered_chunks: usize,
    /// Whether prefix affinity (not the fallback) made the choice.
    pub affinity_hit: bool,
    /// Whether the policy's first choice was unhealthy and the request was
    /// redirected to a healthy replica.
    pub failover: bool,
}

/// Plain-counter mirror of the router's telemetry (report writers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests routed, per replica index.
    pub routed: Vec<u64>,
    /// Requests redirected away from an unhealthy first choice.
    pub failovers: u64,
    /// Requests placed by prefix affinity.
    pub affinity_hits: u64,
    /// Requests whose chosen replica already held at least one leading
    /// prompt chunk (counted under every policy, so hit rates compare).
    pub prefix_cache_hits: u64,
    /// Requests re-routed after a retryable failure (replica death,
    /// backpressure rejection, transient engine error).
    pub retries: u64,
    /// KV handoffs routed to each replica by [`Router::route_decode`]
    /// (disaggregated fleets only; tracked apart from `routed` so a
    /// migrated request is not double-counted).
    pub decode_routed: Vec<u64>,
}

/// Cached telemetry handles for the router.
#[derive(Debug)]
struct RouterMetrics {
    routed_total: Counter,
    per_replica: Vec<Counter>,
    failovers: Counter,
    affinity_hits: Counter,
    cache_hits: Counter,
    retries: Counter,
    replicas: Gauge,
    dead_replicas: Gauge,
}

/// Routes requests across a fixed pool of replicas.
#[derive(Debug)]
pub struct Router {
    cfg: RouterConfig,
    num_replicas: usize,
    rr_next: usize,
    roles: Vec<ReplicaRole>,
    unhealthy: Vec<bool>,
    dead: Vec<bool>,
    stats: RouterStats,
    metrics: Option<RouterMetrics>,
}

/// Number of leading prompt chunks resident in `coverage` (chunk hashes are
/// cumulative, so coverage stops at the first miss).
fn covered_chunks(prompt_hashes: &[u64], coverage: &[u64]) -> usize {
    prompt_hashes
        .iter()
        .take_while(|h| coverage.binary_search(h).is_ok())
        .count()
}

impl Router {
    /// Creates a router over `num_replicas` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `num_replicas` is zero.
    #[must_use]
    pub fn new(cfg: RouterConfig, num_replicas: usize) -> Self {
        assert!(num_replicas > 0, "router needs at least one replica");
        Self {
            cfg,
            num_replicas,
            rr_next: 0,
            roles: vec![ReplicaRole::Unified; num_replicas],
            unhealthy: vec![false; num_replicas],
            dead: vec![false; num_replicas],
            stats: RouterStats {
                routed: vec![0; num_replicas],
                decode_routed: vec![0; num_replicas],
                ..RouterStats::default()
            },
            metrics: None,
        }
    }

    /// Assigns per-replica roles (disaggregated serving). A fresh router is
    /// all-[`ReplicaRole::Unified`], which routes exactly as before roles
    /// existed.
    ///
    /// # Panics
    ///
    /// Panics if `roles.len()` differs from the router's replica count.
    pub fn set_roles(&mut self, roles: Vec<ReplicaRole>) {
        assert_eq!(roles.len(), self.num_replicas, "one role per replica");
        self.roles = roles;
    }

    /// The per-replica roles.
    #[must_use]
    pub fn roles(&self) -> &[ReplicaRole] {
        &self.roles
    }

    /// Registers the `vllm_cluster_*` instruments on `telemetry` and mirrors
    /// every subsequent decision into them.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let r = telemetry.registry();
        let per_replica = (0..self.num_replicas)
            .map(|i| {
                r.counter(
                    &format!("vllm_cluster_replica_routed_total{{replica=\"{i}\"}}"),
                    "Requests routed to this replica.",
                )
            })
            .collect();
        let metrics = RouterMetrics {
            routed_total: r.counter(
                "vllm_cluster_requests_routed_total",
                "Requests routed by the cluster router.",
            ),
            per_replica,
            failovers: r.counter(
                "vllm_cluster_failovers_total",
                "Requests redirected away from an unhealthy replica.",
            ),
            affinity_hits: r.counter(
                "vllm_cluster_affinity_hits_total",
                "Requests placed by prefix affinity (not the JSQ fallback).",
            ),
            cache_hits: r.counter(
                "vllm_cluster_prefix_cache_hits_total",
                "Requests whose chosen replica already held leading prompt chunks.",
            ),
            retries: r.counter(
                "vllm_cluster_retries_total",
                "Requests re-routed after a retryable failure.",
            ),
            replicas: r.gauge("vllm_cluster_replicas", "Replicas behind the router."),
            dead_replicas: r.gauge(
                "vllm_cluster_dead_replicas",
                "Replicas currently marked dead.",
            ),
        };
        metrics.replicas.set(self.num_replicas as f64);
        metrics
            .dead_replicas
            .set(self.dead.iter().filter(|d| **d).count() as f64);
        self.metrics = Some(metrics);
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Plain-counter mirror of the routing telemetry.
    #[must_use]
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Current health view (`true` = receiving traffic).
    #[must_use]
    pub fn is_healthy(&self, replica: usize) -> bool {
        !self.unhealthy[replica]
    }

    /// Whether the replica is alive (not reported dead).
    #[must_use]
    pub fn is_alive(&self, replica: usize) -> bool {
        !self.dead[replica]
    }

    /// Number of replicas not currently marked dead.
    #[must_use]
    pub fn num_alive(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }

    /// Reports a replica dead: it receives no traffic until
    /// [`mark_alive`](Self::mark_alive) restores it.
    pub fn mark_dead(&mut self, replica: usize) {
        self.dead[replica] = true;
        if let Some(m) = &self.metrics {
            m.dead_replicas
                .set(self.dead.iter().filter(|d| **d).count() as f64);
        }
    }

    /// Restores a replica (after restart-with-drain) to the routable set.
    pub fn mark_alive(&mut self, replica: usize) {
        self.dead[replica] = false;
        if let Some(m) = &self.metrics {
            m.dead_replicas
                .set(self.dead.iter().filter(|d| **d).count() as f64);
        }
    }

    /// Counts one retry: an in-flight request re-routed after a retryable
    /// failure (replica death, backpressure rejection, transient error).
    pub fn record_retry(&mut self) {
        self.stats.retries += 1;
        if let Some(m) = &self.metrics {
            m.retries.inc();
        }
    }

    /// Routes one request. `prompt_hashes` are the prompt's cumulative
    /// block-chunk hashes (`vllm_core::chunk_hashes`); `snaps` must have one
    /// entry per replica, in index order.
    ///
    /// # Panics
    ///
    /// Panics if `snaps.len()` differs from the router's replica count.
    pub fn route(&mut self, prompt_hashes: &[u64], snaps: &[ReplicaSnapshot]) -> RouteDecision {
        assert_eq!(snaps.len(), self.num_replicas, "one snapshot per replica");
        self.update_health(snaps);

        // Dead replicas are excluded everywhere — unless every replica is
        // dead, in which case the policy choice stands (requests are never
        // dropped at the router; the submission path reports the failure).
        // New requests prefer prefill-capable replicas; if none is alive,
        // any alive replica absorbs them (degraded beats dropped).
        let any_alive = self.dead.iter().any(|d| !d);
        let dead = &self.dead;
        let roles = &self.roles;
        let any_eligible = (0..self.num_replicas).any(|i| !dead[i] && roles[i].takes_prefill());
        let alive = |i: usize| {
            if any_eligible {
                !dead[i] && roles[i].takes_prefill()
            } else {
                !dead[i] || !any_alive
            }
        };

        let mut affinity_hit = false;
        let pick = match self.cfg.policy {
            RoutePolicy::RoundRobin => {
                let mut pick = self.rr_next % self.num_replicas;
                if any_alive {
                    while !alive(pick) {
                        pick = (pick + 1) % self.num_replicas;
                    }
                }
                self.rr_next = (pick + 1) % self.num_replicas;
                pick
            }
            RoutePolicy::JoinShortestQueue => shortest_queue(snaps, alive),
            RoutePolicy::PrefixAffinity => {
                let best = snaps
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| alive(*i))
                    .map(|(_, s)| covered_chunks(prompt_hashes, &s.coverage))
                    .max()
                    .unwrap_or(0);
                if best > 0 {
                    affinity_hit = true;
                    // Longest coverage wins; outstanding tokens break ties.
                    shortest_queue(snaps, |i| {
                        alive(i) && covered_chunks(prompt_hashes, &snaps[i].coverage) == best
                    })
                } else {
                    shortest_queue(snaps, alive)
                }
            }
        };

        let mut failover = false;
        let replica = if self.unhealthy[pick]
            && self
                .unhealthy
                .iter()
                .enumerate()
                .any(|(i, u)| !u && alive(i))
        {
            failover = true;
            shortest_queue(snaps, |i| !self.unhealthy[i] && alive(i))
        } else {
            pick
        };

        let covered = covered_chunks(prompt_hashes, &snaps[replica].coverage);
        let decision = RouteDecision {
            replica,
            covered_chunks: covered,
            affinity_hit: affinity_hit && replica == pick,
            failover,
        };
        self.record(&decision);
        decision
    }

    /// Picks the decode-capable replica that receives a KV handoff (fewest
    /// outstanding tokens wins; ties break to the lowest index). Healthy
    /// replicas are preferred, dead ones excluded; if every decode-capable
    /// replica is dead, any alive replica absorbs the handoff, and an
    /// all-dead fleet degrades to the overall shortest queue — the handoff
    /// is never dropped at the router.
    ///
    /// Counted under `decode_routed`, not `routed`, so a migrated request
    /// is not double-counted in placement stats.
    ///
    /// # Panics
    ///
    /// Panics if `snaps.len()` differs from the router's replica count.
    pub fn route_decode(&mut self, snaps: &[ReplicaSnapshot]) -> usize {
        assert_eq!(snaps.len(), self.num_replicas, "one snapshot per replica");
        self.update_health(snaps);

        let any_alive = self.dead.iter().any(|d| !d);
        let dead = &self.dead;
        let roles = &self.roles;
        let any_eligible = (0..self.num_replicas).any(|i| !dead[i] && roles[i].takes_decode());
        let keep = |i: usize| {
            if any_eligible {
                !dead[i] && roles[i].takes_decode()
            } else {
                !dead[i] || !any_alive
            }
        };
        let any_healthy = (0..self.num_replicas).any(|i| keep(i) && !self.unhealthy[i]);
        let pick = if any_healthy {
            shortest_queue(snaps, |i| keep(i) && !self.unhealthy[i])
        } else {
            shortest_queue(snaps, keep)
        };
        self.stats.decode_routed[pick] += 1;
        pick
    }

    fn update_health(&mut self, snaps: &[ReplicaSnapshot]) {
        for (i, s) in snaps.iter().enumerate() {
            if s.load.waiting > self.cfg.max_queue_depth {
                self.unhealthy[i] = true;
            } else if self.unhealthy[i] && s.load.waiting <= self.cfg.max_queue_depth / 2 {
                self.unhealthy[i] = false;
            }
        }
    }

    fn record(&mut self, d: &RouteDecision) {
        self.stats.routed[d.replica] += 1;
        if d.failover {
            self.stats.failovers += 1;
        }
        if d.affinity_hit {
            self.stats.affinity_hits += 1;
        }
        if d.covered_chunks > 0 {
            self.stats.prefix_cache_hits += 1;
        }
        if let Some(m) = &self.metrics {
            m.routed_total.inc();
            m.per_replica[d.replica].inc();
            if d.failover {
                m.failovers.inc();
            }
            if d.affinity_hit {
                m.affinity_hits.inc();
            }
            if d.covered_chunks > 0 {
                m.cache_hits.inc();
            }
        }
    }
}

/// Index with the fewest outstanding tokens among replicas passing `keep`
/// (ties break to the lowest index). Falls back to replica 0 if `keep`
/// rejects everything.
fn shortest_queue(snaps: &[ReplicaSnapshot], keep: impl Fn(usize) -> bool) -> usize {
    snaps
        .iter()
        .enumerate()
        .filter(|(i, _)| keep(*i))
        .min_by_key(|(i, s)| (s.load.outstanding_tokens, *i))
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn snap(waiting: usize, outstanding: u64, coverage: Vec<u64>) -> ReplicaSnapshot {
        ReplicaSnapshot {
            load: EngineLoad {
                waiting,
                outstanding_tokens: outstanding,
                ..EngineLoad::default()
            },
            coverage: Arc::new(coverage),
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut router = Router::new(RouterConfig::new(RoutePolicy::RoundRobin), 3);
        let snaps = vec![snap(0, 0, vec![]), snap(0, 0, vec![]), snap(0, 0, vec![])];
        let picks: Vec<usize> = (0..6).map(|_| router.route(&[], &snaps).replica).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_picks_fewest_outstanding_tokens() {
        let mut router = Router::new(RouterConfig::new(RoutePolicy::JoinShortestQueue), 3);
        let snaps = vec![
            snap(0, 90, vec![]),
            snap(0, 10, vec![]),
            snap(0, 50, vec![]),
        ];
        assert_eq!(router.route(&[], &snaps).replica, 1);
        // Ties break to the lowest index.
        let tied = vec![
            snap(0, 10, vec![]),
            snap(0, 10, vec![]),
            snap(0, 50, vec![]),
        ];
        assert_eq!(router.route(&[], &tied).replica, 0);
    }

    #[test]
    fn affinity_prefers_covering_replica_and_falls_back_to_jsq() {
        let mut router = Router::new(RouterConfig::new(RoutePolicy::PrefixAffinity), 2);
        // Replica 1 covers the first two chunks despite a longer queue.
        let snaps = vec![snap(0, 5, vec![]), snap(0, 500, vec![7, 11, 13])];
        let d = router.route(&[7, 11, 99], &snaps);
        assert_eq!(d.replica, 1);
        assert!(d.affinity_hit);
        assert_eq!(d.covered_chunks, 2);
        // No coverage anywhere: JSQ fallback, no affinity hit.
        let d = router.route(&[42], &snaps);
        assert_eq!(d.replica, 0);
        assert!(!d.affinity_hit);
        assert_eq!(d.covered_chunks, 0);
        assert_eq!(router.stats().affinity_hits, 1);
        assert_eq!(router.stats().prefix_cache_hits, 1);
    }

    #[test]
    fn coverage_stops_at_first_missing_chunk() {
        // The third chunk is covered but the second is not: only the first
        // counts, because chunk hashes are cumulative.
        assert_eq!(covered_chunks(&[1, 2, 3], &[1, 3]), 1);
        assert_eq!(covered_chunks(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(covered_chunks(&[9], &[1, 2, 3]), 0);
    }

    #[test]
    fn overloaded_replica_fails_over_with_hysteresis() {
        let cfg = RouterConfig::new(RoutePolicy::RoundRobin).with_max_queue_depth(10);
        let mut router = Router::new(cfg, 2);
        // Replica 0's queue exceeds the bound: round-robin would pick it
        // first, but the request fails over to replica 1.
        let overloaded = vec![snap(11, 999, vec![]), snap(0, 0, vec![])];
        let d = router.route(&[], &overloaded);
        assert_eq!(d.replica, 1);
        assert!(d.failover);
        // Queue back under the bound but above half of it: still unhealthy.
        // Round-robin's next natural pick is replica 1 (healthy, no
        // failover), then replica 0 again — which fails over.
        let recovering = vec![snap(8, 10, vec![]), snap(0, 0, vec![])];
        let d = router.route(&[], &recovering);
        assert_eq!((d.replica, d.failover), (1, false));
        let d = router.route(&[], &recovering);
        assert_eq!((d.replica, d.failover), (1, true));
        assert!(!router.is_healthy(0));
        // At half the bound the replica recovers and takes traffic again
        // (skip round-robin past replica 1 first).
        let recovered = vec![snap(5, 10, vec![]), snap(0, 0, vec![])];
        assert_eq!(router.route(&[], &recovered).replica, 1);
        let d = router.route(&[], &recovered);
        assert_eq!(d.replica, 0);
        assert!(!d.failover);
        assert!(router.is_healthy(0));
        assert_eq!(router.stats().failovers, 2);
    }

    #[test]
    fn dead_replicas_receive_no_traffic_under_any_policy() {
        let snaps = vec![
            snap(0, 10, vec![7, 11]),
            snap(0, 20, vec![7, 11]),
            snap(0, 30, vec![]),
        ];
        for policy in [
            RoutePolicy::RoundRobin,
            RoutePolicy::JoinShortestQueue,
            RoutePolicy::PrefixAffinity,
        ] {
            let mut router = Router::new(RouterConfig::new(policy), 3);
            router.mark_dead(0);
            assert_eq!(router.num_alive(), 2);
            assert!(!router.is_alive(0));
            for _ in 0..6 {
                let d = router.route(&[7, 11], &snaps);
                assert_ne!(d.replica, 0, "dead replica picked by {policy}");
            }
            // Restored after restart: traffic flows again.
            router.mark_alive(0);
            assert!((0..6).any(|_| router.route(&[7, 11], &snaps).replica == 0));
        }
    }

    #[test]
    fn all_dead_falls_back_to_policy_choice() {
        let mut router = Router::new(RouterConfig::new(RoutePolicy::RoundRobin), 2);
        router.mark_dead(0);
        router.mark_dead(1);
        let snaps = vec![snap(0, 0, vec![]), snap(0, 0, vec![])];
        // Requests are still routed (never dropped at the router).
        let picks: Vec<usize> = (0..4).map(|_| router.route(&[], &snaps).replica).collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn retries_are_counted() {
        let mut router = Router::new(RouterConfig::new(RoutePolicy::RoundRobin), 2);
        router.record_retry();
        router.record_retry();
        assert_eq!(router.stats().retries, 2);
    }

    #[test]
    fn roles_partition_prefill_and_decode_traffic() {
        let snaps = vec![
            snap(0, 40, vec![7, 11]),
            snap(0, 10, vec![]),
            snap(0, 30, vec![]),
            snap(0, 5, vec![]),
        ];
        for policy in [
            RoutePolicy::RoundRobin,
            RoutePolicy::JoinShortestQueue,
            RoutePolicy::PrefixAffinity,
        ] {
            let mut router = Router::new(RouterConfig::new(policy), 4);
            router.set_roles(vec![
                ReplicaRole::Prefill,
                ReplicaRole::Prefill,
                ReplicaRole::Decode,
                ReplicaRole::Decode,
            ]);
            for _ in 0..8 {
                let d = router.route(&[7, 11], &snaps);
                assert!(
                    d.replica < 2,
                    "decode replica took a new request ({policy})"
                );
            }
            for _ in 0..4 {
                let pick = router.route_decode(&snaps);
                assert!(pick >= 2, "prefill replica took a handoff ({policy})");
            }
            // Decode picks go to the shorter decode queue and are tracked
            // separately from prefill placement.
            assert_eq!(router.stats().decode_routed, vec![0, 0, 0, 4]);
            assert_eq!(router.stats().routed[2] + router.stats().routed[3], 0);
        }
    }

    #[test]
    fn dead_role_pool_degrades_to_alive_replicas() {
        let snaps = vec![snap(0, 10, vec![]), snap(0, 20, vec![])];
        let mut router = Router::new(RouterConfig::new(RoutePolicy::JoinShortestQueue), 2);
        router.set_roles(vec![ReplicaRole::Prefill, ReplicaRole::Decode]);
        // Kill the only decode replica: handoffs spill to the prefill one
        // rather than being dropped.
        router.mark_dead(1);
        assert_eq!(router.route_decode(&snaps), 0);
        // Kill the only prefill replica instead: new requests spill to the
        // decode one.
        router.mark_alive(1);
        router.mark_dead(0);
        assert_eq!(router.route(&[], &snaps).replica, 1);
    }

    #[test]
    fn routing_is_deterministic() {
        let snaps = vec![
            snap(0, 30, vec![7]),
            snap(0, 20, vec![9]),
            snap(2, 10, vec![]),
        ];
        let hashes: Vec<Vec<u64>> = vec![vec![7, 8], vec![9], vec![1], vec![], vec![9, 9]];
        for policy in [
            RoutePolicy::RoundRobin,
            RoutePolicy::JoinShortestQueue,
            RoutePolicy::PrefixAffinity,
        ] {
            let run = || {
                let mut router = Router::new(RouterConfig::new(policy), 3);
                hashes
                    .iter()
                    .map(|h| router.route(h, &snaps))
                    .collect::<Vec<_>>()
            };
            assert_eq!(run(), run(), "policy {policy} must be deterministic");
        }
    }
}
