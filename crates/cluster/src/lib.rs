//! # vllm-cluster
//!
//! A multi-replica serving layer over the single-engine core: the paper
//! evaluates one vLLM instance (§6), but production traffic is served by N
//! engine replicas behind a router. This crate provides the pieces shared by
//! the real TCP frontend and the discrete-event simulator:
//!
//! * [`Replica`] — an [`LlmEngine`](vllm_core::LlmEngine) running on its own
//!   thread, fed over a channel and publishing an [`EngineStats`] load
//!   snapshot plus the chunk-hash coverage of its prefix pool. On shutdown
//!   the loop *drains*: queued and in-flight requests finish before the
//!   thread exits.
//! * [`Router`] — pluggable routing policies ([`RoutePolicy`]):
//!   round-robin, join-shortest-queue by outstanding tokens, and
//!   prefix-affinity (send a request to the replica that already holds the
//!   KV cache of its leading block-aligned prompt chunks — the cluster-level
//!   analog of §4.4 block sharing). Per-replica health tracking fails over
//!   to the shortest healthy queue when a replica backs up.
//! * [`merge_labeled`] / [`aggregate_stats`] — fold per-replica telemetry
//!   into one cluster view: metric names gain a `{replica="i"}` label and
//!   still round-trip through both expositions.
//! * [`ClusterSystem`] — N simulated engines under one trace, producing
//!   throughput-scaling and affinity-hit-rate curves analytically.
//! * [`FaultPlan`] / [`FaultCluster`] — seeded fault schedules (kills,
//!   stalls, forward failures, swap exhaustion, cache-op delays) driven
//!   through a deterministic lockstep harness that exercises the
//!   degradation machinery: bounded admission with backpressure, retry with
//!   re-routing, restart with drain. Same seed ⇒ same token streams and
//!   retry counts.
//! * [`ClusterConfig`] / [`ReplicaRole`] — the typed fleet builder:
//!   per-replica roles (prefill / decode / unified) for disaggregated
//!   serving, admission bounds, and prefix-tier capacity, replacing
//!   env-string-only wiring (env vars remain inputs via
//!   [`ClusterConfig::with_env`]).
//! * [`PrefixTier`] — the cluster-shared CPU prefix store: content-hash
//!   keyed serialized KV blocks, refcounted while installing, evicted by
//!   hits-per-block score. A prefix prefilled on one replica installs on
//!   any other without recompute.

#![warn(missing_docs)]

pub mod config;
pub mod fault;
pub mod replica;
pub mod router;
pub mod sim;
pub mod stats;
pub mod tier;

pub use config::{ClusterConfig, ReplicaRole};
pub use fault::{FaultCluster, FaultClusterConfig, FaultEvent, FaultKind, FaultPlan, FaultReport};
pub use replica::{
    EngineCommand, EngineReply, EngineRequest, EngineStats, PrefixOp, PrefixReply, PrefixRequest,
    Replica,
};
pub use router::{ReplicaSnapshot, RouteDecision, RoutePolicy, Router, RouterConfig, RouterStats};
pub use sim::{ClusterReport, ClusterRequest, ClusterSystem};
pub use stats::{aggregate_stats, merge_labeled};
pub use tier::{PrefixTier, TierEntry, TierStats};
