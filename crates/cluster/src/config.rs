//! Typed cluster configuration: replica roles and the fleet builder.
//!
//! Disaggregated serving (the production pattern behind splitwise-style
//! fleets) splits replicas into a **prefill pool** — absorbs the
//! compute-bound prompt phase — and a **decode pool** — runs the
//! memory-bound token loop — with a KV handoff moving each request from one
//! to the other at its first sampled token. [`ReplicaRole`] tags each
//! replica; [`ClusterConfig`] is the typed builder the frontend and the
//! harnesses share, replacing the env-string-only wiring that grew around
//! `spawn_cluster`. Environment variables remain supported as *inputs* to
//! the builder ([`ClusterConfig::with_env`]), never as a parallel config
//! channel.

use std::str::FromStr;

use crate::router::{RoutePolicy, RouterConfig};

/// What phase of serving a replica handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicaRole {
    /// Accepts new requests, runs the prompt phase, hands off at the first
    /// sampled token.
    Prefill,
    /// Accepts migrated requests only; runs the token loop to completion.
    Decode,
    /// Classic monolithic replica: runs both phases, accepts everything.
    Unified,
}

impl ReplicaRole {
    /// Whether the role accepts newly arriving requests (prompt phase).
    #[must_use]
    pub fn takes_prefill(self) -> bool {
        matches!(self, Self::Prefill | Self::Unified)
    }

    /// Whether the role accepts migrated requests (token loop).
    #[must_use]
    pub fn takes_decode(self) -> bool {
        matches!(self, Self::Decode | Self::Unified)
    }

    /// The canonical config/report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Prefill => "prefill",
            Self::Decode => "decode",
            Self::Unified => "unified",
        }
    }
}

impl std::fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ReplicaRole {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "prefill" | "p" => Ok(Self::Prefill),
            "decode" | "d" => Ok(Self::Decode),
            "unified" | "u" => Ok(Self::Unified),
            other => Err(format!(
                "unknown replica role {other:?} (expected prefill | decode | unified)"
            )),
        }
    }
}

/// Typed fleet configuration: routing, per-replica roles, admission bound,
/// and the shared prefix-tier capacity.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Router configuration (policy + health bound).
    pub router: RouterConfig,
    /// One role per replica, in index order.
    pub roles: Vec<ReplicaRole>,
    /// Bounded admission: maximum in-flight requests per replica.
    pub max_inflight: usize,
    /// Capacity of the cluster-shared CPU prefix tier, in KV blocks
    /// (`0` disables the tier).
    pub prefix_tier_blocks: usize,
}

impl ClusterConfig {
    /// A unified fleet of `num_replicas` replicas under prefix-affinity
    /// routing, tier disabled.
    ///
    /// # Panics
    ///
    /// Panics if `num_replicas` is zero.
    #[must_use]
    pub fn new(num_replicas: usize) -> Self {
        assert!(num_replicas > 0, "cluster needs at least one replica");
        Self {
            router: RouterConfig::new(RoutePolicy::PrefixAffinity),
            roles: vec![ReplicaRole::Unified; num_replicas],
            max_inflight: 1024,
            prefix_tier_blocks: 0,
        }
    }

    /// A disaggregated fleet: `prefill` prefill replicas followed by
    /// `decode` decode replicas.
    ///
    /// # Panics
    ///
    /// Panics if either pool is empty.
    #[must_use]
    pub fn disaggregated(prefill: usize, decode: usize) -> Self {
        assert!(
            prefill > 0 && decode > 0,
            "a disaggregated fleet needs both pools"
        );
        let mut roles = vec![ReplicaRole::Prefill; prefill];
        roles.extend(std::iter::repeat_n(ReplicaRole::Decode, decode));
        Self {
            roles,
            ..Self::new(prefill + decode)
        }
    }

    /// Overrides the routing policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RoutePolicy) -> Self {
        self.router.policy = policy;
        self
    }

    /// Overrides the router's health bound.
    #[must_use]
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.router = self.router.with_max_queue_depth(depth);
        self
    }

    /// Overrides every replica's role at once.
    ///
    /// # Panics
    ///
    /// Panics if `roles` is empty.
    #[must_use]
    pub fn with_roles(mut self, roles: Vec<ReplicaRole>) -> Self {
        assert!(!roles.is_empty(), "cluster needs at least one replica");
        self.roles = roles;
        self
    }

    /// Overrides the per-replica in-flight bound.
    #[must_use]
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight;
        self
    }

    /// Sets the shared prefix-tier capacity in KV blocks (`0` disables).
    #[must_use]
    pub fn with_prefix_tier_blocks(mut self, blocks: usize) -> Self {
        self.prefix_tier_blocks = blocks;
        self
    }

    /// Number of replicas in the fleet.
    #[must_use]
    pub fn num_replicas(&self) -> usize {
        self.roles.len()
    }

    /// Whether any replica is role-specialized (the fleet needs the
    /// KV-handoff path).
    #[must_use]
    pub fn is_disaggregated(&self) -> bool {
        self.roles.iter().any(|r| *r != ReplicaRole::Unified)
    }

    /// Layers environment overrides onto this configuration:
    ///
    /// * `VLLM_REPLICA_ROLES` — comma-separated roles, one per replica
    ///   (`prefill,prefill,decode,decode`); a single role applies fleet-wide.
    /// * `VLLM_PREFIX_TIER_BLOCKS` — shared prefix-tier capacity in blocks.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed variable.
    pub fn with_env(mut self) -> Result<Self, String> {
        if let Ok(spec) = std::env::var("VLLM_REPLICA_ROLES") {
            let roles: Vec<ReplicaRole> = spec
                .split(',')
                .map(ReplicaRole::from_str)
                .collect::<Result<_, _>>()
                .map_err(|e| format!("VLLM_REPLICA_ROLES: {e}"))?;
            if roles.len() == 1 {
                self.roles = vec![roles[0]; self.roles.len()];
            } else if roles.len() == self.roles.len() {
                self.roles = roles;
            } else {
                return Err(format!(
                    "VLLM_REPLICA_ROLES names {} roles for {} replicas",
                    roles.len(),
                    self.roles.len()
                ));
            }
        }
        if let Ok(spec) = std::env::var("VLLM_PREFIX_TIER_BLOCKS") {
            self.prefix_tier_blocks = spec
                .trim()
                .parse()
                .map_err(|_| format!("VLLM_PREFIX_TIER_BLOCKS: not a block count: {spec:?}"))?;
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_parse_and_classify() {
        assert_eq!("prefill".parse::<ReplicaRole>(), Ok(ReplicaRole::Prefill));
        assert_eq!("d".parse::<ReplicaRole>(), Ok(ReplicaRole::Decode));
        assert!("frontend".parse::<ReplicaRole>().is_err());
        assert!(ReplicaRole::Prefill.takes_prefill());
        assert!(!ReplicaRole::Prefill.takes_decode());
        assert!(ReplicaRole::Decode.takes_decode());
        assert!(!ReplicaRole::Decode.takes_prefill());
        assert!(ReplicaRole::Unified.takes_prefill() && ReplicaRole::Unified.takes_decode());
    }

    #[test]
    fn builder_composes() {
        let cfg = ClusterConfig::disaggregated(2, 2)
            .with_policy(RoutePolicy::JoinShortestQueue)
            .with_prefix_tier_blocks(128)
            .with_max_inflight(32);
        assert_eq!(cfg.num_replicas(), 4);
        assert!(cfg.is_disaggregated());
        assert_eq!(cfg.roles[0], ReplicaRole::Prefill);
        assert_eq!(cfg.roles[3], ReplicaRole::Decode);
        assert_eq!(cfg.prefix_tier_blocks, 128);
        assert_eq!(cfg.max_inflight, 32);
        assert!(!ClusterConfig::new(3).is_disaggregated());
    }
}
