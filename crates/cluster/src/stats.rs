//! Cluster-wide views of per-replica telemetry.
//!
//! Each replica engine owns a private registry, so cluster exposition merges
//! the per-replica snapshots into one [`MetricsSnapshot`] whose names carry
//! a `{replica="<label>"}` suffix. Both exposition formats treat the name as
//! an opaque string (the text parser splits on the first space, the JSON
//! writer escapes quotes), so labeled snapshots round-trip losslessly just
//! like unlabeled ones.

use vllm_core::telemetry::{MetricEntry, MetricsSnapshot};

use crate::replica::EngineStats;

/// Merges per-replica snapshots into one, rewriting each metric name to
/// `name{replica="label"}`. Entries stay sorted by name, matching registry
/// snapshots.
#[must_use]
pub fn merge_labeled(parts: &[(String, MetricsSnapshot)]) -> MetricsSnapshot {
    let mut metrics: Vec<MetricEntry> = parts
        .iter()
        .flat_map(|(label, snap)| {
            snap.metrics.iter().map(move |m| MetricEntry {
                name: format!("{}{{replica=\"{label}\"}}", m.name),
                help: m.help.clone(),
                value: m.value.clone(),
            })
        })
        .collect();
    metrics.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot { metrics }
}

/// Folds per-replica serving stats into one cluster line: queue depths,
/// block counts, and cumulative counters sum; latency means are weighted by
/// each replica's finished-request count; latency percentiles take the
/// worst replica (a conservative cluster tail — exact cluster percentiles
/// would need the raw per-request records).
#[must_use]
pub fn aggregate_stats(parts: &[EngineStats]) -> EngineStats {
    let mut agg = EngineStats::default();
    let mut finished_weight = 0.0;
    for s in parts {
        agg.waiting += s.waiting;
        agg.running += s.running;
        agg.swapped += s.swapped;
        agg.outstanding_tokens += s.outstanding_tokens;
        agg.free_blocks += s.free_blocks;
        agg.total_blocks += s.total_blocks;
        agg.finished += s.finished;
        agg.preemptions += s.preemptions;
        agg.steps += s.steps;
        agg.tokens_scheduled += s.tokens_scheduled;
        agg.blocks_copied += s.blocks_copied;
        agg.blocks_swapped += s.blocks_swapped;
        agg.schedule_time += s.schedule_time;
        agg.prepare_time += s.prepare_time;
        agg.execute_time += s.execute_time;
        agg.postprocess_time += s.postprocess_time;
        let w = s.finished as f64;
        agg.norm_lat_mean += s.norm_lat_mean * w;
        agg.ttft_mean += s.ttft_mean * w;
        finished_weight += w;
        agg.norm_lat_p50 = agg.norm_lat_p50.max(s.norm_lat_p50);
        agg.norm_lat_p90 = agg.norm_lat_p90.max(s.norm_lat_p90);
        agg.norm_lat_p99 = agg.norm_lat_p99.max(s.norm_lat_p99);
        agg.ttft_p50 = agg.ttft_p50.max(s.ttft_p50);
        agg.ttft_p99 = agg.ttft_p99.max(s.ttft_p99);
    }
    if finished_weight > 0.0 {
        agg.norm_lat_mean /= finished_weight;
        agg.ttft_mean /= finished_weight;
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use vllm_core::telemetry::Telemetry;

    #[test]
    fn labeled_merge_round_trips_both_expositions() {
        let make = |steps: u64, ttft: f64| {
            let t = Telemetry::new();
            t.registry()
                .counter("vllm_engine_steps_total", "Steps.")
                .inc_by(steps);
            t.registry()
                .gauge("vllm_scheduler_waiting_requests", "Waiting.")
                .set(2.0);
            t.registry()
                .histogram(
                    "vllm_request_ttft_seconds",
                    "TTFT.",
                    vllm_core::telemetry::BucketSpec::seconds(),
                )
                .observe(ttft);
            t.registry().snapshot()
        };
        let merged = merge_labeled(&[
            ("0".to_string(), make(3, 0.5)),
            ("1".to_string(), make(7, 1.5)),
        ]);
        assert_eq!(
            merged.counter("vllm_engine_steps_total{replica=\"0\"}"),
            Some(3)
        );
        assert_eq!(
            merged.counter("vllm_engine_steps_total{replica=\"1\"}"),
            Some(7)
        );
        let text = merged.to_prometheus_text();
        let from_text = MetricsSnapshot::from_prometheus_text(&text).expect("text parses");
        assert_eq!(from_text, merged);
        let from_json = MetricsSnapshot::from_json(&merged.to_json()).expect("json parses");
        assert_eq!(from_json, merged);
        // Histograms survive labeling too.
        let h = from_text
            .histogram("vllm_request_ttft_seconds{replica=\"1\"}")
            .expect("labeled histogram");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn aggregate_sums_counts_and_weights_means() {
        let a = EngineStats {
            waiting: 1,
            free_blocks: 10,
            total_blocks: 20,
            finished: 1,
            norm_lat_mean: 1.0,
            norm_lat_p99: 2.0,
            ttft_mean: 0.2,
            ..EngineStats::default()
        };
        let b = EngineStats {
            waiting: 2,
            free_blocks: 5,
            total_blocks: 20,
            finished: 3,
            norm_lat_mean: 2.0,
            norm_lat_p99: 1.0,
            ttft_mean: 0.6,
            ..EngineStats::default()
        };
        let agg = aggregate_stats(&[a, b]);
        assert_eq!(agg.waiting, 3);
        assert_eq!(agg.free_blocks, 15);
        assert_eq!(agg.total_blocks, 40);
        assert_eq!(agg.finished, 4);
        assert!((agg.norm_lat_mean - 1.75).abs() < 1e-12); // (1*1 + 2*3) / 4
        assert!((agg.ttft_mean - 0.5).abs() < 1e-12);
        assert_eq!(agg.norm_lat_p99, 2.0); // worst replica
    }
}
