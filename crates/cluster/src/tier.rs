//! Cluster-shared CPU-tier prefix cache.
//!
//! A replica's own prefix pool (§4.4) only helps requests that land on it.
//! The tier lifts that one level: when a prefill replica computes the KV of
//! a shareable prefix, it publishes the serialized blocks here — keyed by a
//! content hash of the prefix tokens — and *any* replica can later install
//! them locally instead of recomputing. A million users sharing a system
//! prompt then prefill it once per fleet, not once per replica, no matter
//! where the router lands them.
//!
//! The tier is a passive store with explicit lifecycle:
//!
//! * **Content-hash keyed** — the key is the cumulative FNV-1a chunk hash of
//!   the full prefix ([`vllm_core::chunk_hashes`]), so the same token
//!   sequence maps to the same entry regardless of which replica produced
//!   it, and lookups compose with the router's coverage matching.
//! * **Refcounted** — [`PrefixTier::acquire`] pins an entry while a replica
//!   is installing from it; pinned entries are never evicted. Publication
//!   itself does not pin.
//! * **Eviction-scored** — over capacity, unpinned entries are evicted in
//!   ascending score order, `score = hits / blocks` with logical-clock
//!   recency as tie-break: keep what earns the most reuse per block held,
//!   and among equals, keep what was touched last.
//!
//! Exported metrics: `vllm_prefix_tier_{hits,misses,insertions,evictions}_total`
//! counters plus `vllm_prefix_tier_entries` / `vllm_prefix_tier_blocks`
//! gauges.

use std::collections::HashMap;

use vllm_core::handoff::KvBlockBytes;
use vllm_core::telemetry::{Counter, Gauge, Telemetry};
use vllm_core::{chunk_hashes, TokenId};

/// One published prefix.
#[derive(Debug, Clone)]
pub struct TierEntry {
    /// The prefix tokens (block-aligned length).
    pub tokens: Vec<TokenId>,
    /// Serialized KV, one entry per block.
    pub blocks: Vec<KvBlockBytes>,
    /// Cumulative chunk hashes of the tokens (for coverage matching).
    pub hashes: Vec<u64>,
    /// Active pins (replicas mid-install).
    refcount: usize,
    /// Lookup hits since publication.
    hits: u64,
    /// Logical time of the last hit or publication.
    last_touch: u64,
}

impl TierEntry {
    /// Eviction score: hits earned per block held. Higher is more worth
    /// keeping.
    fn score(&self) -> f64 {
        self.hits as f64 / self.blocks.len().max(1) as f64
    }
}

/// Plain-counter mirror of the tier telemetry (report writers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Lookups that found a usable prefix.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Prefixes published.
    pub insertions: u64,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
}

#[derive(Debug)]
struct TierMetrics {
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
    entries: Gauge,
    blocks: Gauge,
}

/// The cluster-shared prefix store (capacity counted in KV blocks).
#[derive(Debug)]
pub struct PrefixTier {
    capacity_blocks: usize,
    block_size: usize,
    entries: HashMap<u64, TierEntry>,
    used_blocks: usize,
    clock: u64,
    stats: TierStats,
    metrics: Option<TierMetrics>,
}

impl PrefixTier {
    /// An empty tier holding at most `capacity_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[must_use]
    pub fn new(capacity_blocks: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            capacity_blocks,
            block_size,
            entries: HashMap::new(),
            used_blocks: 0,
            clock: 0,
            stats: TierStats::default(),
            metrics: None,
        }
    }

    /// Registers the `vllm_prefix_tier_*` instruments on `telemetry`.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let r = telemetry.registry();
        self.metrics = Some(TierMetrics {
            hits: r.counter(
                "vllm_prefix_tier_hits_total",
                "Tier lookups that found a usable shared prefix.",
            ),
            misses: r.counter(
                "vllm_prefix_tier_misses_total",
                "Tier lookups that found nothing.",
            ),
            insertions: r.counter(
                "vllm_prefix_tier_insertions_total",
                "Prefixes published into the shared tier.",
            ),
            evictions: r.counter(
                "vllm_prefix_tier_evictions_total",
                "Tier entries evicted under capacity pressure.",
            ),
            entries: r.gauge("vllm_prefix_tier_entries", "Entries resident in the tier."),
            blocks: r.gauge("vllm_prefix_tier_blocks", "KV blocks held by the tier."),
        });
        self.publish_gauges();
    }

    /// Plain-counter mirror of the tier telemetry.
    #[must_use]
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// Blocks currently held.
    #[must_use]
    pub fn used_blocks(&self) -> usize {
        self.used_blocks
    }

    /// Entries currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tier holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Content key of a token prefix: the cumulative chunk hash of its last
    /// full block (identical tokens ⇒ identical key, fleet-wide).
    #[must_use]
    pub fn content_key(&self, tokens: &[TokenId]) -> Option<u64> {
        chunk_hashes(tokens, self.block_size).last().copied()
    }

    /// Publishes a prefix computed by some replica. The token length is
    /// truncated to whole blocks (the tier only stores what other replicas
    /// can install block-aligned); returns the content key, or `None` when
    /// the prefix is shorter than one block, larger than the whole tier, or
    /// eviction cannot make room (everything pinned).
    pub fn publish(&mut self, tokens: &[TokenId], blocks: Vec<KvBlockBytes>) -> Option<u64> {
        let whole = (tokens.len() / self.block_size) * self.block_size;
        if whole == 0 {
            return None;
        }
        let tokens = &tokens[..whole];
        let blocks = blocks
            .into_iter()
            .take(whole / self.block_size)
            .collect::<Vec<_>>();
        if blocks.len() != whole / self.block_size {
            return None;
        }
        let hashes = chunk_hashes(tokens, self.block_size);
        let key = *hashes.last().expect("whole > 0");
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            // Already published (same content): refresh recency only.
            e.last_touch = self.clock;
            return Some(key);
        }
        if !self.make_room(blocks.len()) {
            return None;
        }
        self.used_blocks += blocks.len();
        self.entries.insert(
            key,
            TierEntry {
                tokens: tokens.to_vec(),
                blocks,
                hashes,
                refcount: 0,
                hits: 0,
                last_touch: self.clock,
            },
        );
        self.stats.insertions += 1;
        if let Some(m) = &self.metrics {
            m.insertions.inc();
        }
        self.publish_gauges();
        Some(key)
    }

    /// Finds the longest published prefix of `prompt` (block-aligned).
    /// Counts a hit or miss; a hit bumps the entry's score and recency.
    pub fn lookup(&mut self, prompt: &[TokenId]) -> Option<u64> {
        self.clock += 1;
        let hashes = chunk_hashes(prompt, self.block_size);
        // Longest prefix first: deeper chunks subsume shallower ones.
        for (i, key) in hashes.iter().enumerate().rev() {
            if let Some(e) = self.entries.get_mut(key) {
                // Guard against hash aliasing across different contents.
                if e.tokens.len() == (i + 1) * self.block_size && prompt.starts_with(&e.tokens) {
                    e.hits += 1;
                    e.last_touch = self.clock;
                    self.stats.hits += 1;
                    if let Some(m) = &self.metrics {
                        m.hits.inc();
                    }
                    return Some(*key);
                }
            }
        }
        self.stats.misses += 1;
        if let Some(m) = &self.metrics {
            m.misses.inc();
        }
        None
    }

    /// The entry for a content key.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&TierEntry> {
        self.entries.get(&key)
    }

    /// Pins an entry while a replica installs from it (pinned entries are
    /// never evicted). Returns whether the key exists.
    pub fn acquire(&mut self, key: u64) -> bool {
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.refcount += 1;
                true
            }
            None => false,
        }
    }

    /// Releases a pin taken by [`Self::acquire`].
    pub fn release(&mut self, key: u64) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.refcount = e.refcount.saturating_sub(1);
        }
    }

    /// Evicts unpinned entries (ascending score, oldest-touch tie-break)
    /// until `needed` more blocks fit. Returns whether they do.
    fn make_room(&mut self, needed: usize) -> bool {
        if needed > self.capacity_blocks {
            return false;
        }
        while self.used_blocks + needed > self.capacity_blocks {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.refcount == 0)
                .min_by(|(_, a), (_, b)| {
                    a.score()
                        .total_cmp(&b.score())
                        .then(a.last_touch.cmp(&b.last_touch))
                })
                .map(|(k, _)| *k);
            let Some(key) = victim else {
                return false; // Everything left is pinned.
            };
            let e = self.entries.remove(&key).expect("victim exists");
            self.used_blocks -= e.blocks.len();
            self.stats.evictions += 1;
            if let Some(m) = &self.metrics {
                m.evictions.inc();
            }
        }
        self.publish_gauges();
        true
    }

    fn publish_gauges(&self) {
        if let Some(m) = &self.metrics {
            m.entries.set(self.entries.len() as f64);
            m.blocks.set(self.used_blocks as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(n: usize) -> Vec<KvBlockBytes> {
        (0..n).map(|_| KvBlockBytes::empty()).collect()
    }

    fn toks(tag: u32, len: usize) -> Vec<TokenId> {
        (0..len as u32).map(|i| tag * 1000 + i).collect()
    }

    #[test]
    fn publish_lookup_round_trip() {
        let mut tier = PrefixTier::new(64, 4);
        let p = toks(1, 8);
        let key = tier.publish(&p, blocks(2)).unwrap();
        // A prompt extending the prefix hits; an unrelated one misses.
        let mut prompt = p.clone();
        prompt.extend([9, 9, 9]);
        assert_eq!(tier.lookup(&prompt), Some(key));
        assert_eq!(tier.lookup(&toks(2, 8)), None);
        assert_eq!(tier.stats().hits, 1);
        assert_eq!(tier.stats().misses, 1);
        let e = tier.get(key).unwrap();
        assert_eq!(e.tokens, p);
        assert_eq!(e.blocks.len(), 2);
    }

    #[test]
    fn sub_block_prefixes_are_not_published() {
        let mut tier = PrefixTier::new(64, 16);
        assert_eq!(tier.publish(&toks(1, 7), blocks(1)), None);
        // Partial trailing blocks are truncated to whole ones.
        let key = tier.publish(&toks(1, 20), blocks(2)).unwrap();
        assert_eq!(tier.get(key).unwrap().tokens.len(), 16);
        assert_eq!(tier.get(key).unwrap().blocks.len(), 1);
    }

    #[test]
    fn longest_published_prefix_wins() {
        let mut tier = PrefixTier::new(64, 4);
        let long = toks(1, 12);
        let short_key = tier.publish(&long[..4], blocks(1)).unwrap();
        let long_key = tier.publish(&long, blocks(3)).unwrap();
        assert_ne!(short_key, long_key);
        assert_eq!(tier.lookup(&long), Some(long_key));
        // A prompt only covering the short entry still hits it.
        let mut short_prompt = long[..4].to_vec();
        short_prompt.push(777);
        assert_eq!(tier.lookup(&short_prompt), Some(short_key));
    }

    #[test]
    fn eviction_prefers_low_score_and_respects_pins() {
        let mut tier = PrefixTier::new(4, 4);
        let a = tier.publish(&toks(1, 8), blocks(2)).unwrap(); // 2 blocks
        let b = tier.publish(&toks(2, 8), blocks(2)).unwrap(); // 2 blocks
                                                               // `b` earns a hit; `a` stays cold → `a` is the eviction victim.
        assert_eq!(tier.lookup(&toks(2, 8)), Some(b));
        let c = tier.publish(&toks(3, 8), blocks(2)).unwrap();
        assert!(tier.get(a).is_none(), "cold entry must be evicted first");
        assert!(tier.get(b).is_some());
        assert!(tier.get(c).is_some());
        assert_eq!(tier.stats().evictions, 1);
        assert_eq!(tier.used_blocks(), 4);
        // Pin everything: publication must fail rather than evict a pinned
        // entry.
        assert!(tier.acquire(b) && tier.acquire(c));
        assert_eq!(tier.publish(&toks(4, 8), blocks(2)), None);
        tier.release(b);
        assert!(tier.publish(&toks(4, 8), blocks(2)).is_some());
        assert!(tier.get(b).is_none(), "unpinned entry became evictable");
    }

    #[test]
    fn oversized_prefix_is_rejected() {
        let mut tier = PrefixTier::new(2, 4);
        assert_eq!(tier.publish(&toks(1, 16), blocks(4)), None);
        assert!(tier.is_empty());
    }

    #[test]
    fn republishing_same_content_is_idempotent() {
        let mut tier = PrefixTier::new(8, 4);
        let k1 = tier.publish(&toks(1, 8), blocks(2)).unwrap();
        let k2 = tier.publish(&toks(1, 8), blocks(2)).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(tier.len(), 1);
        assert_eq!(tier.stats().insertions, 1);
        assert_eq!(tier.used_blocks(), 2);
    }

    #[test]
    fn metrics_mirror_stats() {
        let telemetry = Telemetry::new();
        let mut tier = PrefixTier::new(8, 4);
        tier.attach_telemetry(&telemetry);
        tier.publish(&toks(1, 8), blocks(2)).unwrap();
        tier.lookup(&toks(1, 8)).unwrap();
        tier.lookup(&toks(9, 8));
        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("vllm_prefix_tier_hits_total"), Some(1));
        assert_eq!(snap.counter("vllm_prefix_tier_misses_total"), Some(1));
        assert_eq!(snap.counter("vllm_prefix_tier_insertions_total"), Some(1));
        assert_eq!(snap.gauge("vllm_prefix_tier_blocks"), Some(2.0));
        assert_eq!(snap.gauge("vllm_prefix_tier_entries"), Some(1.0));
    }
}
