//! Discrete-event simulation of a replica cluster.
//!
//! [`ClusterSystem`] drives N [`VllmSimSystem`] instances (real engines,
//! cost-model executors) under one arrival trace. Each replica keeps its own
//! virtual clock; the driver alternates between injecting the next arrival
//! (whenever it precedes every busy replica's clock) and stepping the
//! furthest-behind busy replica, so replicas only interact through the
//! router — exactly the independence a real fleet has. Throughput-scaling
//! and affinity-hit-rate curves come out analytically, with no threads and
//! full determinism.
//!
//! Disaggregated mode ([`ClusterConfig::disaggregated`]): requests route to
//! a *prefill* replica and run there as a one-token stub (the prompt phase
//! plus the first sampled token). At the stub's finish — which is the
//! request's TTFT — the prompt's KV blocks hand off to a *decode* replica
//! ([`Router::route_decode`]): the blocks are published to the shared
//! [`PrefixTier`], a block-transfer delay is charged at the interconnect
//! (swap-bandwidth) rate, and the request resumes on the decode replica with
//! the prompt KV installed via `import_prefix` — no recompute. Later
//! arrivals that extend a published prompt hit the tier and install its
//! blocks instead of prefitting them anywhere. The point of the split: p99
//! TTFT no longer queues behind the memory-bound decode batch.

use std::collections::HashMap;
use std::sync::Arc;

use vllm_baselines::types::StepWork;
use vllm_core::telemetry::{Counter, MetricsSnapshot, Telemetry};
use vllm_core::{chunk_hashes, GenerationRequest, KvBlockBytes, LatencyTracker, PrefixId, TokenId};
use vllm_sim::VllmSimSystem;

use crate::config::{ClusterConfig, ReplicaRole};
use crate::router::{ReplicaSnapshot, RouteDecision, Router, RouterConfig};
use crate::stats::merge_labeled;
use crate::tier::PrefixTier;

/// One request of a cluster trace.
#[derive(Debug, Clone)]
pub struct ClusterRequest {
    /// Request id (unique within the trace; also the sampling seed).
    pub id: u64,
    /// Arrival time in virtual seconds.
    pub arrival: f64,
    /// Prompt tokens (the router hashes their leading block chunks).
    pub prompt: Vec<TokenId>,
    /// Scripted output length in tokens.
    pub output_len: usize,
}

impl ClusterRequest {
    /// The typed generation request this trace entry describes: greedy
    /// decoding of the scripted length, seeded with the request id, never
    /// stopping early on EOS (so simulated lengths stay scripted).
    #[must_use]
    pub fn request(&self) -> GenerationRequest {
        GenerationRequest::greedy(self.output_len)
            .with_ignore_eos()
            .with_seed(self.id)
    }
}

/// Aggregated outcome of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Routing policy name.
    pub policy: String,
    /// Number of replicas.
    pub num_replicas: usize,
    /// Requests injected.
    pub num_requests: usize,
    /// Requests finished (always equal to injected — nothing is dropped).
    pub num_finished: usize,
    /// Makespan: the latest replica clock when the cluster drained.
    pub duration: f64,
    /// Finished requests per virtual second.
    pub throughput: f64,
    /// Mean normalized latency (s/token, §6.1) across the cluster.
    pub norm_lat_mean: f64,
    /// Median normalized latency.
    pub norm_lat_p50: f64,
    /// 90th percentile normalized latency.
    pub norm_lat_p90: f64,
    /// 99th percentile normalized latency.
    pub norm_lat_p99: f64,
    /// Requests routed to each replica, in index order.
    pub routed_per_replica: Vec<u64>,
    /// Requests redirected away from an unhealthy replica.
    pub failovers: u64,
    /// Requests placed by prefix affinity.
    pub affinity_hits: u64,
    /// Requests whose chosen replica already held leading prompt chunks.
    pub prefix_cache_hits: u64,
    /// `prefix_cache_hits / num_requests` (0 for an empty trace).
    pub cache_hit_rate: f64,
    /// Replica chosen for each request, in injection order (determinism
    /// checks compare these across runs).
    pub assignments: Vec<(u64, usize)>,
    /// Whether the fleet ran with specialized prefill/decode roles.
    pub disaggregated: bool,
    /// Mean time to first token (seconds).
    pub ttft_mean: f64,
    /// Median time to first token.
    pub ttft_p50: f64,
    /// 99th percentile time to first token (the latency the prefill/decode
    /// split is meant to protect).
    pub ttft_p99: f64,
    /// KV handoffs performed (prefill → decode migrations).
    pub handoffs: u64,
    /// KV blocks shipped across the handoff path.
    pub handoff_blocks: u64,
    /// Handoffs routed to each replica, in index order.
    pub decode_routed_per_replica: Vec<u64>,
    /// Shared prefix-tier lookups that found a usable prefix.
    pub tier_hits: u64,
    /// Shared prefix-tier lookups that found nothing.
    pub tier_misses: u64,
    /// `tier_hits / (tier_hits + tier_misses)` (0 when the tier is off).
    pub tier_hit_rate: f64,
}

/// Cached telemetry handles for the KV-handoff path.
#[derive(Debug)]
struct HandoffMetrics {
    handoffs: Counter,
    blocks: Counter,
    tier_installs: Counter,
}

/// N simulated engine replicas behind one router.
pub struct ClusterSystem {
    replicas: Vec<VllmSimSystem>,
    router: Router,
    roles: Vec<ReplicaRole>,
    tier: Option<PrefixTier>,
    clocks: Vec<f64>,
    block_size: usize,
    coverage: Vec<Arc<Vec<u64>>>,
    coverage_versions: Vec<Option<u64>>,
    telemetry: Arc<Telemetry>,
    handoff_metrics: Option<HandoffMetrics>,
}

impl ClusterSystem {
    /// Builds a cluster over already-configured replicas.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    #[must_use]
    pub fn new(replicas: Vec<VllmSimSystem>, cfg: RouterConfig) -> Self {
        assert!(!replicas.is_empty(), "cluster needs at least one replica");
        let mut cluster = ClusterConfig::new(replicas.len());
        cluster.router = cfg;
        Self::with_config(replicas, cluster)
    }

    /// Builds a cluster from a typed fleet configuration: per-replica roles
    /// (disaggregated serving) and shared prefix-tier capacity.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty or its length disagrees with the
    /// configured roles.
    #[must_use]
    pub fn with_config(replicas: Vec<VllmSimSystem>, cfg: ClusterConfig) -> Self {
        assert!(!replicas.is_empty(), "cluster needs at least one replica");
        assert_eq!(replicas.len(), cfg.num_replicas(), "one role per replica");
        let n = replicas.len();
        let block_size = replicas[0].engine().cache_config().block_size;
        let telemetry = Arc::new(Telemetry::new());
        let mut router = Router::new(cfg.router, n);
        router.attach_telemetry(&telemetry);
        router.set_roles(cfg.roles.clone());
        let tier = (cfg.prefix_tier_blocks > 0).then(|| {
            let mut t = PrefixTier::new(cfg.prefix_tier_blocks, block_size);
            t.attach_telemetry(&telemetry);
            t
        });
        let handoff_metrics = cfg.is_disaggregated().then(|| {
            let r = telemetry.registry();
            HandoffMetrics {
                handoffs: r.counter(
                    "vllm_cluster_handoffs_total",
                    "KV handoffs from prefill to decode replicas.",
                ),
                blocks: r.counter(
                    "vllm_cluster_handoff_blocks_total",
                    "KV blocks shipped across the handoff path.",
                ),
                tier_installs: r.counter(
                    "vllm_cluster_handoff_tier_installs_total",
                    "Prefix installs served from the shared tier instead of prefill.",
                ),
            }
        });
        Self {
            replicas,
            router,
            roles: cfg.roles,
            tier,
            clocks: vec![0.0; n],
            block_size,
            coverage: (0..n).map(|_| Arc::new(Vec::new())).collect(),
            coverage_versions: vec![None; n],
            telemetry,
            handoff_metrics,
        }
    }

    /// Registers a shared prefix on one replica (its KV cache is pinned
    /// there, and the router's coverage view picks it up).
    ///
    /// # Panics
    ///
    /// Panics if the prefix cannot be pinned.
    pub fn register_prefix(&mut self, replica: usize, tokens: Vec<TokenId>) {
        self.replicas[replica].register_prefix(tokens);
    }

    /// The router (policy, health, counters).
    #[must_use]
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The replicas, in index order (post-run leak and memory inspection).
    #[must_use]
    pub fn replicas(&self) -> &[VllmSimSystem] {
        &self.replicas
    }

    /// The shared prefix tier, when enabled.
    #[must_use]
    pub fn tier(&self) -> Option<&PrefixTier> {
        self.tier.as_ref()
    }

    /// The cluster-level telemetry bundle (router counters).
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// One merged snapshot: per-replica engine metrics under
    /// `{replica="i"}` labels plus the unlabeled `vllm_cluster_*` router
    /// counters.
    #[must_use]
    pub fn merged_snapshot(&self) -> MetricsSnapshot {
        let parts: Vec<(String, MetricsSnapshot)> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| (i.to_string(), r.engine().metrics_snapshot()))
            .collect();
        let mut merged = merge_labeled(&parts);
        merged
            .metrics
            .extend(self.telemetry.registry().snapshot().metrics);
        merged.metrics.sort_by(|a, b| a.name.cmp(&b.name));
        merged
    }

    fn refresh_snapshots(&mut self) -> Vec<ReplicaSnapshot> {
        for (i, r) in self.replicas.iter().enumerate() {
            let version = r.engine().prefix_pool().version();
            if self.coverage_versions[i] != Some(version) {
                self.coverage_versions[i] = Some(version);
                self.coverage[i] = Arc::new(r.engine().prefix_coverage());
            }
        }
        self.replicas
            .iter()
            .enumerate()
            .map(|(i, r)| ReplicaSnapshot {
                load: r.engine().load_snapshot(),
                coverage: Arc::clone(&self.coverage[i]),
            })
            .collect()
    }

    fn route(&mut self, req: &ClusterRequest) -> RouteDecision {
        let hashes = chunk_hashes(&req.prompt, self.block_size);
        let snaps = self.refresh_snapshots();
        self.router.route(&hashes, &snaps)
    }

    /// Models the interconnect time to ship `nblocks` KV blocks to
    /// `replica` (swap-bandwidth rate from its cost model).
    fn transfer_delay(&self, replica: usize, nblocks: usize) -> f64 {
        if nblocks == 0 {
            return 0.0;
        }
        let work = StepWork {
            swapped_blocks: nblocks,
            ..StepWork::default()
        };
        self.replicas[replica]
            .engine()
            .executor()
            .cost
            .step_latency(&work)
    }

    /// Runs the trace to completion and reports aggregate metrics.
    ///
    /// # Panics
    ///
    /// Panics if a request is rejected by its replica (oversized prompt).
    pub fn run(&mut self, mut requests: Vec<ClusterRequest>) -> ClusterReport {
        requests.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        let num_requests = requests.len();
        let disaggregated = self.roles.iter().any(|r| *r != ReplicaRole::Unified);
        let bs = self.block_size;
        let mut latency = LatencyTracker::new();
        let mut ttfts: Vec<f64> = Vec::with_capacity(num_requests);
        let mut assignments = Vec::with_capacity(num_requests);
        let mut next = 0;
        // Requests mid-migration: a one-token stub runs the prompt phase on
        // a prefill replica; its finish queues the decode phase for
        // reinjection once the KV transfer lands.
        struct PendingStub {
            arrival: f64,
            prompt: Vec<TokenId>,
            output_len: usize,
        }
        struct DecodeInject {
            at: f64,
            id: u64,
            replica: usize,
            prompt: Vec<TokenId>,
            remaining: usize,
        }
        struct DecodeMeta {
            arrival: f64,
            output_len: usize,
            prefix: Option<(usize, PrefixId)>,
        }
        let mut stubs: HashMap<u64, PendingStub> = HashMap::new();
        let mut reinjects: Vec<DecodeInject> = Vec::new();
        let mut decode_meta: HashMap<u64, DecodeMeta> = HashMap::new();
        let mut handoffs = 0u64;
        let mut handoff_blocks = 0u64;
        loop {
            let min_busy_clock = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.engine().has_unfinished())
                .map(|(i, _)| self.clocks[i])
                .min_by(f64::total_cmp);
            // Earliest pending injection: a decode-phase reinjection or the
            // next trace arrival (the reinjection wins ties so a migrated
            // request resumes before new work lands on its replica).
            let next_reinject = reinjects
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.at.total_cmp(&b.at).then(a.id.cmp(&b.id)))
                .map(|(idx, inj)| (idx, inj.at));
            let next_arrival = (next < requests.len()).then(|| requests[next].arrival);
            let reinject_first = match (next_reinject, next_arrival) {
                (Some((_, at)), Some(arr)) => at <= arr,
                (Some(_), None) => true,
                _ => false,
            };
            // Inject when no replica's pending step could precede the
            // injection time (idle replicas fast-forward to it).
            if reinject_first {
                let (idx, at) = next_reinject.expect("reinject_first implies one");
                if min_busy_clock.is_none_or(|c| at <= c) {
                    let inj = reinjects.swap_remove(idx);
                    self.clocks[inj.replica] = self.clocks[inj.replica].max(inj.at);
                    let req = GenerationRequest::greedy(inj.remaining)
                        .with_ignore_eos()
                        .with_seed(inj.id);
                    self.replicas[inj.replica]
                        .engine_mut()
                        .add_generation_request_at(
                            format!("{}.d", inj.id),
                            inj.prompt,
                            &req,
                            inj.at,
                        )
                        .expect("decode phase admitted");
                    continue;
                }
            } else if let Some(arrival) = next_arrival {
                if min_busy_clock.is_none_or(|c| arrival <= c) {
                    let req = requests[next].clone();
                    next += 1;
                    let d = self.route(&req);
                    assignments.push((req.id, d.replica));
                    let mut inject_at = req.arrival;
                    // Consult the shared tier: a published prefix longer
                    // than what the chosen replica already covers installs
                    // from CPU memory (one transfer) instead of prefilling.
                    if let Some(tier) = &mut self.tier {
                        if let Some(key) = tier.lookup(&req.prompt) {
                            let (tokens, blocks) = {
                                let e = tier.get(key).expect("hit key resolves");
                                (e.tokens.clone(), e.blocks.clone())
                            };
                            if blocks.len() > d.covered_chunks {
                                tier.acquire(key);
                                let nblocks = blocks.len();
                                let installed = self.replicas[d.replica]
                                    .engine_mut()
                                    .import_prefix(tokens, blocks)
                                    .is_ok();
                                tier.release(key);
                                if installed {
                                    let work = StepWork {
                                        swapped_blocks: nblocks,
                                        ..StepWork::default()
                                    };
                                    inject_at += self.replicas[d.replica]
                                        .engine()
                                        .executor()
                                        .cost
                                        .step_latency(&work);
                                    if let Some(m) = &self.handoff_metrics {
                                        m.tier_installs.inc();
                                    }
                                }
                            }
                        }
                    }
                    self.clocks[d.replica] = self.clocks[d.replica].max(inject_at);
                    let stub_phase = disaggregated
                        && self.roles[d.replica] == ReplicaRole::Prefill
                        && req.output_len > 1;
                    if stub_phase {
                        stubs.insert(
                            req.id,
                            PendingStub {
                                arrival: req.arrival,
                                prompt: req.prompt.clone(),
                                output_len: req.output_len,
                            },
                        );
                        let stub = GenerationRequest::greedy(1)
                            .with_ignore_eos()
                            .with_seed(req.id);
                        self.replicas[d.replica]
                            .engine_mut()
                            .add_generation_request_at(
                                req.id.to_string(),
                                req.prompt.clone(),
                                &stub,
                                inject_at,
                            )
                            .expect("stub admitted");
                    } else {
                        self.replicas[d.replica]
                            .engine_mut()
                            .add_generation_request_at(
                                req.id.to_string(),
                                req.prompt.clone(),
                                &req.request(),
                                inject_at,
                            )
                            .expect("request admitted");
                    }
                    continue;
                }
            }
            // Otherwise advance the furthest-behind busy replica one step.
            let Some(i) = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.engine().has_unfinished())
                .map(|(i, _)| i)
                .min_by(|&a, &b| self.clocks[a].total_cmp(&self.clocks[b]))
            else {
                break; // Trace exhausted and every replica drained.
            };
            let (outs, elapsed) = {
                let engine = self.replicas[i].engine_mut();
                engine.advance_clock_to(self.clocks[i]);
                let before = engine.clock();
                let outs = engine.step().expect("busy replica steps");
                (outs, engine.clock() - before)
            };
            self.clocks[i] += elapsed.max(1e-9);
            for o in outs {
                let base_id: u64 = o
                    .request_id
                    .split('.')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(u64::MAX);
                if let Some(stub) = stubs.remove(&base_id) {
                    // Prompt phase done on the prefill replica: the stub's
                    // finish IS the first token. Hand the KV off.
                    let first = o.first_token_time.unwrap_or(o.finish_time);
                    ttfts.push(first - stub.arrival);
                    let t0 = o
                        .outputs
                        .first()
                        .and_then(|c| c.tokens.first().copied())
                        .unwrap_or(0);
                    let mut prompt = stub.prompt;
                    prompt.push(t0);
                    // Longest block-aligned strict prefix of the resumed
                    // prompt: what the decode replica can install verbatim.
                    let keep = ((prompt.len() - 1) / bs) * bs;
                    let nblocks = keep / bs;
                    let snaps = self.refresh_snapshots();
                    let target = self.router.route_decode(&snaps);
                    let mut ready = o.finish_time;
                    let mut prefix = None;
                    if nblocks > 0 {
                        // The simulator models timing, not tensor content:
                        // empty-bodied payloads stand in for the serialized
                        // KV (`HandoffPayload` carries real bytes in the
                        // frontend path).
                        let payload = vec![KvBlockBytes::empty(); nblocks];
                        if let Some(tier) = &mut self.tier {
                            tier.publish(&prompt[..keep], payload.clone());
                        }
                        if target != i {
                            ready += self.transfer_delay(target, nblocks);
                        }
                        if let Ok(pid) = self.replicas[target]
                            .engine_mut()
                            .import_prefix(prompt[..keep].to_vec(), payload)
                        {
                            prefix = Some((target, pid));
                        }
                        handoff_blocks += nblocks as u64;
                    }
                    handoffs += 1;
                    if let Some(m) = &self.handoff_metrics {
                        m.handoffs.inc();
                        m.blocks.inc_by(nblocks as u64);
                    }
                    decode_meta.insert(
                        base_id,
                        DecodeMeta {
                            arrival: stub.arrival,
                            output_len: stub.output_len,
                            prefix,
                        },
                    );
                    reinjects.push(DecodeInject {
                        at: ready,
                        id: base_id,
                        replica: target,
                        prompt,
                        remaining: stub.output_len - 1,
                    });
                } else if let Some(meta) = decode_meta.remove(&base_id) {
                    // Decode phase done: the request's latency spans both
                    // phases plus the transfer; the imported prefix is
                    // released so the decode pool does not leak blocks.
                    latency.record(meta.arrival, o.finish_time, meta.output_len as f64);
                    if let Some((replica, pid)) = meta.prefix {
                        self.replicas[replica]
                            .engine_mut()
                            .release_prefix(pid)
                            .expect("imported prefix releases");
                    }
                } else {
                    if let Some(first) = o.first_token_time {
                        ttfts.push(first - o.arrival_time);
                    }
                    latency.record(o.arrival_time, o.finish_time, o.mean_output_len());
                }
            }
        }
        ttfts.sort_by(f64::total_cmp);
        let ttft_pct = |p: f64| -> f64 {
            if ttfts.is_empty() {
                0.0
            } else {
                let idx = ((p / 100.0) * (ttfts.len() - 1) as f64).round() as usize;
                ttfts[idx.min(ttfts.len() - 1)]
            }
        };
        let tier_stats = self.tier.as_ref().map(|t| t.stats()).unwrap_or_default();
        let stats = self.router.stats();
        let duration = self.clocks.iter().copied().fold(0.0, f64::max);
        ClusterReport {
            policy: self.router.config().policy.name().to_string(),
            num_replicas: self.replicas.len(),
            num_requests,
            num_finished: latency.num_requests(),
            duration,
            throughput: if duration > 0.0 {
                latency.num_requests() as f64 / duration
            } else {
                0.0
            },
            norm_lat_mean: latency.mean_normalized_latency().unwrap_or(0.0),
            norm_lat_p50: latency.percentile_normalized_latency(50.0).unwrap_or(0.0),
            norm_lat_p90: latency.percentile_normalized_latency(90.0).unwrap_or(0.0),
            norm_lat_p99: latency.percentile_normalized_latency(99.0).unwrap_or(0.0),
            routed_per_replica: stats.routed.clone(),
            failovers: stats.failovers,
            affinity_hits: stats.affinity_hits,
            prefix_cache_hits: stats.prefix_cache_hits,
            cache_hit_rate: if num_requests > 0 {
                stats.prefix_cache_hits as f64 / num_requests as f64
            } else {
                0.0
            },
            assignments,
            disaggregated,
            ttft_mean: if ttfts.is_empty() {
                0.0
            } else {
                ttfts.iter().sum::<f64>() / ttfts.len() as f64
            },
            ttft_p50: ttft_pct(50.0),
            ttft_p99: ttft_pct(99.0),
            handoffs,
            handoff_blocks,
            decode_routed_per_replica: stats.decode_routed.clone(),
            tier_hits: tier_stats.hits,
            tier_misses: tier_stats.misses,
            tier_hit_rate: if tier_stats.hits + tier_stats.misses > 0 {
                tier_stats.hits as f64 / (tier_stats.hits + tier_stats.misses) as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RoutePolicy;
    use vllm_core::PreemptionMode;
    use vllm_sim::{sim_prompt_tokens, ServerConfig};

    fn small_replica() -> VllmSimSystem {
        let mut cfg = ServerConfig::opt_13b_1gpu();
        cfg.gpu.mem_bytes_per_gpu = 28.5e9; // ~1.3K KV slots.
        VllmSimSystem::new(cfg, 16, PreemptionMode::Recompute)
    }

    fn trace(n: u64, rate: f64) -> Vec<ClusterRequest> {
        (0..n)
            .map(|i| ClusterRequest {
                id: i,
                arrival: i as f64 / rate,
                prompt: sim_prompt_tokens(i, 64),
                output_len: 24,
            })
            .collect()
    }

    #[test]
    fn cluster_finishes_every_request() {
        let replicas = vec![small_replica(), small_replica()];
        let mut cluster =
            ClusterSystem::new(replicas, RouterConfig::new(RoutePolicy::JoinShortestQueue));
        let report = cluster.run(trace(12, 2.0));
        assert_eq!(report.num_finished, 12);
        assert_eq!(report.routed_per_replica.iter().sum::<u64>(), 12);
        assert!(report.throughput > 0.0);
        assert!(report.norm_lat_p99 >= report.norm_lat_p50);
    }

    #[test]
    fn affinity_routes_to_prefix_holder() {
        let replicas = vec![small_replica(), small_replica()];
        let mut cluster =
            ClusterSystem::new(replicas, RouterConfig::new(RoutePolicy::PrefixAffinity));
        // Replica 1 holds a 32-token (two-block) shared prefix.
        let prefix = sim_prompt_tokens(999, 32);
        cluster.register_prefix(1, prefix.clone());
        let reqs: Vec<ClusterRequest> = (0..6)
            .map(|i| {
                let mut prompt = prefix.clone();
                prompt.extend(sim_prompt_tokens(i, 32));
                ClusterRequest {
                    id: i,
                    arrival: i as f64,
                    prompt,
                    output_len: 8,
                }
            })
            .collect();
        let report = cluster.run(reqs);
        assert_eq!(report.num_finished, 6);
        assert_eq!(report.affinity_hits, 6);
        assert_eq!(report.prefix_cache_hits, 6);
        assert_eq!(report.routed_per_replica, vec![0, 6]);
        // The router counters round-trip through the merged exposition.
        let merged = cluster.merged_snapshot();
        assert_eq!(
            merged.counter("vllm_cluster_requests_routed_total"),
            Some(6)
        );
        assert_eq!(merged.counter("vllm_cluster_affinity_hits_total"), Some(6));
        let text = merged.to_prometheus_text();
        let parsed = MetricsSnapshot::from_prometheus_text(&text).expect("parses");
        assert_eq!(parsed, merged);
    }

    #[test]
    fn disaggregated_fleet_hands_off_and_reuses_tier() {
        let replicas = (0..4).map(|_| small_replica()).collect();
        let cfg = ClusterConfig::disaggregated(2, 2).with_prefix_tier_blocks(256);
        let mut cluster = ClusterSystem::with_config(replicas, cfg);
        // Turn 1 of a conversation, then a follow-up turn that extends the
        // full prior context (ShareGPT-style multi-turn).
        let base = sim_prompt_tokens(0, 64);
        let mut follow = base.clone();
        follow.extend(sim_prompt_tokens(1, 32));
        let reqs = vec![
            ClusterRequest {
                id: 0,
                arrival: 0.0,
                prompt: base,
                output_len: 8,
            },
            ClusterRequest {
                id: 1,
                arrival: 50.0,
                prompt: follow,
                output_len: 8,
            },
        ];
        let report = cluster.run(reqs);
        assert!(report.disaggregated);
        assert_eq!(report.num_finished, 2);
        assert_eq!(report.handoffs, 2);
        assert!(report.handoff_blocks > 0);
        // New requests land only on prefill replicas; handoffs only on
        // decode replicas.
        assert_eq!(
            report.routed_per_replica[2] + report.routed_per_replica[3],
            0
        );
        assert_eq!(report.decode_routed_per_replica.iter().sum::<u64>(), 2);
        assert_eq!(
            report.decode_routed_per_replica[0] + report.decode_routed_per_replica[1],
            0
        );
        // The follow-up turn found turn 1's KV in the shared tier.
        assert_eq!(report.tier_hits, 1);
        assert!(report.tier_hit_rate > 0.0);
        assert!(report.ttft_p99 > 0.0);
        assert!(report.ttft_p50 <= report.ttft_p99);
        // Decode replicas released every imported prefix: zero leaks.
        for r in &cluster.replicas()[2..] {
            let bm = r.engine().scheduler().block_manager();
            assert_eq!(bm.num_free_gpu_blocks(), bm.num_total_gpu_blocks());
        }
        // Prefill replicas hold exactly the tier-installed prefix (4 blocks
        // of the 64-token turn-1 context), nothing else.
        let resident: usize = cluster.replicas()[..2]
            .iter()
            .map(|r| {
                let bm = r.engine().scheduler().block_manager();
                bm.num_total_gpu_blocks() - bm.num_free_gpu_blocks()
            })
            .sum();
        assert_eq!(resident, 4);
        // Handoff + tier counters round-trip through the merged exposition.
        let merged = cluster.merged_snapshot();
        assert_eq!(merged.counter("vllm_cluster_handoffs_total"), Some(2));
        assert_eq!(merged.counter("vllm_prefix_tier_hits_total"), Some(1));
        assert_eq!(
            merged.counter("vllm_cluster_handoff_tier_installs_total"),
            Some(1)
        );
    }

    #[test]
    fn disaggregated_runs_are_deterministic() {
        let run = || {
            let replicas = (0..4).map(|_| small_replica()).collect();
            let cfg = ClusterConfig::disaggregated(2, 2).with_prefix_tier_blocks(128);
            let mut cluster = ClusterSystem::with_config(replicas, cfg);
            let r = cluster.run(trace(10, 4.0));
            (r.assignments.clone(), r.duration, r.ttft_p99, r.handoffs)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unified_fleet_reports_ttft() {
        let replicas = vec![small_replica(), small_replica()];
        let mut cluster =
            ClusterSystem::new(replicas, RouterConfig::new(RoutePolicy::JoinShortestQueue));
        let report = cluster.run(trace(8, 2.0));
        assert!(!report.disaggregated);
        assert_eq!(report.handoffs, 0);
        assert!(report.ttft_mean > 0.0);
        assert!(report.ttft_p50 <= report.ttft_p99);
        assert_eq!(report.tier_hits + report.tier_misses, 0);
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let run = || {
            let replicas = vec![small_replica(), small_replica()];
            let mut cluster =
                ClusterSystem::new(replicas, RouterConfig::new(RoutePolicy::JoinShortestQueue));
            let r = cluster.run(trace(10, 4.0));
            (r.assignments.clone(), r.duration, r.norm_lat_mean)
        };
        assert_eq!(run(), run());
    }
}
