//! Discrete-event simulation of a replica cluster.
//!
//! [`ClusterSystem`] drives N [`VllmSimSystem`] instances (real engines,
//! cost-model executors) under one arrival trace. Each replica keeps its own
//! virtual clock; the driver alternates between injecting the next arrival
//! (whenever it precedes every busy replica's clock) and stepping the
//! furthest-behind busy replica, so replicas only interact through the
//! router — exactly the independence a real fleet has. Throughput-scaling
//! and affinity-hit-rate curves come out analytically, with no threads and
//! full determinism.

use std::sync::Arc;

use vllm_baselines::types::{BatchSystem, StepWork};
use vllm_core::telemetry::{MetricsSnapshot, Telemetry};
use vllm_core::{chunk_hashes, GenerationRequest, LatencyTracker, TokenId};
use vllm_sim::VllmSimSystem;

use crate::router::{ReplicaSnapshot, RouteDecision, Router, RouterConfig};
use crate::stats::merge_labeled;

/// One request of a cluster trace.
#[derive(Debug, Clone)]
pub struct ClusterRequest {
    /// Request id (unique within the trace; also the sampling seed).
    pub id: u64,
    /// Arrival time in virtual seconds.
    pub arrival: f64,
    /// Prompt tokens (the router hashes their leading block chunks).
    pub prompt: Vec<TokenId>,
    /// Scripted output length in tokens.
    pub output_len: usize,
}

impl ClusterRequest {
    /// The typed generation request this trace entry describes: greedy
    /// decoding of the scripted length, seeded with the request id, never
    /// stopping early on EOS (so simulated lengths stay scripted).
    #[must_use]
    pub fn request(&self) -> GenerationRequest {
        GenerationRequest::greedy(self.output_len)
            .with_ignore_eos()
            .with_seed(self.id)
    }
}

/// Aggregated outcome of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Routing policy name.
    pub policy: String,
    /// Number of replicas.
    pub num_replicas: usize,
    /// Requests injected.
    pub num_requests: usize,
    /// Requests finished (always equal to injected — nothing is dropped).
    pub num_finished: usize,
    /// Makespan: the latest replica clock when the cluster drained.
    pub duration: f64,
    /// Finished requests per virtual second.
    pub throughput: f64,
    /// Mean normalized latency (s/token, §6.1) across the cluster.
    pub norm_lat_mean: f64,
    /// Median normalized latency.
    pub norm_lat_p50: f64,
    /// 90th percentile normalized latency.
    pub norm_lat_p90: f64,
    /// 99th percentile normalized latency.
    pub norm_lat_p99: f64,
    /// Requests routed to each replica, in index order.
    pub routed_per_replica: Vec<u64>,
    /// Requests redirected away from an unhealthy replica.
    pub failovers: u64,
    /// Requests placed by prefix affinity.
    pub affinity_hits: u64,
    /// Requests whose chosen replica already held leading prompt chunks.
    pub prefix_cache_hits: u64,
    /// `prefix_cache_hits / num_requests` (0 for an empty trace).
    pub cache_hit_rate: f64,
    /// Replica chosen for each request, in injection order (determinism
    /// checks compare these across runs).
    pub assignments: Vec<(u64, usize)>,
}

/// N simulated engine replicas behind one router.
pub struct ClusterSystem {
    replicas: Vec<VllmSimSystem>,
    router: Router,
    clocks: Vec<f64>,
    block_size: usize,
    coverage: Vec<Arc<Vec<u64>>>,
    coverage_versions: Vec<Option<u64>>,
    telemetry: Arc<Telemetry>,
}

impl ClusterSystem {
    /// Builds a cluster over already-configured replicas.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    #[must_use]
    pub fn new(replicas: Vec<VllmSimSystem>, cfg: RouterConfig) -> Self {
        assert!(!replicas.is_empty(), "cluster needs at least one replica");
        let n = replicas.len();
        let block_size = replicas[0].engine().cache_config().block_size;
        let telemetry = Arc::new(Telemetry::new());
        let mut router = Router::new(cfg, n);
        router.attach_telemetry(&telemetry);
        Self {
            replicas,
            router,
            clocks: vec![0.0; n],
            block_size,
            coverage: (0..n).map(|_| Arc::new(Vec::new())).collect(),
            coverage_versions: vec![None; n],
            telemetry,
        }
    }

    /// Registers a shared prefix on one replica (its KV cache is pinned
    /// there, and the router's coverage view picks it up).
    ///
    /// # Panics
    ///
    /// Panics if the prefix cannot be pinned.
    pub fn register_prefix(&mut self, replica: usize, tokens: Vec<TokenId>) {
        self.replicas[replica].register_prefix(tokens);
    }

    /// The router (policy, health, counters).
    #[must_use]
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The cluster-level telemetry bundle (router counters).
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// One merged snapshot: per-replica engine metrics under
    /// `{replica="i"}` labels plus the unlabeled `vllm_cluster_*` router
    /// counters.
    #[must_use]
    pub fn merged_snapshot(&self) -> MetricsSnapshot {
        let parts: Vec<(String, MetricsSnapshot)> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| (i.to_string(), r.engine().metrics_snapshot()))
            .collect();
        let mut merged = merge_labeled(&parts);
        merged
            .metrics
            .extend(self.telemetry.registry().snapshot().metrics);
        merged.metrics.sort_by(|a, b| a.name.cmp(&b.name));
        merged
    }

    fn refresh_snapshots(&mut self) -> Vec<ReplicaSnapshot> {
        for (i, r) in self.replicas.iter().enumerate() {
            let version = r.engine().prefix_pool().version();
            if self.coverage_versions[i] != Some(version) {
                self.coverage_versions[i] = Some(version);
                self.coverage[i] = Arc::new(r.engine().prefix_coverage());
            }
        }
        self.replicas
            .iter()
            .enumerate()
            .map(|(i, r)| ReplicaSnapshot {
                load: r.engine().load_snapshot(),
                coverage: Arc::clone(&self.coverage[i]),
            })
            .collect()
    }

    fn route(&mut self, req: &ClusterRequest) -> RouteDecision {
        let hashes = chunk_hashes(&req.prompt, self.block_size);
        let snaps = self.refresh_snapshots();
        self.router.route(&hashes, &snaps)
    }

    /// Runs the trace to completion and reports aggregate metrics.
    ///
    /// # Panics
    ///
    /// Panics if a request is rejected by its replica (oversized prompt).
    pub fn run(&mut self, mut requests: Vec<ClusterRequest>) -> ClusterReport {
        requests.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        let num_requests = requests.len();
        let mut latency = LatencyTracker::new();
        let mut assignments = Vec::with_capacity(num_requests);
        let mut next = 0;
        let mut cost = |_: &StepWork| 0.0;
        loop {
            let min_busy_clock = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.has_unfinished())
                .map(|(i, _)| self.clocks[i])
                .min_by(f64::total_cmp);
            // Inject the next arrival when no replica's pending step could
            // precede it (idle replicas fast-forward to the arrival).
            if next < requests.len() && min_busy_clock.is_none_or(|c| requests[next].arrival <= c) {
                let req = &requests[next];
                let d = self.route(req);
                assignments.push((req.id, d.replica));
                self.clocks[d.replica] = self.clocks[d.replica].max(req.arrival);
                self.replicas[d.replica]
                    .engine_mut()
                    .add_generation_request_at(
                        req.id.to_string(),
                        req.prompt.clone(),
                        &req.request(),
                        req.arrival,
                    )
                    .expect("request admitted");
                next += 1;
                continue;
            }
            // Otherwise advance the furthest-behind busy replica one step.
            let Some(i) = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.has_unfinished())
                .map(|(i, _)| i)
                .min_by(|&a, &b| self.clocks[a].total_cmp(&self.clocks[b]))
            else {
                break; // Trace exhausted and every replica drained.
            };
            let step = self.replicas[i]
                .step(self.clocks[i], &mut cost)
                .expect("busy replica steps");
            self.clocks[i] += step.elapsed.max(1e-9);
            for f in &step.finished {
                latency.record(f.arrival, f.finish, f.output_len as f64);
            }
        }
        let stats = self.router.stats();
        let duration = self.clocks.iter().copied().fold(0.0, f64::max);
        ClusterReport {
            policy: self.router.config().policy.name().to_string(),
            num_replicas: self.replicas.len(),
            num_requests,
            num_finished: latency.num_requests(),
            duration,
            throughput: if duration > 0.0 {
                latency.num_requests() as f64 / duration
            } else {
                0.0
            },
            norm_lat_mean: latency.mean_normalized_latency().unwrap_or(0.0),
            norm_lat_p50: latency.percentile_normalized_latency(50.0).unwrap_or(0.0),
            norm_lat_p90: latency.percentile_normalized_latency(90.0).unwrap_or(0.0),
            norm_lat_p99: latency.percentile_normalized_latency(99.0).unwrap_or(0.0),
            routed_per_replica: stats.routed.clone(),
            failovers: stats.failovers,
            affinity_hits: stats.affinity_hits,
            prefix_cache_hits: stats.prefix_cache_hits,
            cache_hit_rate: if num_requests > 0 {
                stats.prefix_cache_hits as f64 / num_requests as f64
            } else {
                0.0
            },
            assignments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RoutePolicy;
    use vllm_core::PreemptionMode;
    use vllm_sim::{sim_prompt_tokens, ServerConfig};

    fn small_replica() -> VllmSimSystem {
        let mut cfg = ServerConfig::opt_13b_1gpu();
        cfg.gpu.mem_bytes_per_gpu = 28.5e9; // ~1.3K KV slots.
        VllmSimSystem::new(cfg, 16, PreemptionMode::Recompute)
    }

    fn trace(n: u64, rate: f64) -> Vec<ClusterRequest> {
        (0..n)
            .map(|i| ClusterRequest {
                id: i,
                arrival: i as f64 / rate,
                prompt: sim_prompt_tokens(i, 64),
                output_len: 24,
            })
            .collect()
    }

    #[test]
    fn cluster_finishes_every_request() {
        let replicas = vec![small_replica(), small_replica()];
        let mut cluster =
            ClusterSystem::new(replicas, RouterConfig::new(RoutePolicy::JoinShortestQueue));
        let report = cluster.run(trace(12, 2.0));
        assert_eq!(report.num_finished, 12);
        assert_eq!(report.routed_per_replica.iter().sum::<u64>(), 12);
        assert!(report.throughput > 0.0);
        assert!(report.norm_lat_p99 >= report.norm_lat_p50);
    }

    #[test]
    fn affinity_routes_to_prefix_holder() {
        let replicas = vec![small_replica(), small_replica()];
        let mut cluster =
            ClusterSystem::new(replicas, RouterConfig::new(RoutePolicy::PrefixAffinity));
        // Replica 1 holds a 32-token (two-block) shared prefix.
        let prefix = sim_prompt_tokens(999, 32);
        cluster.register_prefix(1, prefix.clone());
        let reqs: Vec<ClusterRequest> = (0..6)
            .map(|i| {
                let mut prompt = prefix.clone();
                prompt.extend(sim_prompt_tokens(i, 32));
                ClusterRequest {
                    id: i,
                    arrival: i as f64,
                    prompt,
                    output_len: 8,
                }
            })
            .collect();
        let report = cluster.run(reqs);
        assert_eq!(report.num_finished, 6);
        assert_eq!(report.affinity_hits, 6);
        assert_eq!(report.prefix_cache_hits, 6);
        assert_eq!(report.routed_per_replica, vec![0, 6]);
        // The router counters round-trip through the merged exposition.
        let merged = cluster.merged_snapshot();
        assert_eq!(
            merged.counter("vllm_cluster_requests_routed_total"),
            Some(6)
        );
        assert_eq!(merged.counter("vllm_cluster_affinity_hits_total"), Some(6));
        let text = merged.to_prometheus_text();
        let parsed = MetricsSnapshot::from_prometheus_text(&text).expect("parses");
        assert_eq!(parsed, merged);
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let run = || {
            let replicas = vec![small_replica(), small_replica()];
            let mut cluster =
                ClusterSystem::new(replicas, RouterConfig::new(RoutePolicy::JoinShortestQueue));
            let r = cluster.run(trace(10, 4.0));
            (r.assignments.clone(), r.duration, r.norm_lat_mean)
        };
        assert_eq!(run(), run());
    }
}
