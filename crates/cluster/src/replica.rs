//! An engine replica on its own thread.
//!
//! This is the engine-loop machinery the TCP frontend used to own privately:
//! requests arrive over a channel, the loop admits them, runs iterations,
//! and routes finished outputs back to per-request reply channels. Extracted
//! here so the cluster frontend can run N loops behind one router, each
//! publishing the load/coverage snapshots routing policies consume.
//!
//! Shutdown semantics: setting the shutdown flag stops *admission of new
//! work from connections* at the server layer, but the loop itself keeps
//! stepping until every queued and in-flight request has finished (and the
//! channel backlog is drained), so no accepted request is ever dropped.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use vllm_core::telemetry::Telemetry;
use vllm_core::{LlmEngine, ModelExecutor, RequestOutput, SamplingParams};

/// A snapshot of serving state published by a replica's engine loop after
/// every iteration (the `/metrics` analog of production servers).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Queued requests not yet admitted.
    pub waiting: usize,
    /// Requests currently running.
    pub running: usize,
    /// Requests swapped out to CPU memory.
    pub swapped: usize,
    /// Estimated tokens of work still owed to admitted requests (prefill
    /// remainder plus decode budget; the join-shortest-queue signal).
    pub outstanding_tokens: u64,
    /// Free KV blocks in the GPU pool.
    pub free_blocks: usize,
    /// Total KV blocks in the GPU pool.
    pub total_blocks: usize,
    /// Requests completed since startup.
    pub finished: u64,
    /// Preemptions since startup.
    pub preemptions: u64,
    /// Engine steps executed since startup.
    pub steps: u64,
    /// Tokens scheduled across all steps.
    pub tokens_scheduled: u64,
    /// Copy-on-write block copies across all steps.
    pub blocks_copied: u64,
    /// Blocks swapped (in + out) across all steps.
    pub blocks_swapped: u64,
    /// Cumulative host seconds in the schedule stage.
    pub schedule_time: f64,
    /// Cumulative host seconds in the prepare stage.
    pub prepare_time: f64,
    /// Cumulative host seconds in the execute stage.
    pub execute_time: f64,
    /// Cumulative host seconds in the postprocess stage.
    pub postprocess_time: f64,
    /// Mean normalized latency over finished requests (s/token, §6.1).
    pub norm_lat_mean: f64,
    /// Median normalized latency.
    pub norm_lat_p50: f64,
    /// 90th percentile normalized latency.
    pub norm_lat_p90: f64,
    /// 99th percentile normalized latency.
    pub norm_lat_p99: f64,
    /// Mean time to first token over finished requests.
    pub ttft_mean: f64,
    /// Median time to first token.
    pub ttft_p50: f64,
    /// 99th percentile time to first token.
    pub ttft_p99: f64,
}

/// A generation request routed to an engine thread. The reply channel
/// receives exactly one [`RequestOutput`]; admission failures are delivered
/// as an output whose `request_id` starts with `error:`.
pub struct EngineRequest {
    /// Globally unique request id (also the engine-side id).
    pub request_id: String,
    /// Tokenized prompt.
    pub prompt: Vec<u32>,
    /// Decoding parameters.
    pub params: SamplingParams,
    /// Where the finished output goes.
    pub reply: Sender<RequestOutput>,
}

/// Handle to an engine running on its own thread.
///
/// Shutdown and join take `&self` (the thread handle sits behind a mutex) so
/// a server can share replicas with its connection handlers via `Arc` and
/// still stop them. Dropping the handle initiates shutdown and joins the
/// thread; because the loop drains first, drop blocks until all accepted
/// requests finish.
pub struct Replica {
    id: usize,
    tx: Sender<EngineRequest>,
    stats: Arc<Mutex<EngineStats>>,
    coverage: Arc<Mutex<Arc<Vec<u64>>>>,
    telemetry: Arc<Telemetry>,
    shutdown: Arc<AtomicBool>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Replica {
    /// Spawns the engine loop for `engine` on a new thread.
    pub fn spawn<E>(id: usize, engine: LlmEngine<E>) -> Self
    where
        E: ModelExecutor + Send + 'static,
    {
        let (tx, rx) = mpsc::channel::<EngineRequest>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Mutex::new(EngineStats::default()));
        let coverage = Arc::new(Mutex::new(Arc::new(Vec::new())));
        let telemetry = Arc::clone(engine.telemetry());
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let coverage = Arc::clone(&coverage);
            std::thread::spawn(move || engine_loop(engine, &rx, &shutdown, &stats, &coverage))
        };
        Self {
            id,
            tx,
            stats,
            coverage,
            telemetry,
            shutdown,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// The replica's index in its pool.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Submits one request to the engine loop. Returns the request back if
    /// the replica's loop has already exited.
    ///
    /// # Errors
    ///
    /// Returns `Err(req)` when the loop is no longer accepting work.
    #[allow(clippy::result_large_err)] // The caller needs the request back to report the failure.
    pub fn submit(&self, req: EngineRequest) -> Result<(), EngineRequest> {
        self.tx.send(req).map_err(|e| e.0)
    }

    /// The latest published stats snapshot.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock()
    }

    /// The latest published prefix coverage (sorted chunk hashes of every
    /// computed prefix in the replica's pool).
    #[must_use]
    pub fn coverage(&self) -> Arc<Vec<u64>> {
        Arc::clone(&self.coverage.lock())
    }

    /// The replica engine's telemetry bundle.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Signals the loop to stop once drained. Non-blocking; pair with
    /// [`join`](Self::join).
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the engine loop to drain and exit.
    pub fn join(&self) {
        let handle = self.thread.lock().take();
        if let Some(t) = handle {
            let _ = t.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.begin_shutdown();
        self.join();
    }
}

/// Builds a serving snapshot from the engine's current state.
fn snapshot_stats<E: ModelExecutor>(engine: &LlmEngine<E>, finished_total: u64) -> EngineStats {
    let scheduler = engine.scheduler();
    let bm = scheduler.block_manager();
    let trace = engine.trace_stats();
    let stage_totals = trace.stage_totals();
    let latency = engine.latency();
    EngineStats {
        waiting: scheduler.num_waiting(),
        running: scheduler.num_running(),
        swapped: scheduler.num_swapped(),
        outstanding_tokens: scheduler.outstanding_tokens(),
        free_blocks: bm.num_free_gpu_blocks(),
        total_blocks: bm.num_total_gpu_blocks(),
        finished: finished_total,
        preemptions: scheduler.stats().num_preemptions,
        steps: trace.num_steps(),
        tokens_scheduled: trace.tokens_scheduled(),
        blocks_copied: trace.blocks_copied(),
        blocks_swapped: trace.blocks_swapped_in() + trace.blocks_swapped_out(),
        schedule_time: stage_totals.schedule,
        prepare_time: stage_totals.prepare,
        execute_time: stage_totals.execute,
        postprocess_time: stage_totals.postprocess,
        norm_lat_mean: latency.mean_normalized_latency().unwrap_or(0.0),
        norm_lat_p50: latency.percentile_normalized_latency(50.0).unwrap_or(0.0),
        norm_lat_p90: latency.percentile_normalized_latency(90.0).unwrap_or(0.0),
        norm_lat_p99: latency.percentile_normalized_latency(99.0).unwrap_or(0.0),
        ttft_mean: latency.mean_ttft().unwrap_or(0.0),
        ttft_p50: latency.percentile_ttft(50.0).unwrap_or(0.0),
        ttft_p99: latency.percentile_ttft(99.0).unwrap_or(0.0),
    }
}

/// The engine loop: drain new requests, run one iteration, route finished
/// outputs back to their reply channels.
///
/// A fresh [`EngineStats`] snapshot (and refreshed telemetry gauges) is
/// published on startup, after admitting requests, after every iteration,
/// and when the engine drains — never only at step boundaries, so load
/// queries reflect completions even while the loop sits idle. The prefix
/// coverage snapshot is recomputed only when the pool's version changes.
///
/// The loop exits when the shutdown flag is set (or every sender is gone)
/// *and* all accepted work has finished.
fn engine_loop<E: ModelExecutor>(
    mut engine: LlmEngine<E>,
    rx: &Receiver<EngineRequest>,
    shutdown: &AtomicBool,
    stats: &Mutex<EngineStats>,
    coverage: &Mutex<Arc<Vec<u64>>>,
) {
    let mut pending: Vec<(String, Sender<RequestOutput>)> = Vec::new();
    let mut finished_total: u64 = 0;
    let mut coverage_version: Option<u64> = None;
    // Seed the snapshot (and the registry's gauges) so load/metrics queries
    // are meaningful before the first request arrives.
    let _ = engine.metrics_snapshot();
    *stats.lock() = snapshot_stats(&engine, finished_total);
    loop {
        if coverage_version != Some(engine.prefix_pool().version()) {
            coverage_version = Some(engine.prefix_pool().version());
            *coverage.lock() = Arc::new(engine.prefix_coverage());
        }
        // Admit everything that arrived since the last iteration. A closed
        // channel is not an exit condition by itself: accepted work still
        // drains below.
        let mut admitted = false;
        let mut disconnected = false;
        loop {
            match rx.try_recv() {
                Ok(req) => {
                    match engine.add_request(req.request_id.clone(), req.prompt, req.params) {
                        Ok(()) => {
                            pending.push((req.request_id, req.reply));
                            admitted = true;
                        }
                        Err(e) => {
                            // Deliver the failure as an empty output.
                            let _ = req.reply.send(RequestOutput {
                                request_id: format!("error: {e}"),
                                prompt_len: 0,
                                outputs: Vec::new(),
                                arrival_time: 0.0,
                                finish_time: 0.0,
                                first_token_time: None,
                                num_preemptions: 0,
                            });
                        }
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if admitted {
            *stats.lock() = snapshot_stats(&engine, finished_total);
        }
        if !engine.has_unfinished() {
            if shutdown.load(Ordering::SeqCst) || disconnected {
                break; // Drained: nothing queued, nothing in flight.
            }
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let outputs = match engine.step() {
            Ok(outputs) => outputs,
            Err(e) => {
                // An engine error is fatal for the serving loop.
                eprintln!("engine error: {e}");
                return;
            }
        };
        for out in outputs {
            finished_total += 1;
            if let Some(pos) = pending.iter().position(|(id, _)| *id == out.request_id) {
                let (_, reply) = pending.swap_remove(pos);
                let _ = reply.send(out);
            }
        }
        // Publish a fresh snapshot; on the drain step this already reflects
        // the final completions, so an idle engine never serves stale counts.
        *stats.lock() = snapshot_stats(&engine, finished_total);
    }
    *stats.lock() = snapshot_stats(&engine, finished_total);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use vllm_core::mock::MockExecutor;
    use vllm_core::{CacheConfig, SchedulerConfig};

    fn small_engine() -> LlmEngine<MockExecutor> {
        let cache = CacheConfig::new(4, 64, 16).unwrap();
        let sched = SchedulerConfig::new(512, 16, 256).unwrap();
        LlmEngine::new(MockExecutor::new(1000), cache, sched)
    }

    #[test]
    fn replica_serves_and_publishes_stats() {
        let replica = Replica::spawn(0, small_engine());
        let (reply_tx, reply_rx) = mpsc::channel();
        replica
            .submit(EngineRequest {
                request_id: "r0".into(),
                prompt: vec![1, 2, 3, 4, 5],
                params: SamplingParams::greedy(4),
                reply: reply_tx,
            })
            .ok()
            .expect("accepting");
        let out = reply_rx.recv().expect("one output");
        assert_eq!(out.request_id, "r0");
        assert_eq!(out.outputs.len(), 1);
        // The published snapshot catches up with the completion.
        for _ in 0..200 {
            if replica.stats().finished == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(replica.stats().finished, 1);
        assert!(replica.stats().total_blocks > 0);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let replica = Replica::spawn(0, small_engine());
        let mut replies = Vec::new();
        for i in 0..4 {
            let (reply_tx, reply_rx) = mpsc::channel();
            replica
                .submit(EngineRequest {
                    request_id: format!("r{i}"),
                    prompt: vec![1, 2, 3, 4, 5, 6, 7, 8],
                    params: SamplingParams::greedy(6),
                    reply: reply_tx,
                })
                .ok()
                .expect("accepting");
            replies.push(reply_rx);
        }
        // Shut down immediately: every accepted request must still finish.
        replica.begin_shutdown();
        replica.join();
        for rx in replies {
            let out = rx.recv().expect("drained output");
            assert!(!out.request_id.starts_with("error:"));
            assert_eq!(out.outputs.len(), 1);
        }
        assert_eq!(replica.stats().finished, 4);
    }
}
