//! An engine replica on its own thread.
//!
//! This is the engine-loop machinery the TCP frontend used to own privately:
//! requests arrive over a channel, the loop admits them, runs iterations,
//! and routes finished outputs back to per-request reply channels. Extracted
//! here so the cluster frontend can run N loops behind one router, each
//! publishing the load/coverage snapshots routing policies consume.
//!
//! Shutdown semantics: setting the shutdown flag stops *admission of new
//! work from connections* at the server layer, but the loop itself keeps
//! stepping until every queued and in-flight request has finished (and the
//! channel backlog is drained), so no accepted request is ever dropped.
//!
//! Degradation semantics (PR 5):
//!
//! * Replies are typed: `Result<RequestOutput, VllmError>`, so admission
//!   failures and degradation outcomes carry their [`vllm_core::ErrorKind`]
//!   and retryability to the caller instead of being smuggled through a
//!   sentinel request id.
//! * Admission is bounded: when the number of in-flight requests reaches
//!   the replica's capacity, new submissions are answered with
//!   [`VllmError::Rejected`] (`retry_after` hint) rather than queued
//!   silently — callers see backpressure and can re-route.
//! * An engine step error is no longer fatal: the loop aborts every live
//!   request (restoring exact block accounting), answers each in-flight
//!   reply with a retryable [`VllmError::Unavailable`], and keeps serving.
//! * A kill switch ([`Replica::inject_kill`]) makes the loop die abruptly —
//!   in-flight replies get [`VllmError::Unavailable`] — so routers and
//!   frontends can be exercised against replica loss.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use vllm_core::telemetry::Telemetry;
use vllm_core::{
    GenerationRequest, KvBlockBytes, LlmEngine, ModelExecutor, PrefixId, RequestOutput, VllmError,
};

/// Default bound on requests a replica holds in flight (queued + running)
/// before it answers submissions with [`VllmError::Rejected`].
pub const DEFAULT_MAX_INFLIGHT: usize = 1024;

/// The `retry_after` hint (seconds) carried by backpressure rejections.
pub const REJECT_RETRY_AFTER: f64 = 0.05;

/// A snapshot of serving state published by a replica's engine loop after
/// every iteration (the `/metrics` analog of production servers).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Queued requests not yet admitted.
    pub waiting: usize,
    /// Requests currently running.
    pub running: usize,
    /// Requests swapped out to CPU memory.
    pub swapped: usize,
    /// Estimated tokens of work still owed to admitted requests (prefill
    /// remainder plus decode budget; the join-shortest-queue signal).
    pub outstanding_tokens: u64,
    /// Free KV blocks in the GPU pool.
    pub free_blocks: usize,
    /// Total KV blocks in the GPU pool.
    pub total_blocks: usize,
    /// Requests completed since startup.
    pub finished: u64,
    /// Preemptions since startup.
    pub preemptions: u64,
    /// Engine steps executed since startup.
    pub steps: u64,
    /// Tokens scheduled across all steps.
    pub tokens_scheduled: u64,
    /// Copy-on-write block copies across all steps.
    pub blocks_copied: u64,
    /// Blocks swapped (in + out) across all steps.
    pub blocks_swapped: u64,
    /// Cumulative host seconds in the schedule stage.
    pub schedule_time: f64,
    /// Cumulative host seconds in the prepare stage.
    pub prepare_time: f64,
    /// Cumulative host seconds in the execute stage.
    pub execute_time: f64,
    /// Cumulative host seconds in the postprocess stage.
    pub postprocess_time: f64,
    /// Mean normalized latency over finished requests (s/token, §6.1).
    pub norm_lat_mean: f64,
    /// Median normalized latency.
    pub norm_lat_p50: f64,
    /// 90th percentile normalized latency.
    pub norm_lat_p90: f64,
    /// 99th percentile normalized latency.
    pub norm_lat_p99: f64,
    /// Mean time to first token over finished requests.
    pub ttft_mean: f64,
    /// Median time to first token.
    pub ttft_p50: f64,
    /// 99th percentile time to first token.
    pub ttft_p99: f64,
}

/// The typed reply a submitted request eventually receives.
pub type EngineReply = Result<RequestOutput, VllmError>;

/// A generation request routed to an engine thread. The reply channel
/// receives exactly one [`EngineReply`]: the finished output, or a typed
/// error (admission failure, backpressure rejection, replica loss).
pub struct EngineRequest {
    /// Globally unique request id (also the engine-side id).
    pub request_id: String,
    /// Tokenized prompt.
    pub prompt: Vec<u32>,
    /// Typed request description (decoding mode, limits, deadline,
    /// priority).
    pub request: GenerationRequest,
    /// Where the finished output (or typed failure) goes.
    pub reply: Sender<EngineReply>,
}

/// A prefix-cache operation routed to an engine thread: the engine-side
/// control plane of the KV handoff and the cluster-shared prefix tier.
/// Unlike generation requests, prefix ops are handled synchronously at the
/// next admission pass and are exempt from the in-flight bound — the control
/// plane must not starve behind data-plane backpressure.
#[derive(Debug, Clone)]
pub enum PrefixOp {
    /// Pin and compute a block-aligned prefix in the replica's pool (§4.4
    /// registration; runs a KV-only warm-up forward pass).
    Register {
        /// Prefix tokens (whole blocks are pinned for `len` rounded up).
        tokens: Vec<u32>,
    },
    /// Serialize a resident prefix's KV for a handoff.
    Export {
        /// Id returned by a prior `Register`/`Install` on this replica.
        id: PrefixId,
    },
    /// Install a prefix whose KV was computed elsewhere (the receiving half
    /// of a handoff: blocks are journaled as `CacheOps` installs).
    Install {
        /// Prefix tokens.
        tokens: Vec<u32>,
        /// Serialized KV, one entry per block.
        blocks: Vec<KvBlockBytes>,
    },
    /// Unpin a prefix registered or installed earlier; in-flight sharers
    /// keep their references.
    Release {
        /// Id returned by a prior `Register`/`Install` on this replica.
        id: PrefixId,
    },
}

/// The reply to a [`PrefixOp`].
#[derive(Debug, Clone)]
pub enum PrefixReply {
    /// `Register` pinned and computed the prefix.
    Registered {
        /// Pool id for `Export`/`Release` on this replica.
        id: PrefixId,
    },
    /// `Export` serialized the prefix.
    Exported {
        /// The prefix tokens (block-aligned length as registered).
        tokens: Vec<u32>,
        /// Serialized KV, one entry per block.
        blocks: Vec<KvBlockBytes>,
    },
    /// `Install` journaled the payload and registered the prefix.
    Installed {
        /// Pool id for `Export`/`Release` on this replica.
        id: PrefixId,
    },
    /// `Release` unpinned the prefix.
    Released,
}

/// A prefix op plus its reply channel.
pub struct PrefixRequest {
    /// The operation.
    pub op: PrefixOp,
    /// Receives exactly one reply.
    pub reply: Sender<Result<PrefixReply, VllmError>>,
}

/// One command over a replica's channel: data plane (generation) or control
/// plane (prefix ops).
pub enum EngineCommand {
    /// Admit and run a generation request.
    Generate(EngineRequest),
    /// Execute a prefix-cache operation.
    Prefix(PrefixRequest),
}

/// Handle to an engine running on its own thread.
///
/// Shutdown and join take `&self` (the thread handle sits behind a mutex) so
/// a server can share replicas with its connection handlers via `Arc` and
/// still stop them. Dropping the handle initiates shutdown and joins the
/// thread; because the loop drains first, drop blocks until all accepted
/// requests finish.
pub struct Replica {
    id: usize,
    tx: Sender<EngineCommand>,
    stats: Arc<Mutex<EngineStats>>,
    coverage: Arc<Mutex<Arc<Vec<u64>>>>,
    telemetry: Arc<Telemetry>,
    shutdown: Arc<AtomicBool>,
    killed: Arc<AtomicBool>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Replica {
    /// Spawns the engine loop for `engine` on a new thread with the default
    /// in-flight capacity ([`DEFAULT_MAX_INFLIGHT`]).
    pub fn spawn<E>(id: usize, engine: LlmEngine<E>) -> Self
    where
        E: ModelExecutor + Send + 'static,
    {
        Self::spawn_with_capacity(id, engine, DEFAULT_MAX_INFLIGHT)
    }

    /// Spawns the engine loop with an explicit bound on in-flight requests.
    /// Submissions beyond the bound are answered with
    /// [`VllmError::Rejected`] instead of queueing without limit.
    pub fn spawn_with_capacity<E>(id: usize, engine: LlmEngine<E>, max_inflight: usize) -> Self
    where
        E: ModelExecutor + Send + 'static,
    {
        let (tx, rx) = mpsc::channel::<EngineCommand>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let killed = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Mutex::new(EngineStats::default()));
        let coverage = Arc::new(Mutex::new(Arc::new(Vec::new())));
        let telemetry = Arc::clone(engine.telemetry());
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let killed = Arc::clone(&killed);
            let stats = Arc::clone(&stats);
            let coverage = Arc::clone(&coverage);
            std::thread::spawn(move || {
                engine_loop(
                    engine,
                    &rx,
                    &EngineLoopFlags {
                        shutdown: &shutdown,
                        killed: &killed,
                        max_inflight,
                    },
                    &stats,
                    &coverage,
                );
            })
        };
        Self {
            id,
            tx,
            stats,
            coverage,
            telemetry,
            shutdown,
            killed,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// The replica's index in its pool.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Submits one request to the engine loop. Returns the request back if
    /// the replica's loop has already exited.
    ///
    /// # Errors
    ///
    /// Returns `Err(req)` when the loop is no longer accepting work.
    #[allow(clippy::result_large_err)] // The caller needs the request back to report the failure.
    pub fn submit(&self, req: EngineRequest) -> Result<(), EngineRequest> {
        self.tx.send(EngineCommand::Generate(req)).map_err(|e| {
            let EngineCommand::Generate(req) = e.0 else {
                unreachable!("sent a Generate command");
            };
            req
        })
    }

    /// Executes one prefix-cache operation on the engine thread and waits
    /// for its reply (the control plane of KV handoffs and the shared
    /// prefix tier).
    ///
    /// # Errors
    ///
    /// Returns a retryable [`VllmError::Unavailable`] when the loop is gone,
    /// or the engine's own error for the operation.
    pub fn prefix_op(&self, op: PrefixOp) -> Result<PrefixReply, VllmError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(EngineCommand::Prefix(PrefixRequest { op, reply }))
            .map_err(|_| VllmError::Unavailable("replica not accepting work".into()))?;
        rx.recv()
            .map_err(|_| VllmError::Unavailable("replica dropped the prefix op".into()))?
    }

    /// The latest published stats snapshot.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock()
    }

    /// The latest published prefix coverage (sorted chunk hashes of every
    /// computed prefix in the replica's pool).
    #[must_use]
    pub fn coverage(&self) -> Arc<Vec<u64>> {
        Arc::clone(&self.coverage.lock())
    }

    /// The replica engine's telemetry bundle.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Whether the replica was killed by fault injection.
    #[must_use]
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Fault injection: makes the engine loop die abruptly at its next
    /// iteration boundary. Queued and in-flight requests are answered with a
    /// retryable [`VllmError::Unavailable`] so callers can re-route them;
    /// nothing is drained.
    pub fn inject_kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
    }

    /// Signals the loop to stop once drained. Non-blocking; pair with
    /// [`join`](Self::join).
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the engine loop to drain and exit.
    pub fn join(&self) {
        let handle = self.thread.lock().take();
        if let Some(t) = handle {
            let _ = t.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.begin_shutdown();
        self.join();
    }
}

/// Builds a serving snapshot from the engine's current state.
fn snapshot_stats<E: ModelExecutor>(engine: &LlmEngine<E>, finished_total: u64) -> EngineStats {
    let scheduler = engine.scheduler();
    let bm = scheduler.block_manager();
    let trace = engine.trace_stats();
    let stage_totals = trace.stage_totals();
    let latency = engine.latency();
    EngineStats {
        waiting: scheduler.num_waiting(),
        running: scheduler.num_running(),
        swapped: scheduler.num_swapped(),
        outstanding_tokens: scheduler.outstanding_tokens(),
        free_blocks: bm.num_free_gpu_blocks(),
        total_blocks: bm.num_total_gpu_blocks(),
        finished: finished_total,
        preemptions: scheduler.stats().num_preemptions,
        steps: trace.num_steps(),
        tokens_scheduled: trace.tokens_scheduled(),
        blocks_copied: trace.blocks_copied(),
        blocks_swapped: trace.blocks_swapped_in() + trace.blocks_swapped_out(),
        schedule_time: stage_totals.schedule,
        prepare_time: stage_totals.prepare,
        execute_time: stage_totals.execute,
        postprocess_time: stage_totals.postprocess,
        norm_lat_mean: latency.mean_normalized_latency().unwrap_or(0.0),
        norm_lat_p50: latency.percentile_normalized_latency(50.0).unwrap_or(0.0),
        norm_lat_p90: latency.percentile_normalized_latency(90.0).unwrap_or(0.0),
        norm_lat_p99: latency.percentile_normalized_latency(99.0).unwrap_or(0.0),
        ttft_mean: latency.mean_ttft().unwrap_or(0.0),
        ttft_p50: latency.percentile_ttft(50.0).unwrap_or(0.0),
        ttft_p99: latency.percentile_ttft(99.0).unwrap_or(0.0),
    }
}

/// Control flags and limits shared with a replica's engine loop.
struct EngineLoopFlags<'a> {
    shutdown: &'a AtomicBool,
    killed: &'a AtomicBool,
    max_inflight: usize,
}

/// The engine loop: drain new requests, run one iteration, route finished
/// outputs back to their reply channels.
///
/// A fresh [`EngineStats`] snapshot (and refreshed telemetry gauges) is
/// published on startup, after admitting requests, after every iteration,
/// and when the engine drains — never only at step boundaries, so load
/// queries reflect completions even while the loop sits idle. The prefix
/// coverage snapshot is recomputed only when the pool's version changes.
///
/// The loop exits when the shutdown flag is set (or every sender is gone)
/// *and* all accepted work has finished — or immediately when the kill
/// switch fires, answering in-flight replies with a retryable error.
fn engine_loop<E: ModelExecutor>(
    mut engine: LlmEngine<E>,
    rx: &Receiver<EngineCommand>,
    flags: &EngineLoopFlags<'_>,
    stats: &Mutex<EngineStats>,
    coverage: &Mutex<Arc<Vec<u64>>>,
) {
    let mut pending: Vec<(String, Sender<EngineReply>)> = Vec::new();
    let mut finished_total: u64 = 0;
    let mut coverage_version: Option<u64> = None;
    // Seed the snapshot (and the registry's gauges) so load/metrics queries
    // are meaningful before the first request arrives.
    let _ = engine.metrics_snapshot();
    *stats.lock() = snapshot_stats(&engine, finished_total);
    loop {
        if flags.killed.load(Ordering::SeqCst) {
            // Abrupt death: no drain. Everything in flight is answered with
            // a retryable error so the caller can re-route, and anything
            // still in the channel gets the same treatment.
            for (_, reply) in pending.drain(..) {
                let _ = reply.send(Err(VllmError::Unavailable("replica killed".into())));
            }
            while let Ok(cmd) = rx.try_recv() {
                match cmd {
                    EngineCommand::Generate(req) => {
                        let _ = req
                            .reply
                            .send(Err(VllmError::Unavailable("replica killed".into())));
                    }
                    EngineCommand::Prefix(p) => {
                        let _ = p
                            .reply
                            .send(Err(VllmError::Unavailable("replica killed".into())));
                    }
                }
            }
            *stats.lock() = snapshot_stats(&engine, finished_total);
            return;
        }
        if coverage_version != Some(engine.prefix_pool().version()) {
            coverage_version = Some(engine.prefix_pool().version());
            *coverage.lock() = Arc::new(engine.prefix_coverage());
        }
        // Admit everything that arrived since the last iteration. A closed
        // channel is not an exit condition by itself: accepted work still
        // drains below.
        let mut admitted = false;
        let mut disconnected = false;
        loop {
            match rx.try_recv() {
                Ok(EngineCommand::Generate(req)) => {
                    if pending.len() >= flags.max_inflight {
                        // Bounded admission: explicit backpressure instead
                        // of silent queueing.
                        let _ = req.reply.send(Err(VllmError::Rejected {
                            retry_after: REJECT_RETRY_AFTER,
                        }));
                        continue;
                    }
                    match engine.add_generation_request(
                        req.request_id.clone(),
                        req.prompt,
                        &req.request,
                    ) {
                        Ok(()) => {
                            pending.push((req.request_id, req.reply));
                            admitted = true;
                        }
                        Err(e) => {
                            let _ = req.reply.send(Err(e));
                        }
                    }
                }
                Ok(EngineCommand::Prefix(p)) => {
                    // Control plane: synchronous, exempt from the in-flight
                    // bound.
                    let result = match p.op {
                        PrefixOp::Register { tokens } => engine
                            .register_prefix(tokens)
                            .map(|id| PrefixReply::Registered { id }),
                        PrefixOp::Export { id } => engine
                            .export_prefix(id)
                            .map(|(tokens, blocks)| PrefixReply::Exported { tokens, blocks }),
                        PrefixOp::Install { tokens, blocks } => engine
                            .import_prefix(tokens, blocks)
                            .map(|id| PrefixReply::Installed { id }),
                        PrefixOp::Release { id } => {
                            engine.release_prefix(id).map(|()| PrefixReply::Released)
                        }
                    };
                    let _ = p.reply.send(result);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if admitted {
            *stats.lock() = snapshot_stats(&engine, finished_total);
        }
        if !engine.has_unfinished() {
            if flags.shutdown.load(Ordering::SeqCst) || disconnected {
                break; // Drained: nothing queued, nothing in flight.
            }
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let outputs = match engine.step() {
            Ok(outputs) => outputs,
            Err(e) => {
                // Degrade instead of dying: abort everything live (releasing
                // every block the failed iteration had reserved), answer the
                // in-flight replies with a retryable error, and keep serving.
                let msg = format!("engine step failed: {e}");
                if engine.abort_all().is_err() {
                    // Accounting is corrupt; this loop cannot continue.
                    for (_, reply) in pending.drain(..) {
                        let _ = reply.send(Err(VllmError::Unavailable(msg.clone())));
                    }
                    return;
                }
                // Deliver the aborted groups out of the scheduler.
                let _ = engine.step();
                for (_, reply) in pending.drain(..) {
                    let _ = reply.send(Err(VllmError::Unavailable(msg.clone())));
                }
                *stats.lock() = snapshot_stats(&engine, finished_total);
                continue;
            }
        };
        let mut ready = Vec::new();
        for out in outputs {
            finished_total += 1;
            if let Some(pos) = pending.iter().position(|(id, _)| *id == out.request_id) {
                let (_, reply) = pending.swap_remove(pos);
                ready.push((reply, out));
            }
        }
        // Publish the post-step snapshot BEFORE answering the in-flight
        // replies: anyone who has received a completion must find it
        // already reflected in the published stats.
        *stats.lock() = snapshot_stats(&engine, finished_total);
        for (reply, out) in ready {
            let _ = reply.send(Ok(out));
        }
    }
    *stats.lock() = snapshot_stats(&engine, finished_total);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use vllm_core::mock::MockExecutor;
    use vllm_core::{CacheConfig, FaultControls, FaultInjector, SchedulerConfig};

    fn small_engine() -> LlmEngine<MockExecutor> {
        let cache = CacheConfig::new(4, 64, 16).unwrap();
        let sched = SchedulerConfig::new(512, 16, 256).unwrap();
        LlmEngine::new(MockExecutor::new(1000), cache, sched)
    }

    fn request(id: &str, max_tokens: usize, reply: Sender<EngineReply>) -> EngineRequest {
        EngineRequest {
            request_id: id.into(),
            prompt: vec![1, 2, 3, 4, 5],
            request: GenerationRequest::greedy(max_tokens),
            reply,
        }
    }

    #[test]
    fn replica_serves_and_publishes_stats() {
        let replica = Replica::spawn(0, small_engine());
        let (reply_tx, reply_rx) = mpsc::channel();
        replica
            .submit(request("r0", 4, reply_tx))
            .ok()
            .expect("accepting");
        let out = reply_rx.recv().expect("one reply").expect("success");
        assert_eq!(out.request_id, "r0");
        assert_eq!(out.outputs.len(), 1);
        // The published snapshot catches up with the completion.
        for _ in 0..200 {
            if replica.stats().finished == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(replica.stats().finished, 1);
        assert!(replica.stats().total_blocks > 0);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let replica = Replica::spawn(0, small_engine());
        let mut replies = Vec::new();
        for i in 0..4 {
            let (reply_tx, reply_rx) = mpsc::channel();
            replica
                .submit(EngineRequest {
                    request_id: format!("r{i}"),
                    prompt: vec![1, 2, 3, 4, 5, 6, 7, 8],
                    request: GenerationRequest::greedy(6),
                    reply: reply_tx,
                })
                .ok()
                .expect("accepting");
            replies.push(reply_rx);
        }
        // Shut down immediately: every accepted request must still finish.
        replica.begin_shutdown();
        replica.join();
        for rx in replies {
            let out = rx.recv().expect("drained reply").expect("success");
            assert_eq!(out.outputs.len(), 1);
        }
        assert_eq!(replica.stats().finished, 4);
    }

    #[test]
    fn admission_failure_is_typed() {
        let replica = Replica::spawn(0, small_engine());
        let (reply_tx, reply_rx) = mpsc::channel();
        replica
            .submit(EngineRequest {
                request_id: "bad".into(),
                prompt: Vec::new(), // Empty prompt: admission fails.
                request: GenerationRequest::greedy(4),
                reply: reply_tx,
            })
            .ok()
            .expect("accepting");
        let err = reply_rx.recv().expect("one reply").unwrap_err();
        assert!(!err.is_retryable());
    }

    #[test]
    fn bounded_admission_rejects_with_retry_after() {
        // Capacity 1: the second of two quickly submitted long requests is
        // rejected with a retryable backpressure error (timing-dependent
        // which one, so submit enough to guarantee at least one rejection).
        let replica = Replica::spawn_with_capacity(0, small_engine(), 1);
        let mut replies = Vec::new();
        for i in 0..6 {
            let (reply_tx, reply_rx) = mpsc::channel();
            replica
                .submit(EngineRequest {
                    request_id: format!("r{i}"),
                    prompt: vec![1, 2, 3, 4, 5, 6, 7, 8],
                    request: GenerationRequest::greedy(32),
                    reply: reply_tx,
                })
                .ok()
                .expect("accepting");
            replies.push(reply_rx);
        }
        replica.begin_shutdown();
        replica.join();
        let results: Vec<EngineReply> = replies.iter().map(|rx| rx.recv().unwrap()).collect();
        let rejected: Vec<&VllmError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
        assert!(!rejected.is_empty(), "expected at least one rejection");
        for e in rejected {
            assert!(matches!(e, VllmError::Rejected { .. }));
            assert!(e.is_retryable());
            assert!(e.retry_after().unwrap() > 0.0);
        }
        // Every request got exactly one reply (completed or rejected).
        assert_eq!(results.len(), 6);
    }

    #[test]
    fn injected_kill_answers_inflight_with_retryable_error() {
        let replica = Replica::spawn(0, small_engine());
        let mut replies = Vec::new();
        for i in 0..3 {
            let (reply_tx, reply_rx) = mpsc::channel();
            replica
                .submit(EngineRequest {
                    request_id: format!("r{i}"),
                    prompt: vec![1, 2, 3, 4, 5, 6, 7, 8],
                    request: GenerationRequest::greedy(64),
                    reply: reply_tx,
                })
                .ok()
                .expect("accepting");
            replies.push(reply_rx);
        }
        replica.inject_kill();
        replica.join();
        assert!(replica.is_killed());
        // Every reply arrives: either the request finished before the kill
        // landed, or it carries a retryable unavailability error.
        for rx in replies {
            match rx.recv().expect("reply delivered") {
                Ok(out) => assert_eq!(out.outputs.len(), 1),
                Err(e) => assert!(e.is_retryable()),
            }
        }
    }

    #[test]
    fn prefix_ops_round_trip_across_replicas() {
        // Register on one replica, export, install on another: the §4.4
        // handoff control plane over the command channel.
        let src = Replica::spawn(0, small_engine());
        let dst = Replica::spawn(1, small_engine());
        let tokens: Vec<u32> = (1..=32).collect();
        let PrefixReply::Registered { id } = src
            .prefix_op(PrefixOp::Register {
                tokens: tokens.clone(),
            })
            .expect("register")
        else {
            panic!("expected Registered");
        };
        let PrefixReply::Exported { tokens: t, blocks } =
            src.prefix_op(PrefixOp::Export { id }).expect("export")
        else {
            panic!("expected Exported");
        };
        assert_eq!(t, tokens);
        assert_eq!(blocks.len(), 8); // 32 tokens / block size 4.
        let PrefixReply::Installed { id: installed } = dst
            .prefix_op(PrefixOp::Install { tokens: t, blocks })
            .expect("install")
        else {
            panic!("expected Installed");
        };
        // A request extending the installed prefix shares its blocks.
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut prompt = tokens.clone();
        prompt.extend([100, 101, 102]);
        dst.submit(EngineRequest {
            request_id: "r0".into(),
            prompt,
            request: GenerationRequest::greedy(4),
            reply: reply_tx,
        })
        .ok()
        .expect("accepting");
        let out = reply_rx.recv().expect("reply").expect("success");
        assert_eq!(out.outputs.len(), 1);
        assert!(matches!(
            dst.prefix_op(PrefixOp::Release { id: installed }),
            Ok(PrefixReply::Released)
        ));
        // Releasing on the source too; a second release is a typed error.
        src.prefix_op(PrefixOp::Release { id }).expect("release");
        assert!(src.prefix_op(PrefixOp::Release { id }).is_err());
        // Ops against a dead replica degrade to a retryable error.
        src.inject_kill();
        src.join();
        let err = src
            .prefix_op(PrefixOp::Register { tokens })
            .expect_err("dead replica");
        assert!(err.is_retryable());
    }

    #[test]
    fn step_error_degrades_without_killing_the_loop() {
        let controls = FaultControls::new();
        let cache = CacheConfig::new(4, 64, 16).unwrap();
        let sched = SchedulerConfig::new(512, 16, 256).unwrap();
        let engine = LlmEngine::new(
            FaultInjector::new(MockExecutor::new(1000), Arc::clone(&controls)),
            cache,
            sched,
        );
        let replica = Replica::spawn(0, engine);

        // First request hits an injected forward fault.
        controls.fail_next_forwards(1);
        let (reply_tx, reply_rx) = mpsc::channel();
        replica
            .submit(request("r0", 4, reply_tx))
            .ok()
            .expect("accepting");
        let err = reply_rx.recv().expect("reply").unwrap_err();
        assert!(err.is_retryable());

        // The loop survived: a follow-up request completes normally.
        let (reply_tx, reply_rx) = mpsc::channel();
        replica
            .submit(request("r1", 4, reply_tx))
            .ok()
            .expect("accepting");
        let out = reply_rx.recv().expect("reply").expect("success");
        assert_eq!(out.request_id, "r1");
        assert_eq!(out.outputs.len(), 1);
    }
}
