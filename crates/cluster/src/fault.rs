//! Deterministic fault injection and graceful degradation for a cluster.
//!
//! The paper's evaluation (§6) assumes a healthy fleet; this module asks
//! what happens when it is not. A [`FaultPlan`] is a seeded, reproducible
//! schedule of fault events — kill or stall a replica at step N, fail an
//! executor forward pass, exhaust the CPU swap pool (forcing the §4.5
//! recompute fallback), slow down cache operations — and [`FaultCluster`]
//! is a single-threaded lockstep harness that drives N real engines
//! (wrapped in [`FaultInjector`]) through a request trace while the plan
//! fires. Because every component is deterministic — the router is pure,
//! the mock executor's tokens are a hash, faults fire on a step counter
//! rather than wall clocks — the same `(plan, trace)` pair reproduces the
//! same token streams, retry counts, and fault counts bit for bit.
//!
//! Degradation machinery exercised by the harness:
//!
//! * **Bounded admission with backpressure** — a replica holding
//!   `max_inflight` requests refuses new placements; the harness re-routes
//!   with capped exponential backoff and, after `max_attempts`, reports the
//!   request rejected (the wire analog is [`VllmError::Rejected`] with a
//!   `retry_after` hint).
//! * **Retry with re-routing** — requests in flight on a killed replica are
//!   re-routed through the router (which excludes dead replicas but keeps
//!   honoring prefix affinity among the living) and counted in
//!   `vllm_cluster_retries_total`. Re-admissions use a fresh engine-side id
//!   per attempt, so a request can never complete twice.
//! * **Restart with drain** — restarting a live replica first stops new
//!   traffic and lets in-flight work finish, then swaps in a fresh engine;
//!   restarting a dead one resurrects it immediately.
//! * **Step-error recovery** — an injected forward fault aborts the
//!   replica's live groups (restoring exact block accounting) and re-routes
//!   them instead of losing them.
//!
//! Fault telemetry is exported as `vllm_fault_injected_total`,
//! `vllm_fault_kills_total`, `vllm_fault_forward_failures_total`,
//! `vllm_fault_swap_exhaustions_total`, `vllm_fault_pool_pressure_total`,
//! and `vllm_fault_prefill_stalls_total` alongside the router counters in
//! [`FaultCluster::merged_snapshot`].
//!
//! # Disaggregated fleets
//!
//! [`FaultCluster::with_fleet`] accepts a typed [`ClusterConfig`] whose
//! [`ReplicaRole`]s split the fleet into prefill and decode pools. A
//! request then runs as a one-token stub on a prefill replica, its KV
//! hands off over the wire codec ([`HandoffPayload`] encode → decode), and
//! a decode replica resumes the token loop from the installed prefix. The
//! handoff is a first-class fault surface: transfers take
//! [`TRANSFER_STEPS`] lockstep steps to commit, so a [`FaultKind`] event
//! can kill the decode target mid-transfer (the payload re-routes and is
//! delivered exactly once) or between commit and the first decode step
//! (the request re-enters placement from scratch, releasing its imported
//! prefix). Disaggregated fleets force sequence-invariant mock tokens, so
//! the harness asserts the strongest property available: the token streams
//! are bit-identical to a unified fleet's, faults and all.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use vllm_core::mock::MockExecutor;
use vllm_core::telemetry::{trace_seed, Counter, MetricsSnapshot, Span, Telemetry, TraceContext};
use vllm_core::{
    chunk_hashes, CacheConfig, FaultControls, FaultInjector, GenerationRequest, HandoffPayload,
    KvBlockBytes, LlmEngine, PrefixId, SchedulerConfig,
};

use crate::config::{ClusterConfig, ReplicaRole};
use crate::router::{ReplicaSnapshot, RoutePolicy, Router, RouterConfig};
use crate::sim::ClusterRequest;
use crate::stats::merge_labeled;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Kill the replica abruptly: its in-flight requests are re-routed, the
    /// router stops sending it traffic, and it stays down until a
    /// [`FaultKind::RestartReplica`] event.
    KillReplica,
    /// Restart the replica. A live replica drains first (no new traffic,
    /// in-flight work finishes) before a fresh engine replaces it; a dead
    /// replica comes back immediately with a fresh engine.
    RestartReplica,
    /// Freeze the replica's engine loop for this many lockstep steps (work
    /// is delayed, never lost).
    StallReplica {
        /// Steps to skip.
        steps: u64,
    },
    /// Switch the replica to scheduler-budgeted chunked prefill with a
    /// per-step token budget that splits the trace's longest prompt into
    /// at least this many chunks. Prefill then spans multiple lockstep
    /// steps, so later kill/fail events land *between* chunks — exercising
    /// recovery of partially-prefilled requests. Cleared when a restart
    /// swaps in a fresh engine.
    StallPrefill {
        /// Minimum chunks the longest prompt is split into (≥ 1).
        chunks: u64,
    },
    /// Fail the replica's next `count` forward passes with an executor
    /// error; the harness aborts and re-routes the affected requests.
    FailForwards {
        /// Forward passes to fail.
        count: u32,
    },
    /// Disable the replica's CPU swap pool: preemptions fall back to §4.5
    /// recomputation until [`FaultKind::RestoreSwap`].
    ExhaustSwap,
    /// Re-enable the replica's CPU swap pool.
    RestoreSwap,
    /// Charge extra virtual seconds per cache operation (swap/copy) on the
    /// replica, modelling a slow swap device.
    DelayCacheOps {
        /// Extra seconds per cache operation (`0.0` disarms).
        seconds_per_op: f64,
    },
    /// Deflate the replica's GPU block pool to this fraction of its
    /// original size mid-decode (elastic shrink: the pool compacts, live
    /// blocks migrate, nothing may leak). Clamped so live blocks always
    /// fit. Undone by [`FaultKind::RestorePool`].
    PoolPressure {
        /// Target pool size as a fraction of the configured size (0..=1).
        fraction: f64,
    },
    /// Restore the replica's block pools to their configured sizes.
    RestorePool,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Lockstep step at which the fault fires.
    pub at_step: u64,
    /// Target replica index.
    pub replica: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, reproducible schedule of fault events.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// The events, in firing order.
    pub events: Vec<FaultEvent>,
}

/// `splitmix64`: the standard 64-bit mixing PRNG (public domain).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (add events with [`with_event`](Self::with_event)).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Appends one event, keeping the list sorted by firing step.
    #[must_use]
    pub fn with_event(mut self, at_step: u64, replica: usize, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            at_step,
            replica,
            kind,
        });
        self.events.sort_by_key(|e| (e.at_step, e.replica));
        self
    }

    /// Derives a pseudo-random schedule from `seed`: one kill + restart,
    /// one swap exhaustion window (when there is more than one replica),
    /// and a few stalls / prefill-chunking switches / forward failures /
    /// cache-op delays, all within `horizon` steps. The same seed always
    /// yields the same plan.
    ///
    /// # Panics
    ///
    /// Panics if `num_replicas` is zero or `horizon < 8`.
    #[must_use]
    pub fn seeded(seed: u64, num_replicas: usize, horizon: u64) -> Self {
        assert!(num_replicas > 0, "need at least one replica");
        assert!(horizon >= 8, "horizon too short for a meaningful plan");
        let mut s = seed ^ 0xA076_1D64_78BD_642F;
        let mut plan = Self::new(seed);
        // One kill mid-run, restarted half a horizon later.
        let victim = (splitmix64(&mut s) as usize) % num_replicas;
        let kill_at = 2 + splitmix64(&mut s) % (horizon / 4);
        plan = plan
            .with_event(kill_at, victim, FaultKind::KillReplica)
            .with_event(kill_at + horizon / 2, victim, FaultKind::RestartReplica);
        // One swap-exhaustion window on a surviving replica.
        if num_replicas > 1 {
            let other = (victim + 1) % num_replicas;
            let at = 1 + splitmix64(&mut s) % (horizon / 2);
            plan = plan
                .with_event(at, other, FaultKind::ExhaustSwap)
                .with_event(at + horizon / 2, other, FaultKind::RestoreSwap);
        }
        // One pool-pressure window: deflate a replica's KV pool mid-decode
        // (forcing compaction and elastic shrink), restore it later.
        {
            let target = (splitmix64(&mut s) as usize) % num_replicas;
            let at = 2 + splitmix64(&mut s) % (horizon / 2);
            let fraction = 0.3 + 0.1 * (splitmix64(&mut s) % 4) as f64;
            plan = plan
                .with_event(at, target, FaultKind::PoolPressure { fraction })
                .with_event(at + horizon / 3, target, FaultKind::RestorePool);
        }
        // A handful of smaller perturbations.
        let extras = 2 + splitmix64(&mut s) % 3;
        for _ in 0..extras {
            let at = splitmix64(&mut s) % horizon;
            let replica = (splitmix64(&mut s) as usize) % num_replicas;
            let kind = match splitmix64(&mut s) % 4 {
                0 => FaultKind::FailForwards {
                    count: 1 + (splitmix64(&mut s) % 2) as u32,
                },
                1 => FaultKind::StallReplica {
                    steps: 1 + splitmix64(&mut s) % 4,
                },
                2 => FaultKind::StallPrefill {
                    chunks: 2 + splitmix64(&mut s) % 3,
                },
                _ => FaultKind::DelayCacheOps {
                    seconds_per_op: 0.005 * (1 + splitmix64(&mut s) % 4) as f64,
                },
            };
            plan = plan.with_event(at, replica, kind);
        }
        plan
    }
}

/// Configuration for a [`FaultCluster`] harness.
#[derive(Debug, Clone, Copy)]
pub struct FaultClusterConfig {
    /// Number of engine replicas.
    pub num_replicas: usize,
    /// Routing policy.
    pub policy: RoutePolicy,
    /// Bounded admission: a replica holding this many in-flight requests
    /// refuses new placements (backpressure).
    pub max_inflight: usize,
    /// Placement attempts per request before it is terminally rejected.
    pub max_attempts: u32,
    /// Cap on the exponential retry backoff, in lockstep steps.
    pub max_backoff_steps: u64,
    /// Safety bound on lockstep steps per run (unfinished requests beyond
    /// it are reported as lost).
    pub max_steps: u64,
    /// Force sequence-invariant mock tokens (a token depends only on the
    /// sampling seed and position, not on engine-local sequence ids), so a
    /// unified fleet can serve as the token-identity oracle for a
    /// disaggregated one. Implied by a disaggregated fleet.
    pub seq_invariant_tokens: bool,
}

impl FaultClusterConfig {
    /// Defaults: prefix-affinity routing, 64 in-flight per replica, 8
    /// placement attempts, backoff capped at 16 steps.
    #[must_use]
    pub fn new(num_replicas: usize) -> Self {
        Self {
            num_replicas,
            policy: RoutePolicy::PrefixAffinity,
            max_inflight: 64,
            max_attempts: 8,
            max_backoff_steps: 16,
            max_steps: 100_000,
            seq_invariant_tokens: false,
        }
    }

    /// Forces sequence-invariant mock tokens (see the field docs).
    #[must_use]
    pub fn with_seq_invariant_tokens(mut self) -> Self {
        self.seq_invariant_tokens = true;
        self
    }

    /// Overrides the routing policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RoutePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the per-replica in-flight bound.
    #[must_use]
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight;
        self
    }

    /// Overrides the per-request placement-attempt bound.
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }
}

/// Aggregate outcome of one faulted run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Requests in the trace.
    pub num_requests: usize,
    /// Requests that completed (exactly once).
    pub completed: usize,
    /// Requests terminally rejected (attempts exhausted or invalid).
    pub rejected: usize,
    /// Requests with no terminal outcome when the step bound hit (must be
    /// zero for a healthy harness).
    pub lost: usize,
    /// Requests that reached more than one terminal outcome (must be zero).
    pub duplicates: usize,
    /// Re-routing retries across the run (`vllm_cluster_retries_total`).
    pub retries: u64,
    /// Fault events that fired.
    pub faults_injected: u64,
    /// Replica kills that fired.
    pub kills: u64,
    /// Engine steps that failed with an injected forward fault.
    pub forward_failures: u64,
    /// Lockstep steps executed.
    pub steps: u64,
    /// KV handoffs initiated (prefill stub finished, transfer started).
    pub handoffs: u64,
    /// Handoff transfers re-routed or re-sent after their decode target
    /// died or backed up mid-transfer.
    pub handoff_retries: u64,
    /// GPU blocks still allocated on live replicas after the run drained
    /// (must be zero: exact accounting survives every fault).
    pub leaked_blocks: usize,
    /// Order-independent hash of every request's terminal outcome and token
    /// streams; equal across runs ⇔ identical outputs.
    pub token_fingerprint: u64,
}

/// Per-request terminal outcome.
enum Outcome {
    Completed { tokens: Vec<Vec<u32>> },
    Rejected,
}

/// One replica slot in the harness.
struct ReplicaSlot {
    engine: LlmEngine<FaultInjector<MockExecutor>>,
    controls: Arc<FaultControls>,
    alive: bool,
    draining: bool,
    stall_remaining: u64,
    /// Engine-side id → trace request id for everything in flight here.
    inflight: HashMap<String, u64>,
    /// Bumped every time a fresh engine replaces this slot, so stale
    /// imported-prefix handles from a previous engine generation are never
    /// released against the wrong pool.
    generation: u64,
}

/// Lockstep steps a KV handoff transfer takes to commit. Two steps open a
/// window for fault events to land *mid-transfer*.
pub const TRANSFER_STEPS: u64 = 2;

/// One KV handoff in flight between a prefill and a decode replica.
struct Transfer {
    id: u64,
    payload: HandoffPayload,
    dst: usize,
    started_at: u64,
    commit_at: u64,
    /// Span context for the handoff; the decode attempt nests under it.
    ctx: TraceContext,
}

/// A request running its decode phase after a committed handoff.
struct DecodeInfo {
    /// First sampled token, produced by the prefill stub; stitched back
    /// onto the decode replica's output.
    t0: u32,
    /// Imported prefix to release on completion:
    /// `(replica, engine generation, prefix id)`.
    prefix: Option<(usize, u64, PrefixId)>,
}

/// Mutable bookkeeping for one run.
struct RunState {
    pending: HashMap<u64, PendingReq>,
    outcomes: HashMap<u64, Outcome>,
    /// `(ready_at_step, request_id)` retry entries.
    retry_q: Vec<(u64, u64)>,
    duplicates: usize,
    /// Requests currently running as one-token prefill stubs.
    stubs: HashSet<u64>,
    /// KV handoffs in flight (serialized, not yet committed).
    transfers: Vec<Transfer>,
    /// Requests in their decode phase, keyed by trace id.
    decodes: HashMap<u64, DecodeInfo>,
    /// Monotonic suffix for decode-phase engine ids (uniqueness across
    /// re-deliveries).
    admit_seq: u64,
}

struct PendingReq {
    req: ClusterRequest,
    attempts: u32,
    /// Root trace context for the request; every placement attempt gets a
    /// sibling child context so retries show up side by side in the tree.
    root: TraceContext,
}

/// Fault counters registered on the cluster-level telemetry.
struct FaultCounters {
    injected: Counter,
    kills: Counter,
    forward_failures: Counter,
    swap_exhaustions: Counter,
    pool_pressures: Counter,
    prefill_stalls: Counter,
    handoffs: Counter,
    handoff_retries: Counter,
}

/// N engines in deterministic lockstep under a router, a request trace, and
/// a [`FaultPlan`].
pub struct FaultCluster {
    cfg: FaultClusterConfig,
    slots: Vec<ReplicaSlot>,
    router: Router,
    telemetry: Arc<Telemetry>,
    counters: FaultCounters,
    block_size: usize,
    /// One role per replica (all [`ReplicaRole::Unified`] for classic
    /// fleets); prefill-role targets place requests as one-token stubs.
    roles: Vec<ReplicaRole>,
    /// Whether replacement engines script sequence-invariant tokens.
    seq_invariant: bool,
    /// Spans and metrics salvaged from engines that were replaced (kill +
    /// restart, or graceful drain): `(replica, spans, metrics)`. Without
    /// this a restart would silently discard the killed generation's
    /// telemetry and the trace tree would lose its failed attempts.
    archived: Vec<(usize, Vec<Span>, MetricsSnapshot)>,
    /// Span drops accumulated from archived (replaced) engines.
    archived_drops: u64,
    /// Longest prompt in the current run's trace, used by
    /// [`FaultKind::StallPrefill`] to derive a per-step token budget.
    max_prompt_len: usize,
}

impl FaultCluster {
    /// Builds the harness with fresh engines in a unified fleet.
    ///
    /// # Panics
    ///
    /// Panics if the configuration names zero replicas.
    #[must_use]
    pub fn new(cfg: FaultClusterConfig) -> Self {
        Self::with_fleet(cfg, &ClusterConfig::new(cfg.num_replicas))
    }

    /// Builds the harness over a typed fleet: `fleet.roles` splits the
    /// replicas into prefill and decode pools ([`ReplicaRole`]), routed and
    /// migrated through the KV-handoff path. A disaggregated fleet (or
    /// [`FaultClusterConfig::seq_invariant_tokens`]) switches the mock
    /// executors to sequence-invariant token scripting, so token streams
    /// survive mid-request migration bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if the configuration names zero replicas or `fleet` names a
    /// different replica count than `cfg`.
    #[must_use]
    pub fn with_fleet(cfg: FaultClusterConfig, fleet: &ClusterConfig) -> Self {
        assert!(cfg.num_replicas > 0, "cluster needs at least one replica");
        assert_eq!(
            fleet.num_replicas(),
            cfg.num_replicas,
            "fleet roles must cover every replica"
        );
        let seq_invariant = cfg.seq_invariant_tokens || fleet.is_disaggregated();
        let telemetry = Arc::new(Telemetry::new());
        let mut router = Router::new(RouterConfig::new(cfg.policy), cfg.num_replicas);
        router.attach_telemetry(&telemetry);
        router.set_roles(fleet.roles.clone());
        let r = telemetry.registry();
        let counters = FaultCounters {
            injected: r.counter("vllm_fault_injected_total", "Fault events fired."),
            kills: r.counter("vllm_fault_kills_total", "Replica kills fired."),
            forward_failures: r.counter(
                "vllm_fault_forward_failures_total",
                "Engine steps failed by an injected forward fault.",
            ),
            swap_exhaustions: r.counter(
                "vllm_fault_swap_exhaustions_total",
                "Swap-pool exhaustion events fired.",
            ),
            pool_pressures: r.counter(
                "vllm_fault_pool_pressure_total",
                "Elastic pool-deflation events fired.",
            ),
            prefill_stalls: r.counter(
                "vllm_fault_prefill_stalls_total",
                "Chunked-prefill stall events fired.",
            ),
            handoffs: r.counter(
                "vllm_cluster_handoffs_total",
                "KV handoffs initiated (prefill stub finished).",
            ),
            handoff_retries: r.counter(
                "vllm_cluster_handoff_retries_total",
                "Handoff transfers re-routed after a dead or backed-up decode target.",
            ),
        };
        let slots: Vec<ReplicaSlot> = (0..cfg.num_replicas)
            .map(|_| fresh_slot(seq_invariant, 0))
            .collect();
        let block_size = slots[0].engine.cache_config().block_size;
        Self {
            cfg,
            slots,
            router,
            telemetry,
            counters,
            block_size,
            roles: fleet.roles.clone(),
            seq_invariant,
            archived: Vec::new(),
            archived_drops: 0,
            max_prompt_len: 1,
        }
    }

    /// The router (policy, liveness, retry counters).
    #[must_use]
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The cluster-level telemetry bundle (router + fault counters).
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// One merged snapshot: per-replica engine metrics under
    /// `{replica="i"}` labels plus the unlabeled cluster counters
    /// (`vllm_cluster_*`, `vllm_fault_*`).
    #[must_use]
    pub fn merged_snapshot(&self) -> MetricsSnapshot {
        let mut parts: Vec<(String, MetricsSnapshot)> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| (i.to_string(), s.engine.metrics_snapshot()))
            .collect();
        // Replaced engines still count: their histograms carry the samples
        // recorded before the kill/drain, labeled by generation so names
        // stay unique.
        parts.extend(
            self.archived
                .iter()
                .enumerate()
                .map(|(g, (i, _, snap))| (format!("{i}.gen{g}"), snap.clone())),
        );
        let mut merged = merge_labeled(&parts);
        merged
            .metrics
            .extend(self.telemetry.registry().snapshot().metrics);
        merged.metrics.sort_by(|a, b| a.name.cmp(&b.name));
        merged
    }

    /// Every span recorded anywhere in the cluster, keyed by replica index:
    /// archived logs from replaced engines first (in replacement order),
    /// then the live engines. Cluster-level spans (fault events) live in
    /// [`telemetry`](Self::telemetry), not here.
    #[must_use]
    pub fn all_spans(&self) -> Vec<(usize, Vec<Span>)> {
        let mut out: Vec<(usize, Vec<Span>)> = self
            .archived
            .iter()
            .map(|(i, spans, _)| (*i, spans.clone()))
            .collect();
        out.extend(
            self.slots
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.engine.telemetry().spans().snapshot())),
        );
        out
    }

    /// Span-log drops across the whole harness: every live engine, the
    /// cluster-level log, and drops counted when replaced engines were
    /// archived. Zero means no span was lost to ring-buffer eviction.
    #[must_use]
    pub fn span_log_drops(&self) -> u64 {
        self.archived_drops
            + self.telemetry.spans().total_dropped()
            + self
                .slots
                .iter()
                .map(|s| s.engine.telemetry().spans().total_dropped())
                .sum::<u64>()
    }

    /// Salvages replica `i`'s spans and metrics before its engine is
    /// replaced.
    fn archive_slot(&mut self, i: usize) {
        let spans = self.slots[i].engine.telemetry().spans().snapshot();
        let snap = self.slots[i].engine.metrics_snapshot();
        self.archived_drops += self.slots[i].engine.telemetry().spans().total_dropped();
        self.archived.push((i, spans, snap));
    }

    /// Runs `requests` against the fleet while `plan` fires, to quiescence
    /// (or the configured step bound).
    ///
    /// Every request ends in exactly one of: completed (token streams
    /// recorded), rejected (placement attempts exhausted), or — only if the
    /// step bound is hit — lost. The report carries the counts plus a
    /// fingerprint of all outputs for determinism comparisons.
    #[must_use]
    pub fn run(&mut self, plan: &FaultPlan, mut requests: Vec<ClusterRequest>) -> FaultReport {
        requests.sort_by(|a, b| a.arrival.total_cmp(&b.arrival).then(a.id.cmp(&b.id)));
        let num_requests = requests.len();
        self.max_prompt_len = requests.iter().map(|r| r.prompt.len()).max().unwrap_or(1);
        let mut events = plan.events.clone();
        events.sort_by_key(|e| (e.at_step, e.replica));
        let mut st = RunState {
            pending: requests
                .iter()
                .map(|r| {
                    (
                        r.id,
                        PendingReq {
                            req: r.clone(),
                            attempts: 0,
                            // Cluster traces are always sampled: the harness
                            // exists to observe, and volume is bounded by
                            // the trace length.
                            root: TraceContext::mint(trace_seed(&r.id.to_string()), true),
                        },
                    )
                })
                .collect(),
            outcomes: HashMap::new(),
            retry_q: Vec::new(),
            duplicates: 0,
            stubs: HashSet::new(),
            transfers: Vec::new(),
            decodes: HashMap::new(),
            admit_seq: 0,
        };
        let mut next_event = 0;
        let mut next_arrival = 0;
        let mut step: u64 = 0;
        loop {
            // 1. Fire due fault events.
            while next_event < events.len() && events[next_event].at_step <= step {
                let e = events[next_event];
                self.apply_event(&e, step, &mut st);
                next_event += 1;
            }
            // 1b. Commit (or re-route) due KV handoff transfers. Runs
            // after events so a kill landing this step is seen as a dead
            // transfer target — the mid-transfer fault window.
            self.process_transfers(step, &mut st);
            // 2. Re-place due retries (sorted for determinism).
            let mut due: Vec<u64> = Vec::new();
            st.retry_q.retain(|&(ready_at, id)| {
                if ready_at <= step {
                    due.push(id);
                    false
                } else {
                    true
                }
            });
            due.sort_unstable();
            for id in due {
                self.try_place(id, step, &mut st);
            }
            // 3. Inject new arrivals.
            while next_arrival < requests.len() && requests[next_arrival].arrival <= step as f64 {
                let id = requests[next_arrival].id;
                next_arrival += 1;
                self.try_place(id, step, &mut st);
            }
            // 4. Step every live, unstalled replica with work.
            for i in 0..self.slots.len() {
                self.step_replica(i, step, &mut st);
            }
            // 5. Quiescence: all arrivals in, no retries queued, every
            // request terminal.
            let done = next_arrival == requests.len()
                && st.retry_q.is_empty()
                && st.outcomes.len() == num_requests;
            if done || step >= self.cfg.max_steps {
                break;
            }
            step += 1;
        }
        let completed = st
            .outcomes
            .values()
            .filter(|o| matches!(o, Outcome::Completed { .. }))
            .count();
        let rejected = st
            .outcomes
            .values()
            .filter(|o| matches!(o, Outcome::Rejected))
            .count();
        let leaked_blocks: usize = self
            .slots
            .iter()
            .filter(|s| s.alive)
            .map(|s| {
                let bm = s.engine.scheduler().block_manager();
                bm.num_total_gpu_blocks() - bm.num_free_gpu_blocks()
            })
            .sum();
        FaultReport {
            num_requests,
            completed,
            rejected,
            lost: num_requests - st.outcomes.len(),
            duplicates: st.duplicates,
            retries: self.router.stats().retries,
            faults_injected: self.counters.injected.get(),
            kills: self.counters.kills.get(),
            forward_failures: self.counters.forward_failures.get(),
            handoffs: self.counters.handoffs.get(),
            handoff_retries: self.counters.handoff_retries.get(),
            steps: step,
            leaked_blocks,
            token_fingerprint: fingerprint(&st.outcomes),
        }
    }

    /// Applies one fault event.
    fn apply_event(&mut self, e: &FaultEvent, step: u64, st: &mut RunState) {
        self.counters.injected.inc();
        self.record_fault_span(e, step);
        match e.kind {
            FaultKind::KillReplica => {
                if !self.slots[e.replica].alive {
                    return;
                }
                self.counters.kills.inc();
                self.router.mark_dead(e.replica);
                let slot = &mut self.slots[e.replica];
                slot.alive = false;
                slot.draining = false;
                // Flush before re-routing: abort the live groups and take
                // one reaping step so the killed attempts' spans (and
                // nothing else — the outputs are discarded, leaving the
                // token fingerprint untouched) land in the span log before
                // the engine is mothballed.
                if slot.engine.abort_all().is_ok() {
                    let _ = slot.engine.step();
                }
                // Zero-loss: everything in flight here is re-routed.
                for (_, id) in slot.inflight.drain() {
                    self.router.record_retry();
                    st.retry_q.push((step + 1, id));
                }
            }
            FaultKind::RestartReplica => {
                if self.slots[e.replica].alive {
                    // Graceful restart: drain first (no new traffic), the
                    // step loop swaps in a fresh engine once idle.
                    self.slots[e.replica].draining = true;
                    self.router.mark_dead(e.replica);
                } else {
                    self.archive_slot(e.replica);
                    let generation = self.slots[e.replica].generation + 1;
                    self.slots[e.replica] = fresh_slot(self.seq_invariant, generation);
                    self.router.mark_alive(e.replica);
                }
            }
            FaultKind::StallReplica { steps } => {
                self.slots[e.replica].stall_remaining += steps;
            }
            FaultKind::StallPrefill { chunks } => {
                self.counters.prefill_stalls.inc();
                let budget = self
                    .max_prompt_len
                    .div_ceil((chunks as usize).max(1))
                    .max(1);
                self.slots[e.replica]
                    .engine
                    .set_step_token_budget(Some(budget));
            }
            FaultKind::FailForwards { count } => {
                self.slots[e.replica].controls.fail_next_forwards(count);
            }
            FaultKind::ExhaustSwap => {
                self.counters.swap_exhaustions.inc();
                self.slots[e.replica].engine.set_swap_disabled(true);
            }
            FaultKind::RestoreSwap => {
                self.slots[e.replica].engine.set_swap_disabled(false);
            }
            FaultKind::DelayCacheOps { seconds_per_op } => {
                self.slots[e.replica]
                    .controls
                    .set_cache_op_delay(seconds_per_op);
            }
            FaultKind::PoolPressure { fraction } => {
                self.counters.pool_pressures.inc();
                // deflate_pool clamps to the live working set, so the only
                // failure mode is corrupted accounting — surfaced loudly.
                self.slots[e.replica]
                    .engine
                    .deflate_pool(fraction)
                    .expect("pool deflation must always find a feasible size");
            }
            FaultKind::RestorePool => {
                self.slots[e.replica]
                    .engine
                    .restore_pool()
                    .expect("pool restoration grows back to the configured size");
            }
        }
    }

    /// Records an untraced instant span for a fired fault event, so kills
    /// and restarts line up against request spans on the trace timeline.
    fn record_fault_span(&self, e: &FaultEvent, step: u64) {
        let name = match e.kind {
            FaultKind::KillReplica => "fault.kill",
            FaultKind::RestartReplica => "fault.restart",
            FaultKind::StallReplica { .. } => "fault.stall",
            FaultKind::StallPrefill { .. } => "fault.stall_prefill",
            FaultKind::FailForwards { .. } => "fault.fail_forwards",
            FaultKind::ExhaustSwap => "fault.exhaust_swap",
            FaultKind::RestoreSwap => "fault.restore_swap",
            FaultKind::DelayCacheOps { .. } => "fault.delay_cache_ops",
            FaultKind::PoolPressure { .. } => "fault.pool_pressure",
            FaultKind::RestorePool => "fault.restore_pool",
        };
        self.telemetry.spans().record(Span {
            trace_id: 0,
            span_id: 0,
            parent_span_id: 0,
            name: name.to_string(),
            start: step as f64,
            end: step as f64,
            attrs: vec![
                ("replica".to_string(), e.replica.to_string()),
                ("step".to_string(), step.to_string()),
            ],
        });
    }

    /// Routes and admits one request; on failure, schedules a backoff retry
    /// or records a terminal rejection.
    fn try_place(&mut self, id: u64, step: u64, st: &mut RunState) {
        if !st.pending.contains_key(&id) {
            return;
        }
        // A re-placement restarts the request from scratch, so any
        // in-progress handoff state from a previous attempt — stub marker,
        // undelivered transfer, imported prefix — is torn down first. A
        // retried request can therefore never leak pinned blocks or have a
        // stale transfer deliver behind its back.
        self.clear_handoff_state(id, st);
        let (prompt, output_len, ctx, attempt) = {
            let p = st.pending.get_mut(&id).expect("checked above");
            p.attempts += 1;
            // Each attempt is a sibling span under the request's root
            // context; the engine adopts it instead of minting its own.
            let ctx = p.root.child(100 + u64::from(p.attempts));
            (p.req.prompt.clone(), p.req.output_len, ctx, p.attempts)
        };
        let hashes = chunk_hashes(&prompt, self.block_size);
        let snaps = self.snapshots();
        let d = self.router.route(&hashes, &snaps);
        // On a prefill-role replica the request runs as a one-token stub:
        // prompt phase plus the first sampled token, then a KV handoff
        // moves it to the decode pool.
        let stub = self.roles[d.replica] == ReplicaRole::Prefill && output_len > 1;
        let request = if stub {
            GenerationRequest::greedy(1)
                .with_ignore_eos()
                .with_seed(id)
                .with_trace(ctx)
        } else {
            st.pending[&id].req.request().with_trace(ctx)
        };
        let cap = self.cfg.max_inflight;
        let slot = &mut self.slots[d.replica];
        if slot.alive && !slot.draining && slot.inflight.len() < cap {
            // A fresh engine-side id per attempt: a request re-routed off a
            // failing replica can never collide with its own stale state.
            let engine_id = format!("{id}.{attempt}");
            match slot
                .engine
                .add_generation_request(engine_id.clone(), prompt, &request)
            {
                Ok(()) => {
                    slot.inflight.insert(engine_id, id);
                    if stub {
                        st.stubs.insert(id);
                    }
                    return;
                }
                Err(e) if e.is_retryable() => {}
                Err(_) => {
                    record(st, id, Outcome::Rejected);
                    return;
                }
            }
        }
        // Backpressure / dead target / transient admission failure: capped
        // exponential backoff, terminal rejection once attempts run out.
        if attempt >= self.cfg.max_attempts {
            record(st, id, Outcome::Rejected);
            return;
        }
        self.router.record_retry();
        let delay = (1u64 << attempt.min(6)).min(self.cfg.max_backoff_steps);
        st.retry_q.push((step + delay, id));
    }

    /// Runs one lockstep step on replica `i`.
    fn step_replica(&mut self, i: usize, step: u64, st: &mut RunState) {
        if !self.slots[i].alive {
            return;
        }
        if self.slots[i].stall_remaining > 0 {
            self.slots[i].stall_remaining -= 1;
            return;
        }
        if !self.slots[i].engine.has_unfinished() {
            if self.slots[i].draining {
                // Drained: swap in a fresh engine and rejoin the fleet.
                self.archive_slot(i);
                let generation = self.slots[i].generation + 1;
                self.slots[i] = fresh_slot(self.seq_invariant, generation);
                self.router.mark_alive(i);
            }
            return;
        }
        let step_result = self.slots[i].engine.step();
        match step_result {
            Ok(outs) => {
                for out in outs {
                    let Some(id) = self.slots[i].inflight.remove(&out.request_id) else {
                        continue;
                    };
                    if st.stubs.remove(&id) {
                        // Prefill stub finished: its single output token is
                        // the request's first sampled token; serialize the
                        // KV and start the transfer to the decode pool.
                        let t0 = out
                            .outputs
                            .first()
                            .and_then(|c| c.tokens.first().copied())
                            .unwrap_or(0);
                        self.begin_handoff(id, t0, step, st);
                        continue;
                    }
                    let mut tokens: Vec<Vec<u32>> =
                        out.outputs.iter().map(|c| c.tokens.clone()).collect();
                    if let Some(info) = st.decodes.remove(&id) {
                        // Decode phase done: stitch the prefill-sampled
                        // first token back on and release the imported
                        // prefix (zero-leak accounting).
                        if let Some(seq) = tokens.first_mut() {
                            seq.insert(0, info.t0);
                        }
                        self.release_handoff_prefix(info.prefix);
                    }
                    record(st, id, Outcome::Completed { tokens });
                }
            }
            Err(_) => {
                // Injected forward fault: abort everything live (exact
                // block accounting), reap the aborted groups, and re-route
                // the affected requests.
                self.counters.forward_failures.inc();
                let slot = &mut self.slots[i];
                if slot.engine.abort_all().is_ok() {
                    let _ = slot.engine.step();
                }
                for (_, id) in slot.inflight.drain() {
                    self.router.record_retry();
                    st.retry_q.push((step + 1, id));
                }
            }
        }
    }

    /// Serializes a finished prefill stub's KV through the wire codec and
    /// starts its transfer to a decode replica.
    fn begin_handoff(&mut self, id: u64, t0: u32, step: u64, st: &mut RunState) {
        let Some(p) = st.pending.get(&id) else {
            return;
        };
        // Round-trip the same codec the TCP frontend ships over, so
        // framing or checksum bugs surface deterministically here. The
        // mock executor has no addressable KV, so the block bodies are
        // empty — the count and layout contract is still enforced.
        let payload = HandoffPayload {
            request_id: id.to_string(),
            tokens: p.req.prompt.clone(),
            first_token: Some(t0),
            seed: id,
            block_size: self.block_size,
            blocks: vec![KvBlockBytes::empty(); p.req.prompt.len().div_ceil(self.block_size)],
        };
        let wire = payload.encode_wire();
        let payload =
            HandoffPayload::decode_wire(&wire).expect("handoff frames round-trip the wire codec");
        payload
            .validate()
            .expect("decoded handoff payload is internally consistent");
        // The handoff span nests under the request root, as a sibling of
        // the placement attempts (slot offset keeps ids collision-free).
        let ctx = p.root.child(200 + u64::from(p.attempts));
        let snaps = self.snapshots();
        let dst = self.router.route_decode(&snaps);
        self.counters.handoffs.inc();
        st.transfers.push(Transfer {
            id,
            payload,
            dst,
            started_at: step,
            commit_at: step + TRANSFER_STEPS,
            ctx,
        });
    }

    /// Commits due transfers, re-routing any whose decode target died or
    /// backed up mid-transfer. Each payload is delivered at most once: the
    /// transfer entry is mutated in place on a retry and removed on
    /// commit.
    fn process_transfers(&mut self, step: u64, st: &mut RunState) {
        let mut idx = 0;
        while idx < st.transfers.len() {
            if st.transfers[idx].commit_at > step {
                idx += 1;
                continue;
            }
            let dst = st.transfers[idx].dst;
            let deliverable = self.slots[dst].alive
                && !self.slots[dst].draining
                && self.slots[dst].inflight.len() < self.cfg.max_inflight;
            if !deliverable {
                let snaps = self.snapshots();
                let new_dst = self.router.route_decode(&snaps);
                let t = &mut st.transfers[idx];
                t.dst = new_dst;
                t.commit_at = step + TRANSFER_STEPS;
                self.counters.handoff_retries.inc();
                self.router.record_retry();
                idx += 1;
                continue;
            }
            let t = st.transfers.remove(idx);
            self.commit_handoff(t, step, st);
        }
    }

    /// Installs a transferred prefix on the decode replica and admits the
    /// request's decode phase (resumed prompt = original prompt plus the
    /// prefill-sampled first token).
    fn commit_handoff(&mut self, t: Transfer, step: u64, st: &mut RunState) {
        if st.outcomes.contains_key(&t.id) {
            return;
        }
        let Some(p) = st.pending.get(&t.id) else {
            return;
        };
        let output_len = p.req.output_len;
        let t0 = t
            .payload
            .first_token
            .expect("prefill handoffs carry the first sampled token");
        let mut resumed = t.payload.tokens.clone();
        resumed.push(t0);
        // Longest block-aligned *strict* prefix of the resumed prompt: the
        // decode replica recomputes only the uncovered tail (>= 1 token),
        // everything else comes from the installed blocks.
        let keep = ((resumed.len() - 1) / self.block_size) * self.block_size;
        let mut prefix = None;
        if keep > 0 {
            let blocks = t.payload.blocks[..keep / self.block_size].to_vec();
            if let Ok(pid) = self.slots[t.dst]
                .engine
                .import_prefix(resumed[..keep].to_vec(), blocks)
            {
                prefix = Some((t.dst, self.slots[t.dst].generation, pid));
            }
        }
        st.admit_seq += 1;
        let engine_id = format!("{}.d{}", t.id, st.admit_seq);
        let request = GenerationRequest::greedy(output_len - 1)
            .with_ignore_eos()
            .with_seed(t.id)
            .with_trace(t.ctx.child(4));
        match self.slots[t.dst]
            .engine
            .add_generation_request(engine_id.clone(), resumed, &request)
        {
            Ok(()) => {
                self.slots[t.dst].inflight.insert(engine_id, t.id);
                st.decodes.insert(t.id, DecodeInfo { t0, prefix });
                self.record_handoff_spans(&t, step);
            }
            Err(e) if e.is_retryable() => {
                // Roll the install back and resend the transfer later.
                self.release_handoff_prefix(prefix);
                self.counters.handoff_retries.inc();
                self.router.record_retry();
                st.transfers.push(Transfer {
                    commit_at: step + TRANSFER_STEPS,
                    ..t
                });
            }
            Err(_) => {
                self.release_handoff_prefix(prefix);
                record(st, t.id, Outcome::Rejected);
            }
        }
    }

    /// Tears down any in-progress handoff state for a request about to be
    /// re-placed from scratch.
    fn clear_handoff_state(&mut self, id: u64, st: &mut RunState) {
        st.stubs.remove(&id);
        st.transfers.retain(|t| t.id != id);
        if let Some(info) = st.decodes.remove(&id) {
            self.release_handoff_prefix(info.prefix);
        }
    }

    /// Releases an imported prefix, but only against the engine generation
    /// that created it — a restarted replica's fresh pool never sees a
    /// stale handle.
    fn release_handoff_prefix(&mut self, prefix: Option<(usize, u64, PrefixId)>) {
        if let Some((replica, generation, pid)) = prefix {
            let slot = &mut self.slots[replica];
            if slot.alive && slot.generation == generation {
                let _ = slot.engine.release_prefix(pid);
            }
        }
    }

    /// Records the committed handoff's span tree on the cluster telemetry:
    /// a `handoff` parent under the request root, with `handoff.export`,
    /// `handoff.transfer`, and `handoff.install` children nested inside
    /// its bounds. The decode attempt's engine span hangs off slot 4 of
    /// the same context.
    fn record_handoff_spans(&self, t: &Transfer, commit: u64) {
        let start = t.started_at as f64;
        let end = commit as f64;
        let spans = self.telemetry.spans();
        spans.record(Span {
            trace_id: t.ctx.trace_id,
            span_id: t.ctx.span_id,
            parent_span_id: t.ctx.parent_span_id,
            name: "handoff".to_string(),
            start,
            end,
            attrs: vec![
                ("dst".to_string(), t.dst.to_string()),
                ("kv_bytes".to_string(), t.payload.kv_bytes().to_string()),
                ("blocks".to_string(), t.payload.blocks.len().to_string()),
            ],
        });
        let child = |slot: u64, name: &str, s: f64, e: f64| Span {
            trace_id: t.ctx.trace_id,
            span_id: t.ctx.child(slot).span_id,
            parent_span_id: t.ctx.span_id,
            name: name.to_string(),
            start: s,
            end: e,
            attrs: Vec::new(),
        };
        spans.record(child(1, "handoff.export", start, start));
        spans.record(child(2, "handoff.transfer", start, end));
        spans.record(child(3, "handoff.install", end, end));
    }

    /// Builds the router's per-replica view.
    fn snapshots(&self) -> Vec<ReplicaSnapshot> {
        self.slots
            .iter()
            .map(|s| ReplicaSnapshot {
                load: s.engine.load_snapshot(),
                coverage: Arc::new(s.engine.prefix_coverage()),
            })
            .collect()
    }
}

/// A fresh replica slot: small identical engine behind a fault injector.
fn fresh_slot(seq_invariant: bool, generation: u64) -> ReplicaSlot {
    let cache = CacheConfig::new(4, 64, 16).expect("valid cache config");
    let sched = SchedulerConfig::new(2048, 64, 2048).expect("valid scheduler config");
    let controls = FaultControls::new();
    let mock = if seq_invariant {
        MockExecutor::new(1000).seq_invariant()
    } else {
        MockExecutor::new(1000)
    };
    let engine = LlmEngine::new(
        FaultInjector::new(mock, Arc::clone(&controls)),
        cache,
        sched,
    );
    ReplicaSlot {
        engine,
        controls,
        alive: true,
        draining: false,
        stall_remaining: 0,
        inflight: HashMap::new(),
        generation,
    }
}

/// Records a terminal outcome, counting duplicates instead of overwriting
/// silently.
fn record(st: &mut RunState, id: u64, outcome: Outcome) {
    match st.outcomes.entry(id) {
        std::collections::hash_map::Entry::Occupied(_) => st.duplicates += 1,
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(outcome);
        }
    }
}

/// Order-independent FNV-1a fingerprint of every terminal outcome.
fn fingerprint(outcomes: &HashMap<u64, Outcome>) -> u64 {
    let mut ids: Vec<u64> = outcomes.keys().copied().collect();
    ids.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for id in ids {
        mix(id);
        match &outcomes[&id] {
            Outcome::Completed { tokens } => {
                mix(1);
                for seq in tokens {
                    mix(seq.len() as u64);
                    for &t in seq {
                        mix(u64::from(t));
                    }
                }
            }
            Outcome::Rejected => mix(2),
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prompt(id: u64, len: usize) -> Vec<u32> {
        (0..len)
            .map(|i| 1 + ((id * 31 + i as u64 * 7) % 997) as u32)
            .collect()
    }

    fn trace(n: u64, per_step: f64) -> Vec<ClusterRequest> {
        (0..n)
            .map(|i| ClusterRequest {
                id: i,
                arrival: i as f64 / per_step,
                prompt: prompt(i, 16),
                output_len: 12,
            })
            .collect()
    }

    #[test]
    fn seeded_fault_runs_are_deterministic() {
        let run = |seed: u64| {
            let plan = FaultPlan::seeded(seed, 3, 40);
            let mut cluster = FaultCluster::new(FaultClusterConfig::new(3));
            cluster.run(&plan, trace(24, 2.0))
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce the identical report");
        assert_eq!(a.lost, 0);
        assert_eq!(a.duplicates, 0);
        assert_eq!(a.completed + a.rejected, a.num_requests);
        assert_eq!(a.leaked_blocks, 0);
        // A different seed yields a different plan.
        assert_ne!(
            FaultPlan::seeded(7, 3, 40),
            FaultPlan::seeded(8, 3, 40),
            "plans must depend on the seed"
        );
    }

    #[test]
    fn killing_a_replica_mid_decode_loses_zero_requests() {
        let plan = FaultPlan::new(0).with_event(4, 0, FaultKind::KillReplica);
        let mut cluster =
            FaultCluster::new(FaultClusterConfig::new(3).with_policy(RoutePolicy::RoundRobin));
        let report = cluster.run(&plan, trace(18, 3.0));
        assert_eq!(report.kills, 1);
        assert_eq!(report.lost, 0, "no request may vanish with its replica");
        assert_eq!(report.duplicates, 0, "no request may complete twice");
        assert_eq!(report.completed, 18, "capacity is ample: all complete");
        assert!(
            report.retries > 0,
            "in-flight work must have been re-routed"
        );
        assert_eq!(report.leaked_blocks, 0);
        assert_eq!(cluster.router().num_alive(), 2);
        // Fault and retry counters surface in the merged exposition.
        let merged = cluster.merged_snapshot();
        assert_eq!(merged.counter("vllm_fault_kills_total"), Some(1));
        assert_eq!(
            merged.counter("vllm_cluster_retries_total"),
            Some(report.retries)
        );
        let text = merged.to_prometheus_text();
        assert!(text.contains("vllm_fault_injected_total"));
    }

    #[test]
    fn restart_after_kill_restores_the_fleet() {
        let plan = FaultPlan::new(0)
            .with_event(3, 1, FaultKind::KillReplica)
            .with_event(10, 1, FaultKind::RestartReplica);
        let mut cluster = FaultCluster::new(FaultClusterConfig::new(2));
        let report = cluster.run(&plan, trace(16, 1.0));
        assert_eq!(report.lost, 0);
        assert_eq!(report.completed, 16);
        assert_eq!(cluster.router().num_alive(), 2, "restart rejoins the fleet");
        assert_eq!(report.leaked_blocks, 0);
    }

    #[test]
    fn swap_exhaustion_degrades_without_losing_requests() {
        let plan = FaultPlan::new(0)
            .with_event(1, 0, FaultKind::ExhaustSwap)
            .with_event(1, 1, FaultKind::ExhaustSwap);
        let mut cluster = FaultCluster::new(FaultClusterConfig::new(2));
        let report = cluster.run(&plan, trace(20, 4.0));
        assert_eq!(report.lost, 0);
        assert_eq!(report.completed, 20);
        assert_eq!(report.leaked_blocks, 0);
    }

    #[test]
    fn forward_failures_are_retried_elsewhere() {
        let plan = FaultPlan::new(0).with_event(2, 0, FaultKind::FailForwards { count: 2 });
        let mut cluster =
            FaultCluster::new(FaultClusterConfig::new(2).with_policy(RoutePolicy::RoundRobin));
        let report = cluster.run(&plan, trace(10, 2.0));
        assert_eq!(report.lost, 0);
        assert_eq!(report.completed, 10);
        assert!(report.forward_failures > 0);
        assert!(report.retries > 0);
        assert_eq!(report.leaked_blocks, 0);
    }

    #[test]
    fn kill_archives_spans_and_metrics_and_keeps_sibling_attempts() {
        let plan = FaultPlan::new(0)
            .with_event(4, 0, FaultKind::KillReplica)
            .with_event(20, 0, FaultKind::RestartReplica);
        let mut cluster =
            FaultCluster::new(FaultClusterConfig::new(2).with_policy(RoutePolicy::RoundRobin));
        let report = cluster.run(&plan, trace(12, 2.0));
        assert_eq!(report.lost, 0);
        assert!(report.retries > 0, "the kill must re-route in-flight work");

        // The killed engine's spans survive the restart via the archive,
        // and a re-routed request's attempts are siblings: same trace,
        // same parent, different span ids.
        let all = cluster.all_spans();
        let mut attempts: HashMap<u64, Vec<Span>> = HashMap::new();
        for (_, spans) in &all {
            for s in spans.iter().filter(|s| s.name == "attempt") {
                attempts.entry(s.trace_id).or_default().push(s.clone());
            }
        }
        let retried = attempts
            .values()
            .find(|a| a.len() >= 2)
            .expect("some request must have attempt spans on two engines");
        assert!(retried
            .iter()
            .all(|a| a.parent_span_id == retried[0].parent_span_id));
        assert_ne!(retried[0].span_id, retried[1].span_id);

        // Archived metrics are labeled by generation in the merged
        // snapshot, so killed-engine samples still count.
        let merged = cluster.merged_snapshot();
        assert!(
            merged.metrics.iter().any(|m| m.name.contains(".gen")),
            "archived engine metrics missing from the merged snapshot"
        );
        assert_eq!(cluster.span_log_drops(), 0);

        // Fault events show up as cluster-level instant spans.
        let cluster_spans = cluster.telemetry().spans().snapshot();
        assert!(cluster_spans.iter().any(|s| s.name == "fault.kill"));
        assert!(cluster_spans.iter().any(|s| s.name == "fault.restart"));
    }

    #[test]
    fn kill_between_prefill_chunks_loses_nothing() {
        // Both replicas switch to chunked prefill (16-token prompts split
        // into 4 chunks of 4), then replica 0 is killed while prefills are
        // mid-prompt. Every partially-prefilled request must be re-routed
        // and complete exactly once, with exact block accounting.
        let plan = FaultPlan::new(0)
            .with_event(0, 0, FaultKind::StallPrefill { chunks: 4 })
            .with_event(0, 1, FaultKind::StallPrefill { chunks: 4 })
            .with_event(3, 0, FaultKind::KillReplica)
            .with_event(16, 0, FaultKind::RestartReplica);
        let run = || {
            let mut cluster =
                FaultCluster::new(FaultClusterConfig::new(2).with_policy(RoutePolicy::RoundRobin));
            let report = cluster.run(&plan, trace(16, 2.0));
            let merged = cluster.merged_snapshot();
            let spans = cluster.telemetry().spans().snapshot();
            (report, merged, spans)
        };
        let (report, merged, spans) = run();
        assert_eq!(report.kills, 1);
        assert_eq!(report.lost, 0, "mid-prefill kill must not lose requests");
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.completed, 16);
        assert!(report.retries > 0, "in-flight chunked prefills re-route");
        assert_eq!(report.leaked_blocks, 0, "chunk cursors must not leak");
        assert_eq!(merged.counter("vllm_fault_prefill_stalls_total"), Some(2));
        assert!(spans.iter().any(|s| s.name == "fault.stall_prefill"));
        // Deterministic under mid-chunk kills.
        assert_eq!(report, run().0);
    }

    #[test]
    fn pool_pressure_mid_decode_leaks_nothing() {
        // Deflate replica 0's GPU pool to 40% mid-decode (forcing a
        // compaction migration of its live blocks), restore it later: every
        // request still completes exactly once and no block leaks.
        let plan = FaultPlan::new(0)
            .with_event(3, 0, FaultKind::PoolPressure { fraction: 0.4 })
            .with_event(12, 0, FaultKind::RestorePool);
        let run = || {
            let mut cluster =
                FaultCluster::new(FaultClusterConfig::new(2).with_policy(RoutePolicy::RoundRobin));
            let report = cluster.run(&plan, trace(16, 2.0));
            let merged = cluster.merged_snapshot();
            let spans = cluster.telemetry().spans().snapshot();
            (report, merged, spans)
        };
        let (report, merged, spans) = run();
        assert_eq!(report.lost, 0);
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.completed, 16);
        assert_eq!(report.leaked_blocks, 0, "deflate+compact must not leak");
        assert_eq!(merged.counter("vllm_fault_pool_pressure_total"), Some(1));
        assert!(spans.iter().any(|s| s.name == "fault.pool_pressure"));
        assert!(spans.iter().any(|s| s.name == "fault.restore_pool"));
        // Deterministic under the deflate/restore cycle.
        assert_eq!(report, run().0);
    }

    /// Oracle for the disaggregated tests: the same trace on a unified
    /// fleet with sequence-invariant tokens. Disaggregation must be a pure
    /// placement change — identical token streams, bit for bit.
    fn unified_oracle(n_replicas: usize, requests: Vec<ClusterRequest>) -> FaultReport {
        let cfg = FaultClusterConfig::new(n_replicas).with_seq_invariant_tokens();
        let mut cluster = FaultCluster::new(cfg);
        cluster.run(&FaultPlan::new(0), requests)
    }

    #[test]
    fn disaggregated_fleet_matches_unified_token_streams() {
        let oracle = unified_oracle(4, trace(16, 2.0));
        assert_eq!(oracle.completed, 16, "oracle must complete everything");
        let mut cluster = FaultCluster::with_fleet(
            FaultClusterConfig::new(4),
            &ClusterConfig::disaggregated(2, 2),
        );
        let report = cluster.run(&FaultPlan::new(0), trace(16, 2.0));
        assert_eq!(report.completed, 16);
        assert_eq!(report.lost, 0);
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.handoffs, 16, "every request hands off exactly once");
        assert_eq!(report.handoff_retries, 0, "healthy fleet: no resends");
        assert_eq!(
            report.leaked_blocks, 0,
            "imported prefixes must be released at decode completion"
        );
        assert_eq!(
            report.token_fingerprint, oracle.token_fingerprint,
            "disaggregation must not change a single output token"
        );
        // New traffic lands only on the prefill pool; decode picks only on
        // the decode pool.
        let stats = cluster.router().stats();
        assert_eq!(stats.routed[2] + stats.routed[3], 0);
        assert_eq!(stats.decode_routed[0] + stats.decode_routed[1], 0);
        assert_eq!(stats.decode_routed[2] + stats.decode_routed[3], 16);
        // Handoff counters surface in the merged exposition.
        let merged = cluster.merged_snapshot();
        assert_eq!(merged.counter("vllm_cluster_handoffs_total"), Some(16));
    }

    #[test]
    fn decode_death_mid_transfer_delivers_exactly_once() {
        // Replica 2 (decode) dies one step into the two-step transfer
        // window, before any payload routed to it has committed; replica 3
        // is stalled at step 2 and killed at step 3, so requests that
        // committed onto it sit between handoff commit and their first
        // decode step when the kill lands. Both fault windows of the
        // handoff path fire in one run, and still: every request completes
        // exactly once, nothing leaks, and the token streams match the
        // healthy unified fleet's.
        let oracle = unified_oracle(4, trace(8, 4.0));
        let plan = FaultPlan::new(0)
            .with_event(1, 2, FaultKind::KillReplica)
            .with_event(2, 3, FaultKind::StallReplica { steps: 1 })
            .with_event(3, 3, FaultKind::KillReplica)
            .with_event(20, 2, FaultKind::RestartReplica)
            .with_event(20, 3, FaultKind::RestartReplica);
        let run = || {
            let mut cluster = FaultCluster::with_fleet(
                FaultClusterConfig::new(4),
                &ClusterConfig::disaggregated(2, 2),
            );
            cluster.run(&plan, trace(8, 4.0))
        };
        let report = run();
        assert_eq!(report.kills, 2);
        assert_eq!(report.completed, 8, "no request may die with its replica");
        assert_eq!(report.lost, 0);
        assert_eq!(report.duplicates, 0, "payloads are delivered exactly once");
        assert_eq!(
            report.leaked_blocks, 0,
            "no pinned prefix may outlive its request"
        );
        assert!(
            report.handoff_retries > 0,
            "a transfer must have been re-routed off the dead target"
        );
        assert_eq!(
            report.token_fingerprint, oracle.token_fingerprint,
            "token streams must survive mid-handoff kills bit-for-bit"
        );
        assert_eq!(report, run(), "faulted handoffs must be deterministic");
    }

    #[test]
    fn handoff_spans_are_well_nested() {
        let mut cluster = FaultCluster::with_fleet(
            FaultClusterConfig::new(4),
            &ClusterConfig::disaggregated(2, 2),
        );
        let report = cluster.run(&FaultPlan::new(0), trace(4, 2.0));
        assert_eq!(report.completed, 4);
        let spans = cluster.telemetry().spans().snapshot();
        let handoffs: Vec<&Span> = spans.iter().filter(|s| s.name == "handoff").collect();
        assert_eq!(handoffs.len(), 4, "one handoff span per request");
        let engine_spans: Vec<Span> = cluster
            .all_spans()
            .into_iter()
            .flat_map(|(_, s)| s)
            .collect();
        for h in handoffs {
            assert_ne!(h.trace_id, 0, "handoffs belong to the request trace");
            for name in ["handoff.export", "handoff.transfer", "handoff.install"] {
                let child = spans
                    .iter()
                    .find(|s| s.name == name && s.parent_span_id == h.span_id)
                    .unwrap_or_else(|| panic!("missing {name} child"));
                assert_eq!(child.trace_id, h.trace_id);
                assert!(
                    child.start >= h.start && child.end <= h.end,
                    "{name} must nest inside the handoff bounds"
                );
            }
            // The decode attempt on the target engine hangs off the same
            // handoff span.
            assert!(
                engine_spans
                    .iter()
                    .any(|s| s.name == "attempt" && s.parent_span_id == h.span_id),
                "decode attempt span must be a child of the handoff"
            );
        }
    }

    #[test]
    fn bounded_admission_backpressure_rejects_when_attempts_run_out() {
        // One replica, capacity 1, no faults: a burst cannot all fit, so
        // some requests exhaust their attempts and are rejected — but
        // nothing is lost or duplicated, and the outcome is deterministic.
        let cfg = FaultClusterConfig::new(1)
            .with_max_inflight(1)
            .with_max_attempts(3);
        let run = || {
            let mut cluster = FaultCluster::new(cfg);
            cluster.run(&FaultPlan::new(0), trace(12, 12.0))
        };
        let a = run();
        assert_eq!(a.lost, 0);
        assert_eq!(a.duplicates, 0);
        assert_eq!(a.completed + a.rejected, 12);
        assert!(a.rejected > 0, "capacity 1 must shed part of the burst");
        assert!(a.retries > 0);
        assert_eq!(a, run(), "backpressure must be deterministic");
    }
}
