#!/bin/sh
# Regenerates every figure/table harness output into results/.
set -e
cd "$(dirname "$0")/.."
cargo build --release -p vllm-bench -q
for b in table1 fig01 fig02 fig11 fig13 fig15 fig16 fig17 fig18a fig18b fig19 \
         ablation extension_h100 extension_burstiness; do
  echo "running $b"
  ./target/release/$b > results/$b.txt 2>&1
done
./target/release/fig12 > results/fig12.txt 2>&1
./target/release/fig14 > results/fig14.txt 2>&1
echo "all harnesses done"
