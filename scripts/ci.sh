#!/usr/bin/env bash
# CI gate: formatting, lints, release build, full test suite.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> telemetry consistency check"
cargo run --release -q -p vllm-bench --bin telemetry -- --ci

echo "==> cluster routing check"
cargo run --release -q -p vllm-bench --bin cluster -- --ci

echo "==> kernel bench gate (all backends: batched >= 2x seed, simd GEMM >= 1.3x scalar, quant-kv8 blocks >= 1.8x at equal bytes)"
cargo run --release -q -p vllm-bench --bin kernels -- --ci

echo "==> fault-injection soak gate (kill/swap-exhaust, zero loss, deterministic)"
cargo run --release -q -p vllm-bench --bin faults -- --ci

echo "==> distributed-tracing gate (well-nested span trees across kill/retry, Perfetto export, span/e2e consistency within 1%, zero span-log drops)"
cargo run --release -q -p vllm-bench --bin trace -- --ci
mkdir -p results
cp target/ci-trace/trace.json target/ci-trace/trace_perfetto.json target/ci-trace/trace_summary.json results/

echo "==> elastic capacity gate (elastic peak batch >= fixed pool at equal budget, scalar + quant-kv8, contiguous baseline numbers)"
cargo run --release -q -p vllm-bench --bin elastic -- --ci

echo "==> chunked-prefill gate (mixed-traffic TTFT: short-request p99 halved at equal throughput; chunked vs unchunked bit-identity on all backends; 32k-prompt smoke, zero leaks)"
cargo run --release -q -p vllm-bench --bin prefill -- --ci

echo "CI OK"
