//! A minimal serving frontend (§5's FastAPI analog): a TCP server with a
//! newline-delimited text protocol in front of one or more [`LlmEngine`]
//! replicas, each running on its own thread behind a cache-aware router
//! (`vllm_cluster`).
//!
//! Protocol (UTF-8 lines, tab-separated fields):
//!
//! ```text
//! -> GENERATE\tmax_tokens=<n>\t[n=<n>\t]mode=<mode>[\t<key>=<value>...]\t<prompt text>
//!    where <mode> is one of: greedy | sample | beam (`n` defaults to 1),
//!    and the optional <key>=<value> fields (any order, before the prompt)
//!    are:
//!      temperature=<f32>   sampling temperature       (mode=sample only)
//!      top_p=<f32>         nucleus truncation in (0,1] (mode=sample only)
//!      seed=<u64>          sampling RNG seed (default derives from the id)
//!      deadline=<f64>      relative deadline in engine seconds; the request
//!                          is cancelled if still unfinished when it passes
//!      priority=<i32>      scheduling priority (higher admitted first)
//!      trace=<ctx>         distributed trace context to adopt instead of
//!                          minting one: `<trace_id:016x>-<span_id:016x>-<0|1>`
//!                          (the trailing flag is the sampling decision)
//!    Every field parses through the typed `GenerationRequest` builder in
//!    `vllm-core`; an unknown <key>=<value> field is rejected with a
//!    structured error, never silently swallowed into the prompt. A field
//!    whose key matches `[a-z_]+=` therefore cannot start the prompt text.
//!
//!    DEPRECATED compat form (positional; parsed when the second field is
//!    not `key=value`-shaped, kept for old clients, slated for removal):
//! -> GENERATE\t<max_tokens>\t<n>\t<mode>[\t<key>=<value>...]\t<prompt text>
//!
//! <- OK\t<request_id>\t<num_outputs>
//! <- OUT\t<index>\t<cumulative_logprob>\t<text>      (repeated)
//! <- END
//!
//! -> STATS
//! <- STATS\twaiting=<n>\trunning=<n>\tswapped=<n>\toutstanding_tokens=<n>\t
//!    free_blocks=<n>\ttotal_blocks=<n>\tfinished=<n>\tpreemptions=<n>\t
//!    steps=<n>\ttokens_scheduled=<n>\tblocks_copied=<n>\tblocks_swapped=<n>\t
//!    schedule_time=<s>\tprepare_time=<s>\texecute_time=<s>\t
//!    postprocess_time=<s>\tnorm_lat_mean=<s>\tnorm_lat_p50=<s>\t
//!    norm_lat_p90=<s>\tnorm_lat_p99=<s>\tttft_mean=<s>\tttft_p50=<s>\t
//!    ttft_p99=<s>
//!    (multi-replica servers follow with one RSTATS\t<replica>\t... line per
//!    replica, then END; single-replica servers reply with the one line)
//!
//! -> METRICS
//! <- <Prometheus text exposition lines>      (repeated)
//! <- END
//!
//! -> METRICS\tjson
//! <- <one-line JSON metrics snapshot>
//!
//! -> EVENTS\t<request_id>
//! <- EVENT\t<time>\t<kind>\t<detail>         (repeated, oldest first)
//! <- END
//!    (when there is nothing to replay, the first line distinguishes why:
//!     NOEVENTS\tunknown — the id was never seen — or NOEVENTS\tevicted —
//!     its events aged out of the ring buffer — then END)
//!
//! -> TRACE\t<trace_id>
//! <- <one-line JSON span dump>               ({"tracks":[...]}; trace_id is
//!    16 lowercase hex digits, as minted in the `trace=` field / exporters;
//!    one track per replica, empty tracks elided)
//!
//! -> SHUTDOWN
//! <- OK\tshutdown
//! ```
//!
//! `STATS` serves snapshots the engine loops publish on startup, after
//! admissions, after every iteration, and when an engine drains — so they
//! are never stale while a loop is idle. `METRICS` serves the telemetry
//! registry (single replica: the engine's own; cluster: per-replica
//! snapshots labeled `{replica="i"}` plus the router's `vllm_cluster_*`
//! counters). `EVENTS` replays a request's lifecycle from the owning
//! replica's event log.
//!
//! `SHUTDOWN` stops accepting connections and drains: every request already
//! accepted — queued or mid-generation — finishes and is delivered before
//! the engine threads exit, so no accepted request is ever dropped. Dropping
//! the [`Server`] handle has the same drain semantics.
//!
//! Failed requests get `ERR\t<kind>\t<retryable>\t<message>`, where `<kind>`
//! is the [`vllm_core::ErrorKind`] wire name (`resource` | `request` |
//! `internal` | `unavailable`) and `<retryable>` is `true`/`false` — so
//! clients can distinguish "fix your request" from "back off and retry"
//! mechanically. Every variant gets this shape, including misspelled verbs
//! and malformed `STATS`/`METRICS`/`EVENTS` argument lists; the connection
//! stays usable afterwards.
//!
//! Degradation: the `GENERATE` path retries retryable failures (replica
//! killed, admission rejected with backpressure, transient engine error) up
//! to a small bound with capped exponential backoff, re-routing each attempt
//! through the router — which excludes replicas known dead — before
//! surfacing the typed `ERR`. Each connection handles one request per line;
//! the engine threads batch concurrent requests through the normal
//! scheduler, so simultaneous clients share iterations exactly as in the
//! serving evaluation.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use vllm_cluster::{
    aggregate_stats, merge_labeled, EngineRequest, Replica, ReplicaSnapshot, Router, RouterConfig,
};
use vllm_core::telemetry::{spans_to_json, trace_seed, EventQuery, Span, Telemetry, TraceContext};
use vllm_core::{
    chunk_hashes, ElasticConfig, ElasticController, EngineLoad, GenerationMode, GenerationRequest,
    LlmEngine, ModelExecutor, RequestOutput, VllmError,
};
use vllm_model::ByteTokenizer;

pub use vllm_cluster::{EngineStats, RoutePolicy};

/// State shared between the accept loop, connection handlers, and the
/// server handle.
struct Shared {
    replicas: Vec<Replica>,
    router: Mutex<Router>,
    /// Registry holding the router's `vllm_cluster_*` counters.
    cluster_telemetry: Arc<Telemetry>,
    /// KV block size (uniform across replicas; prompt chunk hashing).
    block_size: usize,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn snapshots(&self) -> Vec<ReplicaSnapshot> {
        self.replicas
            .iter()
            .map(|r| {
                let s = r.stats();
                ReplicaSnapshot {
                    load: EngineLoad {
                        waiting: s.waiting,
                        running: s.running,
                        swapped: s.swapped,
                        free_blocks: s.free_blocks,
                        total_blocks: s.total_blocks,
                        outstanding_tokens: s.outstanding_tokens,
                        norm_lat_p50: s.norm_lat_p50,
                    },
                    coverage: r.coverage(),
                }
            })
            .collect()
    }
}

/// Handle to a running frontend server.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts a single-replica server on `addr` (use port 0 for an
    /// ephemeral port) over the given engine.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot bind.
    pub fn spawn<E>(addr: &str, engine: LlmEngine<E>) -> std::io::Result<Self>
    where
        E: ModelExecutor + Send + 'static,
    {
        Self::spawn_cluster(
            addr,
            vec![engine],
            RouterConfig::new(RoutePolicy::RoundRobin),
        )
    }

    /// Starts a server routing across one engine replica per element of
    /// `engines`. All replicas must share a block size (prompt chunk hashes
    /// are computed once).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot bind or `engines` is
    /// empty.
    pub fn spawn_cluster<E>(
        addr: &str,
        engines: Vec<LlmEngine<E>>,
        cfg: RouterConfig,
    ) -> std::io::Result<Self>
    where
        E: ModelExecutor + Send + 'static,
    {
        if engines.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "server needs at least one engine replica",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let block_size = engines[0].cache_config().block_size;
        let replicas: Vec<Replica> = engines
            .into_iter()
            .enumerate()
            .map(|(i, mut e)| {
                // Opt-in elastic pool control: any VLLM_ELASTIC_* variable
                // attaches the hysteresis controller to every replica.
                if let Ok(Some(cfg)) =
                    ElasticConfig::enabled_from_env(e.cache_config().num_gpu_blocks)
                {
                    e.set_elastic(Some(ElasticController::new(cfg)));
                }
                Replica::spawn(i, e)
            })
            .collect();
        let cluster_telemetry = Arc::new(Telemetry::new());
        let mut router = Router::new(cfg, replicas.len());
        router.attach_telemetry(&cluster_telemetry);
        let shared = Arc::new(Shared {
            replicas,
            router: Mutex::new(router),
            cluster_telemetry,
            block_size,
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Self {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The latest serving stats, aggregated across replicas (identical to
    /// the single replica's stats when there is only one).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        aggregate_stats(&self.replica_stats())
    }

    /// The latest per-replica stats snapshots, in replica order.
    #[must_use]
    pub fn replica_stats(&self) -> Vec<EngineStats> {
        self.shared.replicas.iter().map(Replica::stats).collect()
    }

    /// The first replica engine's telemetry bundle (metrics registry + event
    /// log), shared with its engine thread.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        self.shared.replicas[0].telemetry()
    }

    /// Fault injection: kills replica `i` abruptly (no drain) and tells the
    /// router. In-flight requests on the replica are answered with a
    /// retryable error, which the `GENERATE` retry path re-routes to the
    /// surviving replicas.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn kill_replica(&self, i: usize) {
        self.shared.replicas[i].inject_kill();
        self.shared.router.lock().mark_dead(i);
    }

    /// Stops the server, drains all accepted requests, and joins its
    /// threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Handlers first: one may still be waiting on an in-flight request,
        // which the (still running) engine loops will deliver.
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Then drain the engines; queued work finishes before the join.
        for r in &self.shared.replicas {
            r.begin_shutdown();
        }
        for r in &self.shared.replicas {
            r.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &shared);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Shorthand for protocol-shape errors ([`VllmError::InvalidRequest`]).
fn invalid(msg: impl Into<String>) -> VllmError {
    VllmError::InvalidRequest(msg.into())
}

/// The wire line for a typed error: `ERR\t<kind>\t<retryable>\t<message>`.
fn err_line(e: &VllmError) -> String {
    format!("ERR\t{}", e.wire_body())
}

/// Splits a `key=value` protocol field. Only keys shaped `[a-z_]+` count —
/// anything else starts the prompt text.
fn split_field(part: &str) -> Option<(&str, &str)> {
    let (k, v) = part.split_once('=')?;
    if !k.is_empty() && k.bytes().all(|b| b.is_ascii_lowercase() || b == b'_') {
        Some((k, v))
    } else {
        None
    }
}

/// Builds the base request from typed `key=value` fields (the current wire
/// form). Returns the request and the index of the first prompt part.
fn parse_typed_fields(parts: &[&str]) -> Result<(GenerationRequest, usize), VllmError> {
    let mut max_tokens: Option<usize> = None;
    let mut n: usize = 1;
    let mut mode: Option<GenerationMode> = None;
    let mut extras: Vec<(String, String)> = Vec::new();
    let mut i = 1;
    while i < parts.len() {
        let Some((key, value)) = split_field(parts[i]) else {
            break;
        };
        match key {
            "max_tokens" => {
                max_tokens = Some(value.parse().map_err(|_| invalid("bad max_tokens"))?);
            }
            "n" => n = value.parse().map_err(|_| invalid("bad n"))?,
            "mode" => mode = Some(value.parse()?),
            // Defer the shared optional fields until the base exists;
            // unknown keys are rejected there.
            _ => extras.push((key.to_string(), value.to_string())),
        }
        i += 1;
    }
    let max_tokens = max_tokens.ok_or_else(|| invalid("missing max_tokens"))?;
    let mode = mode.ok_or_else(|| invalid("missing mode"))?;
    let mut req = base_request(mode, n, max_tokens);
    for (key, value) in extras {
        req.apply_field(&key, &value)?;
    }
    Ok((req, i))
}

/// Builds the base request from the deprecated positional form
/// (`GENERATE\t<max_tokens>\t<n>\t<mode>[\t<key>=<value>...]`). Unknown
/// `key=value` fields are rejected — they used to be silently swallowed
/// into the prompt.
fn parse_positional_fields(parts: &[&str]) -> Result<(GenerationRequest, usize), VllmError> {
    let max_tokens: usize = parts
        .get(1)
        .ok_or_else(|| invalid("missing max_tokens"))?
        .parse()
        .map_err(|_| invalid("bad max_tokens"))?;
    let n: usize = parts
        .get(2)
        .ok_or_else(|| invalid("missing n"))?
        .parse()
        .map_err(|_| invalid("bad n"))?;
    let mode: GenerationMode = parts
        .get(3)
        .ok_or_else(|| invalid("missing mode"))?
        .parse()?;
    let mut req = base_request(mode, n, max_tokens);
    let mut i = 4;
    while i < parts.len() {
        let Some((key, value)) = split_field(parts[i]) else {
            break;
        };
        req.apply_field(key, value)?;
        i += 1;
    }
    Ok((req, i))
}

/// The mode-shaped starting point; invalid combinations (greedy with
/// `n != 1`) surface from [`GenerationRequest::sampling_params`].
fn base_request(mode: GenerationMode, n: usize, max_tokens: usize) -> GenerationRequest {
    let mut req = match mode {
        GenerationMode::Greedy => GenerationRequest::greedy(max_tokens),
        GenerationMode::Sample => GenerationRequest::sample(n, max_tokens),
        GenerationMode::Beam => GenerationRequest::beam(n, max_tokens),
    };
    req.n = n;
    req
}

/// Parses one `GENERATE` line into prompt tokens plus the typed request.
/// Accepts the typed `key=value` form and the deprecated positional form
/// (distinguished by the shape of the second field); both funnel through
/// [`GenerationRequest`], so validation and error wording live in one place.
fn parse_request(line: &str, request_id: &str) -> Result<(Vec<u32>, GenerationRequest), VllmError> {
    let parts: Vec<&str> = line.split('\t').collect();
    if parts.first() != Some(&"GENERATE") {
        return Err(invalid(format!(
            "unknown verb {:?}",
            parts.first().unwrap_or(&"")
        )));
    }
    let (mut req, prompt_start) = if parts.get(1).and_then(|p| split_field(p)).is_some() {
        parse_typed_fields(&parts)?
    } else {
        parse_positional_fields(&parts)?
    };
    if prompt_start >= parts.len() {
        return Err(invalid("missing prompt"));
    }
    let text = parts[prompt_start..].join("\t");
    if text.is_empty() {
        return Err(invalid("empty prompt"));
    }
    if req.seed.is_none() {
        req.seed = Some(fnv(request_id.as_bytes()));
    }
    req = req.with_eos(vllm_model::EOS);
    // Validate now so protocol errors surface before routing; the replica
    // converts again on admission.
    req.sampling_params()?;
    Ok((ByteTokenizer.encode(&text), req))
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `key=value` body shared by `STATS` and `RSTATS` lines.
fn stats_body(s: &EngineStats) -> String {
    format!(
        "waiting={}\trunning={}\tswapped={}\toutstanding_tokens={}\tfree_blocks={}\ttotal_blocks={}\tfinished={}\tpreemptions={}\tsteps={}\ttokens_scheduled={}\tblocks_copied={}\tblocks_swapped={}\tschedule_time={:.6}\tprepare_time={:.6}\texecute_time={:.6}\tpostprocess_time={:.6}\tnorm_lat_mean={:.6}\tnorm_lat_p50={:.6}\tnorm_lat_p90={:.6}\tnorm_lat_p99={:.6}\tttft_mean={:.6}\tttft_p50={:.6}\tttft_p99={:.6}",
        s.waiting, s.running, s.swapped, s.outstanding_tokens, s.free_blocks, s.total_blocks,
        s.finished, s.preemptions, s.steps, s.tokens_scheduled, s.blocks_copied, s.blocks_swapped,
        s.schedule_time, s.prepare_time, s.execute_time, s.postprocess_time,
        s.norm_lat_mean, s.norm_lat_p50, s.norm_lat_p90, s.norm_lat_p99,
        s.ttft_mean, s.ttft_p50, s.ttft_p99
    )
}

/// The metrics snapshot a `METRICS` query serves: the engine's own registry
/// for a single replica (unlabeled, as before clustering), or the labeled
/// per-replica merge plus the router's counters for a cluster.
fn metrics_snapshot(shared: &Shared) -> vllm_core::telemetry::MetricsSnapshot {
    if shared.replicas.len() == 1 {
        return shared.replicas[0].telemetry().registry().snapshot();
    }
    let parts: Vec<(String, vllm_core::telemetry::MetricsSnapshot)> = shared
        .replicas
        .iter()
        .map(|r| (r.id().to_string(), r.telemetry().registry().snapshot()))
        .collect();
    let mut merged = merge_labeled(&parts);
    merged
        .metrics
        .extend(shared.cluster_telemetry.registry().snapshot().metrics);
    merged.metrics.sort_by(|a, b| a.name.cmp(&b.name));
    merged
}

/// Placement attempts per `GENERATE` request before the typed error is
/// surfaced to the client.
const MAX_SUBMIT_ATTEMPTS: u32 = 4;

/// Routes and submits one request, retrying retryable failures on a fresh
/// route with capped exponential backoff. A replica that proves dead (its
/// loop exited, or it answered with a kill-switch unavailability) is
/// reported to the router so subsequent routes — including this request's
/// own retries — avoid it; each retry increments
/// `vllm_cluster_retries_total`.
fn submit_with_retry(
    shared: &Shared,
    request_id: &str,
    prompt: Vec<u32>,
    request: &GenerationRequest,
) -> Result<RequestOutput, VllmError> {
    let hashes = chunk_hashes(&prompt, shared.block_size);
    // Root trace context: adopt the client's (`trace=` field) or mint one
    // from the request id. Each placement attempt gets a sibling child
    // context so retries show up side by side under one root in the tree.
    let root = request
        .trace
        .unwrap_or_else(|| TraceContext::mint(trace_seed(request_id), true));
    let mut last_err: Option<VllmError> = None;
    for attempt in 0..MAX_SUBMIT_ATTEMPTS {
        let replica = {
            let snaps = shared.snapshots();
            shared.router.lock().route(&hashes, &snaps).replica
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        // A fresh engine-side id per attempt keeps retries from colliding
        // with stale state on a previously tried replica.
        let engine_id = if attempt == 0 {
            request_id.to_string()
        } else {
            format!("{request_id}.{attempt}")
        };
        let mut attempt_request = request.clone();
        attempt_request.trace = Some(root.child(100 + u64::from(attempt) + 1));
        let sent = shared.replicas[replica].submit(EngineRequest {
            request_id: engine_id,
            prompt: prompt.clone(),
            request: attempt_request,
            reply: reply_tx,
        });
        let err = if sent.is_err() {
            // The loop is gone: killed, or the server is draining.
            shared.router.lock().mark_dead(replica);
            VllmError::Unavailable("replica not accepting work".into())
        } else {
            match reply_rx.recv() {
                Ok(Ok(out)) => return Ok(out),
                Ok(Err(e)) => {
                    if !e.is_retryable() {
                        return Err(e);
                    }
                    if shared.replicas[replica].is_killed() {
                        shared.router.lock().mark_dead(replica);
                    }
                    e
                }
                Err(_) => {
                    // Reply channel dropped without an answer: replica died.
                    shared.router.lock().mark_dead(replica);
                    VllmError::Unavailable("replica dropped the request".into())
                }
            }
        };
        shared.router.lock().record_retry();
        // Capped exponential backoff, seeded by the error's own hint.
        let base = err.retry_after().unwrap_or(0.01);
        let delay = (base * f64::from(1u32 << attempt)).min(0.2);
        last_err = Some(err);
        std::thread::sleep(Duration::from_secs_f64(delay));
    }
    Err(last_err.unwrap_or_else(|| VllmError::Unavailable("retries exhausted".into())))
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    // A read timeout lets the handler notice server shutdown even while a
    // client keeps its connection open but idle.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let tokenizer = ByteTokenizer;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // Client closed the connection.
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let line = line.trim_end().to_string();
        if line.is_empty() {
            continue;
        }
        match line.split('\t').next().unwrap_or_default() {
            "STATS" => {
                if line != "STATS" {
                    writeln!(writer, "{}", err_line(&invalid("STATS takes no arguments")))?;
                    continue;
                }
                let stats = shared
                    .replicas
                    .iter()
                    .map(Replica::stats)
                    .collect::<Vec<_>>();
                writeln!(writer, "STATS\t{}", stats_body(&aggregate_stats(&stats)))?;
                if shared.replicas.len() > 1 {
                    for (i, s) in stats.iter().enumerate() {
                        writeln!(writer, "RSTATS\t{i}\t{}", stats_body(s))?;
                    }
                    writeln!(writer, "END")?;
                }
            }
            "METRICS" => {
                if line == "METRICS" {
                    let snapshot = metrics_snapshot(shared);
                    writer.write_all(snapshot.to_prometheus_text().as_bytes())?;
                    writeln!(writer, "END")?;
                } else if line == "METRICS\tjson" {
                    let snapshot = metrics_snapshot(shared);
                    writeln!(writer, "{}", snapshot.to_json())?;
                } else {
                    writeln!(
                        writer,
                        "{}",
                        err_line(&invalid(
                            "unknown METRICS format (use METRICS or METRICS\\tjson)"
                        ))
                    )?;
                }
            }
            "EVENTS" => {
                let mut parts = line.split('\t');
                parts.next(); // verb
                match (parts.next(), parts.next()) {
                    (Some(id), None) if !id.is_empty() => {
                        // Distinguish "never seen" from "seen but evicted"
                        // across the fleet: any replica with retained events
                        // wins; otherwise any eviction marker wins.
                        let mut wrote = false;
                        let mut evicted = false;
                        for r in &shared.replicas {
                            match r.telemetry().events().query(id) {
                                EventQuery::Events(events) => {
                                    for ev in events {
                                        writeln!(
                                            writer,
                                            "EVENT\t{:.6}\t{}\t{}",
                                            ev.time,
                                            ev.kind.label(),
                                            ev.kind.detail()
                                        )?;
                                    }
                                    wrote = true;
                                }
                                EventQuery::Evicted => evicted = true,
                                EventQuery::Unknown => {}
                            }
                        }
                        if !wrote {
                            let why = if evicted { "evicted" } else { "unknown" };
                            writeln!(writer, "NOEVENTS\t{why}")?;
                        }
                        writeln!(writer, "END")?;
                    }
                    _ => writeln!(
                        writer,
                        "{}",
                        err_line(&invalid("EVENTS takes exactly one request id"))
                    )?,
                }
            }
            "TRACE" => {
                let mut parts = line.split('\t');
                parts.next(); // verb
                match (parts.next(), parts.next()) {
                    (Some(id), None) if !id.is_empty() => {
                        match u64::from_str_radix(id.trim_start_matches("0x"), 16) {
                            Ok(trace_id) if trace_id != 0 => {
                                let tracks: Vec<(String, Vec<Span>)> = shared
                                    .replicas
                                    .iter()
                                    .map(|r| {
                                        (
                                            format!("replica{}", r.id()),
                                            r.telemetry().spans().spans_for_trace(trace_id),
                                        )
                                    })
                                    .filter(|(_, spans)| !spans.is_empty())
                                    .collect();
                                writeln!(writer, "{}", spans_to_json(&tracks))?;
                            }
                            _ => writeln!(
                                writer,
                                "{}",
                                err_line(&invalid("bad trace id (want 16 hex digits, nonzero)"))
                            )?,
                        }
                    }
                    _ => writeln!(
                        writer,
                        "{}",
                        err_line(&invalid("TRACE takes exactly one trace id"))
                    )?,
                }
            }
            "SHUTDOWN" => {
                if line != "SHUTDOWN" {
                    writeln!(
                        writer,
                        "{}",
                        err_line(&invalid("SHUTDOWN takes no arguments"))
                    )?;
                    continue;
                }
                writeln!(writer, "OK\tshutdown")?;
                shared.shutdown.store(true, Ordering::SeqCst);
            }
            "GENERATE" => {
                let request_id = format!("req-{}", shared.next_id.fetch_add(1, Ordering::SeqCst));
                match parse_request(&line, &request_id) {
                    Err(e) => writeln!(writer, "{}", err_line(&e))?,
                    Ok((prompt, request)) => {
                        match submit_with_retry(shared, &request_id, prompt, &request) {
                            Ok(out) => {
                                writeln!(writer, "OK\t{request_id}\t{}", out.outputs.len())?;
                                for (i, c) in out.outputs.iter().enumerate() {
                                    let text =
                                        tokenizer.decode(&c.tokens).replace(['\t', '\n'], " ");
                                    writeln!(
                                        writer,
                                        "OUT\t{i}\t{:.4}\t{text}",
                                        c.cumulative_logprob
                                    )?;
                                }
                                writeln!(writer, "END")?;
                            }
                            Err(e) => {
                                writeln!(writer, "{}", err_line(&e))?;
                                if shared.shutdown.load(Ordering::SeqCst) {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            verb => writeln!(
                writer,
                "{}",
                err_line(&invalid(format!("unknown verb {verb:?}")))
            )?,
        }
    }
    Ok(())
}

/// A small blocking client for the frontend protocol (used by tests and the
/// `server` example).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One generation result returned by [`Client::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutput {
    /// Index of the output sequence.
    pub index: usize,
    /// Cumulative log-probability.
    pub cumulative_logprob: f64,
    /// Generated text.
    pub text: String,
}

/// Optional `GENERATE` fields for [`Client::generate_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GenerateOptions {
    /// Sampling temperature (mode `sample` only).
    pub temperature: Option<f32>,
    /// Nucleus truncation in (0, 1] (mode `sample` only).
    pub top_p: Option<f32>,
    /// Sampling RNG seed (defaults to a hash of the request id).
    pub seed: Option<u64>,
    /// Relative deadline in engine seconds; the server cancels the request
    /// if it is still unfinished when the deadline passes.
    pub deadline: Option<f64>,
    /// Scheduling priority (higher admitted first; default 0).
    pub priority: Option<i32>,
}

impl Client {
    /// Connects to a frontend server.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the connection fails.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one generation request and waits for its outputs.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure, or `InvalidData` wrapping
    /// a server-side `ERR` message.
    pub fn generate(
        &mut self,
        prompt: &str,
        max_tokens: usize,
        n: usize,
        mode: &str,
    ) -> std::io::Result<Vec<ClientOutput>> {
        self.generate_with(prompt, max_tokens, n, mode, GenerateOptions::default())
    }

    /// Sends one generation request with optional sampling fields and waits
    /// for its outputs.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure, or `InvalidData` wrapping
    /// a server-side `ERR` message.
    pub fn generate_with(
        &mut self,
        prompt: &str,
        max_tokens: usize,
        n: usize,
        mode: &str,
        opts: GenerateOptions,
    ) -> std::io::Result<Vec<ClientOutput>> {
        let mut req = format!("GENERATE\tmax_tokens={max_tokens}\tn={n}\tmode={mode}");
        if let Some(t) = opts.temperature {
            req.push_str(&format!("\ttemperature={t}"));
        }
        if let Some(p) = opts.top_p {
            req.push_str(&format!("\ttop_p={p}"));
        }
        if let Some(s) = opts.seed {
            req.push_str(&format!("\tseed={s}"));
        }
        if let Some(d) = opts.deadline {
            req.push_str(&format!("\tdeadline={d}"));
        }
        if let Some(p) = opts.priority {
            req.push_str(&format!("\tpriority={p}"));
        }
        writeln!(self.writer, "{req}\t{prompt}")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let line = line.trim_end();
        if let Some(msg) = line.strip_prefix("ERR\t") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                msg.to_string(),
            ));
        }
        let mut outputs = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                break;
            }
            let line = line.trim_end();
            if line == "END" {
                break;
            }
            if let Some(rest) = line.strip_prefix("OUT\t") {
                let mut f = rest.splitn(3, '\t');
                let index = f.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                let cumulative_logprob = f.next().and_then(|s| s.parse().ok()).unwrap_or(0.0);
                let text = f.next().unwrap_or_default().to_string();
                outputs.push(ClientOutput {
                    index,
                    cumulative_logprob,
                    text,
                });
            }
        }
        Ok(outputs)
    }

    /// Asks the server to shut down (stop accepting work and drain), and
    /// returns its acknowledgement line.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure.
    pub fn shutdown_server(&mut self) -> std::io::Result<String> {
        writeln!(self.writer, "SHUTDOWN")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line.trim_end().to_string())
    }
}
