//! A minimal serving frontend (§5's FastAPI analog): a TCP server with a
//! newline-delimited text protocol in front of one or more [`LlmEngine`]
//! replicas, each running on its own thread behind a cache-aware router
//! (`vllm_cluster`).
//!
//! Protocol (UTF-8 lines, tab-separated fields):
//!
//! ```text
//! -> GENERATE\t<max_tokens>\t<n>\t<mode>[\t<key>=<value>...]\t<prompt text>
//!    where <mode> is one of: greedy | sample | beam, and the optional
//!    <key>=<value> fields (any order, before the prompt) are:
//!      temperature=<f32>   sampling temperature       (mode=sample only)
//!      top_p=<f32>         nucleus truncation in (0,1] (mode=sample only)
//!      seed=<u64>          sampling RNG seed (default derives from the id)
//! <- OK\t<request_id>\t<num_outputs>
//! <- OUT\t<index>\t<cumulative_logprob>\t<text>      (repeated)
//! <- END
//!
//! -> STATS
//! <- STATS\twaiting=<n>\trunning=<n>\tswapped=<n>\toutstanding_tokens=<n>\t
//!    free_blocks=<n>\ttotal_blocks=<n>\tfinished=<n>\tpreemptions=<n>\t
//!    steps=<n>\ttokens_scheduled=<n>\tblocks_copied=<n>\tblocks_swapped=<n>\t
//!    schedule_time=<s>\tprepare_time=<s>\texecute_time=<s>\t
//!    postprocess_time=<s>\tnorm_lat_mean=<s>\tnorm_lat_p50=<s>\t
//!    norm_lat_p90=<s>\tnorm_lat_p99=<s>\tttft_mean=<s>\tttft_p50=<s>\t
//!    ttft_p99=<s>
//!    (multi-replica servers follow with one RSTATS\t<replica>\t... line per
//!    replica, then END; single-replica servers reply with the one line)
//!
//! -> METRICS
//! <- <Prometheus text exposition lines>      (repeated)
//! <- END
//!
//! -> METRICS\tjson
//! <- <one-line JSON metrics snapshot>
//!
//! -> EVENTS\t<request_id>
//! <- EVENT\t<time>\t<kind>\t<detail>         (repeated, oldest first)
//! <- END
//!
//! -> SHUTDOWN
//! <- OK\tshutdown
//! ```
//!
//! `STATS` serves snapshots the engine loops publish on startup, after
//! admissions, after every iteration, and when an engine drains — so they
//! are never stale while a loop is idle. `METRICS` serves the telemetry
//! registry (single replica: the engine's own; cluster: per-replica
//! snapshots labeled `{replica="i"}` plus the router's `vllm_cluster_*`
//! counters). `EVENTS` replays a request's lifecycle from the owning
//! replica's event log.
//!
//! `SHUTDOWN` stops accepting connections and drains: every request already
//! accepted — queued or mid-generation — finishes and is delivered before
//! the engine threads exit, so no accepted request is ever dropped. Dropping
//! the [`Server`] handle has the same drain semantics.
//!
//! Malformed requests get `ERR\t<message>` — every variant, including
//! misspelled verbs and malformed `STATS`/`METRICS`/`EVENTS` argument lists;
//! the connection stays usable afterwards. Each connection handles one
//! request per line; the engine threads batch concurrent requests through
//! the normal scheduler, so simultaneous clients share iterations exactly as
//! in the serving evaluation.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use vllm_cluster::{
    aggregate_stats, merge_labeled, EngineRequest, Replica, ReplicaSnapshot, Router, RouterConfig,
};
use vllm_core::telemetry::Telemetry;
use vllm_core::{chunk_hashes, DecodingMode, EngineLoad, LlmEngine, ModelExecutor, SamplingParams};
use vllm_model::ByteTokenizer;

pub use vllm_cluster::{EngineStats, RoutePolicy};

/// State shared between the accept loop, connection handlers, and the
/// server handle.
struct Shared {
    replicas: Vec<Replica>,
    router: Mutex<Router>,
    /// Registry holding the router's `vllm_cluster_*` counters.
    cluster_telemetry: Arc<Telemetry>,
    /// KV block size (uniform across replicas; prompt chunk hashing).
    block_size: usize,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn snapshots(&self) -> Vec<ReplicaSnapshot> {
        self.replicas
            .iter()
            .map(|r| {
                let s = r.stats();
                ReplicaSnapshot {
                    load: EngineLoad {
                        waiting: s.waiting,
                        running: s.running,
                        swapped: s.swapped,
                        free_blocks: s.free_blocks,
                        total_blocks: s.total_blocks,
                        outstanding_tokens: s.outstanding_tokens,
                        norm_lat_p50: s.norm_lat_p50,
                    },
                    coverage: r.coverage(),
                }
            })
            .collect()
    }
}

/// Handle to a running frontend server.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts a single-replica server on `addr` (use port 0 for an
    /// ephemeral port) over the given engine.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot bind.
    pub fn spawn<E>(addr: &str, engine: LlmEngine<E>) -> std::io::Result<Self>
    where
        E: ModelExecutor + Send + 'static,
    {
        Self::spawn_cluster(
            addr,
            vec![engine],
            RouterConfig::new(RoutePolicy::RoundRobin),
        )
    }

    /// Starts a server routing across one engine replica per element of
    /// `engines`. All replicas must share a block size (prompt chunk hashes
    /// are computed once).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot bind or `engines` is
    /// empty.
    pub fn spawn_cluster<E>(
        addr: &str,
        engines: Vec<LlmEngine<E>>,
        cfg: RouterConfig,
    ) -> std::io::Result<Self>
    where
        E: ModelExecutor + Send + 'static,
    {
        if engines.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "server needs at least one engine replica",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let block_size = engines[0].cache_config().block_size;
        let replicas: Vec<Replica> = engines
            .into_iter()
            .enumerate()
            .map(|(i, e)| Replica::spawn(i, e))
            .collect();
        let cluster_telemetry = Arc::new(Telemetry::new());
        let mut router = Router::new(cfg, replicas.len());
        router.attach_telemetry(&cluster_telemetry);
        let shared = Arc::new(Shared {
            replicas,
            router: Mutex::new(router),
            cluster_telemetry,
            block_size,
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Self {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The latest serving stats, aggregated across replicas (identical to
    /// the single replica's stats when there is only one).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        aggregate_stats(&self.replica_stats())
    }

    /// The latest per-replica stats snapshots, in replica order.
    #[must_use]
    pub fn replica_stats(&self) -> Vec<EngineStats> {
        self.shared.replicas.iter().map(Replica::stats).collect()
    }

    /// The first replica engine's telemetry bundle (metrics registry + event
    /// log), shared with its engine thread.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        self.shared.replicas[0].telemetry()
    }

    /// Stops the server, drains all accepted requests, and joins its
    /// threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Handlers first: one may still be waiting on an in-flight request,
        // which the (still running) engine loops will deliver.
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Then drain the engines; queued work finishes before the join.
        for r in &self.shared.replicas {
            r.begin_shutdown();
        }
        for r in &self.shared.replicas {
            r.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &shared);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Optional `key=value` fields of a `GENERATE` line.
#[derive(Debug, Clone, Copy, Default)]
struct GenerateOpts {
    temperature: Option<f32>,
    top_p: Option<f32>,
    seed: Option<u64>,
}

fn parse_request(line: &str, request_id: &str) -> Result<(Vec<u32>, SamplingParams), String> {
    let parts: Vec<&str> = line.split('\t').collect();
    if parts.first() != Some(&"GENERATE") {
        return Err(format!("unknown verb {:?}", parts.first().unwrap_or(&"")));
    }
    let max_tokens: usize = parts
        .get(1)
        .ok_or("missing max_tokens")?
        .parse()
        .map_err(|_| "bad max_tokens")?;
    let n: usize = parts
        .get(2)
        .ok_or("missing n")?
        .parse()
        .map_err(|_| "bad n")?;
    let mode = *parts.get(3).ok_or("missing mode")?;

    // Optional key=value fields sit between the mode and the prompt; the
    // first field that is not one of them starts the prompt (which may
    // itself contain tabs).
    let mut opts = GenerateOpts::default();
    let mut i = 4;
    while i < parts.len() {
        if let Some(v) = parts[i].strip_prefix("temperature=") {
            opts.temperature = Some(v.parse().map_err(|_| format!("bad temperature {v:?}"))?);
        } else if let Some(v) = parts[i].strip_prefix("top_p=") {
            opts.top_p = Some(v.parse().map_err(|_| format!("bad top_p {v:?}"))?);
        } else if let Some(v) = parts[i].strip_prefix("seed=") {
            opts.seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
        } else {
            break;
        }
        i += 1;
    }
    if i >= parts.len() {
        return Err("missing prompt".to_string());
    }
    let text = parts[i..].join("\t");
    if text.is_empty() {
        return Err("empty prompt".to_string());
    }

    let mut params = match mode {
        "greedy" => {
            if n != 1 {
                return Err("greedy requires n=1".to_string());
            }
            SamplingParams::greedy(max_tokens)
        }
        "sample" => SamplingParams::parallel(n, max_tokens),
        "beam" => SamplingParams::beam(n, max_tokens),
        other => return Err(format!("unknown mode {other:?}")),
    };
    if let DecodingMode::Random {
        temperature, top_p, ..
    } = &mut params.mode
    {
        if let Some(t) = opts.temperature {
            *temperature = t;
        }
        if let Some(p) = opts.top_p {
            *top_p = p;
        }
    } else if opts.temperature.is_some() || opts.top_p.is_some() {
        return Err(format!(
            "temperature/top_p require mode=sample, got {mode:?}"
        ));
    }
    let params = params
        .with_eos(vllm_model::EOS)
        .with_seed(opts.seed.unwrap_or_else(|| fnv(request_id.as_bytes())));
    let prompt = ByteTokenizer.encode(&text);
    params.validate().map_err(|e| e.to_string())?;
    Ok((prompt, params))
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `key=value` body shared by `STATS` and `RSTATS` lines.
fn stats_body(s: &EngineStats) -> String {
    format!(
        "waiting={}\trunning={}\tswapped={}\toutstanding_tokens={}\tfree_blocks={}\ttotal_blocks={}\tfinished={}\tpreemptions={}\tsteps={}\ttokens_scheduled={}\tblocks_copied={}\tblocks_swapped={}\tschedule_time={:.6}\tprepare_time={:.6}\texecute_time={:.6}\tpostprocess_time={:.6}\tnorm_lat_mean={:.6}\tnorm_lat_p50={:.6}\tnorm_lat_p90={:.6}\tnorm_lat_p99={:.6}\tttft_mean={:.6}\tttft_p50={:.6}\tttft_p99={:.6}",
        s.waiting, s.running, s.swapped, s.outstanding_tokens, s.free_blocks, s.total_blocks,
        s.finished, s.preemptions, s.steps, s.tokens_scheduled, s.blocks_copied, s.blocks_swapped,
        s.schedule_time, s.prepare_time, s.execute_time, s.postprocess_time,
        s.norm_lat_mean, s.norm_lat_p50, s.norm_lat_p90, s.norm_lat_p99,
        s.ttft_mean, s.ttft_p50, s.ttft_p99
    )
}

/// The metrics snapshot a `METRICS` query serves: the engine's own registry
/// for a single replica (unlabeled, as before clustering), or the labeled
/// per-replica merge plus the router's counters for a cluster.
fn metrics_snapshot(shared: &Shared) -> vllm_core::telemetry::MetricsSnapshot {
    if shared.replicas.len() == 1 {
        return shared.replicas[0].telemetry().registry().snapshot();
    }
    let parts: Vec<(String, vllm_core::telemetry::MetricsSnapshot)> = shared
        .replicas
        .iter()
        .map(|r| (r.id().to_string(), r.telemetry().registry().snapshot()))
        .collect();
    let mut merged = merge_labeled(&parts);
    merged
        .metrics
        .extend(shared.cluster_telemetry.registry().snapshot().metrics);
    merged.metrics.sort_by(|a, b| a.name.cmp(&b.name));
    merged
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    // A read timeout lets the handler notice server shutdown even while a
    // client keeps its connection open but idle.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let tokenizer = ByteTokenizer;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // Client closed the connection.
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let line = line.trim_end().to_string();
        if line.is_empty() {
            continue;
        }
        match line.split('\t').next().unwrap_or_default() {
            "STATS" => {
                if line != "STATS" {
                    writeln!(writer, "ERR\tSTATS takes no arguments")?;
                    continue;
                }
                let stats = shared
                    .replicas
                    .iter()
                    .map(Replica::stats)
                    .collect::<Vec<_>>();
                writeln!(writer, "STATS\t{}", stats_body(&aggregate_stats(&stats)))?;
                if shared.replicas.len() > 1 {
                    for (i, s) in stats.iter().enumerate() {
                        writeln!(writer, "RSTATS\t{i}\t{}", stats_body(s))?;
                    }
                    writeln!(writer, "END")?;
                }
            }
            "METRICS" => {
                if line == "METRICS" {
                    let snapshot = metrics_snapshot(shared);
                    writer.write_all(snapshot.to_prometheus_text().as_bytes())?;
                    writeln!(writer, "END")?;
                } else if line == "METRICS\tjson" {
                    let snapshot = metrics_snapshot(shared);
                    writeln!(writer, "{}", snapshot.to_json())?;
                } else {
                    writeln!(
                        writer,
                        "ERR\tunknown METRICS format (use METRICS or METRICS\\tjson)"
                    )?;
                }
            }
            "EVENTS" => {
                let mut parts = line.split('\t');
                parts.next(); // verb
                match (parts.next(), parts.next()) {
                    (Some(id), None) if !id.is_empty() => {
                        for r in &shared.replicas {
                            for ev in r.telemetry().events().events_for(id) {
                                writeln!(
                                    writer,
                                    "EVENT\t{:.6}\t{}\t{}",
                                    ev.time,
                                    ev.kind.label(),
                                    ev.kind.detail()
                                )?;
                            }
                        }
                        writeln!(writer, "END")?;
                    }
                    _ => writeln!(writer, "ERR\tEVENTS takes exactly one request id")?,
                }
            }
            "SHUTDOWN" => {
                if line != "SHUTDOWN" {
                    writeln!(writer, "ERR\tSHUTDOWN takes no arguments")?;
                    continue;
                }
                writeln!(writer, "OK\tshutdown")?;
                shared.shutdown.store(true, Ordering::SeqCst);
            }
            "GENERATE" => {
                let request_id = format!("req-{}", shared.next_id.fetch_add(1, Ordering::SeqCst));
                match parse_request(&line, &request_id) {
                    Err(msg) => writeln!(writer, "ERR\t{msg}")?,
                    Ok((prompt, params)) => {
                        let replica = {
                            let hashes = chunk_hashes(&prompt, shared.block_size);
                            let snaps = shared.snapshots();
                            shared.router.lock().route(&hashes, &snaps).replica
                        };
                        let (reply_tx, reply_rx) = mpsc::channel();
                        let sent = shared.replicas[replica].submit(EngineRequest {
                            request_id: request_id.clone(),
                            prompt,
                            params,
                            reply: reply_tx,
                        });
                        if sent.is_err() {
                            writeln!(writer, "ERR\tserver shutting down")?;
                            break;
                        }
                        match reply_rx.recv() {
                            Ok(out) if out.request_id.starts_with("error:") => {
                                writeln!(writer, "ERR\t{}", out.request_id)?;
                            }
                            Ok(out) => {
                                writeln!(writer, "OK\t{request_id}\t{}", out.outputs.len())?;
                                for (i, c) in out.outputs.iter().enumerate() {
                                    let text =
                                        tokenizer.decode(&c.tokens).replace(['\t', '\n'], " ");
                                    writeln!(
                                        writer,
                                        "OUT\t{i}\t{:.4}\t{text}",
                                        c.cumulative_logprob
                                    )?;
                                }
                                writeln!(writer, "END")?;
                            }
                            Err(_) => {
                                writeln!(writer, "ERR\tengine dropped request")?;
                                break;
                            }
                        }
                    }
                }
            }
            verb => writeln!(writer, "ERR\tunknown verb {verb:?}")?,
        }
    }
    Ok(())
}

/// A small blocking client for the frontend protocol (used by tests and the
/// `server` example).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One generation result returned by [`Client::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutput {
    /// Index of the output sequence.
    pub index: usize,
    /// Cumulative log-probability.
    pub cumulative_logprob: f64,
    /// Generated text.
    pub text: String,
}

/// Optional `GENERATE` fields for [`Client::generate_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GenerateOptions {
    /// Sampling temperature (mode `sample` only).
    pub temperature: Option<f32>,
    /// Nucleus truncation in (0, 1] (mode `sample` only).
    pub top_p: Option<f32>,
    /// Sampling RNG seed (defaults to a hash of the request id).
    pub seed: Option<u64>,
}

impl Client {
    /// Connects to a frontend server.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the connection fails.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one generation request and waits for its outputs.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure, or `InvalidData` wrapping
    /// a server-side `ERR` message.
    pub fn generate(
        &mut self,
        prompt: &str,
        max_tokens: usize,
        n: usize,
        mode: &str,
    ) -> std::io::Result<Vec<ClientOutput>> {
        self.generate_with(prompt, max_tokens, n, mode, GenerateOptions::default())
    }

    /// Sends one generation request with optional sampling fields and waits
    /// for its outputs.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure, or `InvalidData` wrapping
    /// a server-side `ERR` message.
    pub fn generate_with(
        &mut self,
        prompt: &str,
        max_tokens: usize,
        n: usize,
        mode: &str,
        opts: GenerateOptions,
    ) -> std::io::Result<Vec<ClientOutput>> {
        let mut req = format!("GENERATE\t{max_tokens}\t{n}\t{mode}");
        if let Some(t) = opts.temperature {
            req.push_str(&format!("\ttemperature={t}"));
        }
        if let Some(p) = opts.top_p {
            req.push_str(&format!("\ttop_p={p}"));
        }
        if let Some(s) = opts.seed {
            req.push_str(&format!("\tseed={s}"));
        }
        writeln!(self.writer, "{req}\t{prompt}")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let line = line.trim_end();
        if let Some(msg) = line.strip_prefix("ERR\t") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                msg.to_string(),
            ));
        }
        let mut outputs = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                break;
            }
            let line = line.trim_end();
            if line == "END" {
                break;
            }
            if let Some(rest) = line.strip_prefix("OUT\t") {
                let mut f = rest.splitn(3, '\t');
                let index = f.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                let cumulative_logprob = f.next().and_then(|s| s.parse().ok()).unwrap_or(0.0);
                let text = f.next().unwrap_or_default().to_string();
                outputs.push(ClientOutput {
                    index,
                    cumulative_logprob,
                    text,
                });
            }
        }
        Ok(outputs)
    }

    /// Asks the server to shut down (stop accepting work and drain), and
    /// returns its acknowledgement line.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure.
    pub fn shutdown_server(&mut self) -> std::io::Result<String> {
        writeln!(self.writer, "SHUTDOWN")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line.trim_end().to_string())
    }
}
