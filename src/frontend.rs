//! A minimal serving frontend (§5's FastAPI analog): a TCP server speaking
//! wire protocol v2 (see [`crate::protocol`]) in front of one or more
//! [`LlmEngine`] replicas, each running on its own thread behind a
//! cache-aware, role-aware router (`vllm_cluster`).
//!
//! Every inbound line parses into a typed [`Command`]; every reply line is
//! the [`Response::wire`] rendering of a typed [`Response`]. The verbs:
//!
//! ```text
//! -> HELLO\tversion=<n>                        version negotiation
//! <- HELLO\tversion=2                          (or ERR\tprotocol on skew)
//!
//! -> GENERATE\tmax_tokens=<n>\t[n=<n>\t]mode=<mode>[\t<k>=<v>...]\t<prompt>
//! <- OK\t<request_id>\t<num_outputs>
//! <- OUT\t<index>\t<cumulative_logprob>\t<text>      (repeated)
//! <- END
//!    Optional fields: temperature, top_p, seed, deadline, priority, trace —
//!    each validated by the typed `GenerationRequest` builder; unknown keys
//!    are rejected, never swallowed into the prompt. The old positional
//!    form (`GENERATE\t<max_tokens>\t<n>\t<mode>\t...`) is REMOVED in v2
//!    and answered with `ERR\tprotocol\tfalse\t...` naming the replacement.
//!
//! -> STATS                                     aggregated + per-replica
//! <- STATS\t<key=value...>                     (RSTATS\t<i>\t... per
//!                                              replica, then END, when the
//!                                              fleet has more than one)
//!
//! -> METRICS | METRICS\tjson                   telemetry registry
//! -> EVENTS\t<request_id>                      lifecycle replay
//! -> TRACE\t<trace_id>                         span dump (adds a "cluster"
//!                                              track carrying handoff spans)
//! -> HANDOFF\t<payload-hex>                    install serialized KV prefix
//! <- HANDOFF\treplica=<i>\tprefix=<id>\tblocks=<n>
//! -> TIER                                      shared prefix-tier snapshot
//! <- TIER\tentries=..\tblocks=..\tcapacity=..\thits=..\t...
//! -> SHUTDOWN
//! <- OK\tshutdown
//! ```
//!
//! Failed requests get `ERR\t<kind>\t<retryable>\t<message>` with `<kind>`
//! the [`vllm_core::ErrorKind`] wire name (`resource` | `request` |
//! `internal` | `unavailable` | `protocol`); unknown verbs, version
//! mismatches, and the retired positional form map to `protocol` (never
//! retryable). The connection stays usable after every error.
//!
//! # Disaggregated serving
//!
//! [`Server::spawn_cluster`] takes a typed [`ClusterConfig`]: per-replica
//! roles (prefill / decode / unified), the admission bound, and the shared
//! prefix-tier capacity. In a disaggregated fleet, a greedy single-sequence
//! `GENERATE` runs in two phases:
//!
//! 1. **Prefill**: the router places the request on a prefill replica
//!    (prefix-affinity over the prefill pool). The longest block-aligned
//!    strict prefix of the prompt is made resident first — installed from
//!    the cluster-shared [`PrefixTier`] when published there (skipping the
//!    prompt recompute fleet-wide), registered otherwise — and a 1-token
//!    stub computes the prompt phase plus the first sampled token (TTFT).
//! 2. **Handoff + decode**: the covered prefix is exported as serialized
//!    KV blocks, published to the tier, round-tripped through the
//!    [`HandoffPayload`] wire codec, and installed into a decode replica
//!    (journaled as `CacheOps` installs); the request resumes there with
//!    the stub token appended, and the streams are stitched. `handoff`/
//!    `handoff.{export,transfer,install}` spans land on the cluster track;
//!    `vllm_cluster_handoff*_total` counters track volume and retries.
//!
//! Non-greedy, multi-sequence, and single-token requests run entirely on
//! the prefill pool. If every decode replica is dead, `route_decode` spills
//! the token loop back onto the surviving replicas — degraded beats
//! dropped. Retryable failures in either phase restart the whole flow on a
//! fresh route (the stub re-runs; nothing was delivered, so the client
//! still sees exactly-once).
//!
//! `SHUTDOWN` stops accepting connections and drains: every accepted
//! request finishes before the engine threads exit. Dropping the
//! [`Server`] handle has the same semantics. The `GENERATE` path retries
//! retryable failures up to a small bound with capped exponential backoff,
//! re-routing each attempt; engine threads batch concurrent requests
//! through the normal scheduler.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use vllm_cluster::{
    aggregate_stats, merge_labeled, EngineRequest, PrefixOp, PrefixReply, PrefixTier, Replica,
    ReplicaSnapshot, Router,
};
use vllm_core::telemetry::{
    spans_to_json, trace_seed, Counter, EventQuery, Span, Telemetry, TraceContext,
};
use vllm_core::{
    chunk_hashes, ElasticConfig, ElasticController, EngineLoad, GenerationMode, GenerationRequest,
    HandoffPayload, KvBlockBytes, LlmEngine, ModelExecutor, PrefixId, RequestOutput, VllmError,
};
use vllm_model::ByteTokenizer;

use crate::protocol::{
    negotiate, Command, GenerateSpec, MetricsFormat, Response, TierSnapshot, PROTOCOL_VERSION,
};

pub use vllm_cluster::{ClusterConfig, EngineStats, ReplicaRole, RoutePolicy};

/// The frontend's handoff instruments, registered on the cluster registry.
struct HandoffMetrics {
    /// Completed prefill→decode handoffs.
    handoffs: Counter,
    /// KV blocks shipped across handoffs.
    blocks: Counter,
    /// Handoff attempts that failed and were retried on a fresh route.
    retries: Counter,
}

/// State shared between the accept loop, connection handlers, and the
/// server handle.
struct Shared {
    replicas: Vec<Replica>,
    router: Mutex<Router>,
    /// Registry holding the router's `vllm_cluster_*` counters, the tier's
    /// instruments, and the handoff span track.
    cluster_telemetry: Arc<Telemetry>,
    /// Per-replica serving roles (index order).
    roles: Vec<ReplicaRole>,
    /// Cluster-shared CPU prefix tier (`None` when disabled).
    tier: Option<Mutex<PrefixTier>>,
    /// Capacity the tier was built with (for the `TIER` snapshot).
    tier_capacity: usize,
    handoff: HandoffMetrics,
    /// Whether any replica is role-specialized (enables the handoff path).
    disaggregated: bool,
    /// Wall-clock epoch for frontend-side (handoff) span timestamps.
    started: Instant,
    /// KV block size (uniform across replicas; prompt chunk hashing).
    block_size: usize,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn snapshots(&self) -> Vec<ReplicaSnapshot> {
        self.replicas
            .iter()
            .map(|r| {
                let s = r.stats();
                ReplicaSnapshot {
                    load: EngineLoad {
                        waiting: s.waiting,
                        running: s.running,
                        swapped: s.swapped,
                        free_blocks: s.free_blocks,
                        total_blocks: s.total_blocks,
                        outstanding_tokens: s.outstanding_tokens,
                        norm_lat_p50: s.norm_lat_p50,
                    },
                    coverage: r.coverage(),
                }
            })
            .collect()
    }
}

/// Handle to a running frontend server.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts a single-replica server on `addr` (use port 0 for an
    /// ephemeral port) over the given engine.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot bind.
    pub fn spawn<E>(addr: &str, engine: LlmEngine<E>) -> std::io::Result<Self>
    where
        E: ModelExecutor + Send + 'static,
    {
        Self::spawn_cluster(
            addr,
            vec![engine],
            ClusterConfig::new(1).with_policy(RoutePolicy::RoundRobin),
        )
    }

    /// Starts a server routing across one engine replica per element of
    /// `engines`, wired by the typed fleet builder: routing policy,
    /// per-replica roles (a disaggregated fleet enables the KV-handoff
    /// path), admission bound, and shared prefix-tier capacity. Layer
    /// `VLLM_REPLICA_ROLES` / `VLLM_PREFIX_TIER_BLOCKS` on with
    /// [`ClusterConfig::with_env`]. All replicas must share a block size
    /// (prompt chunk hashes are computed once).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot bind, `engines` is
    /// empty, or the config names a different replica count.
    pub fn spawn_cluster<E>(
        addr: &str,
        engines: Vec<LlmEngine<E>>,
        cfg: ClusterConfig,
    ) -> std::io::Result<Self>
    where
        E: ModelExecutor + Send + 'static,
    {
        if engines.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "server needs at least one engine replica",
            ));
        }
        if cfg.num_replicas() != engines.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "cluster config names {} replicas for {} engines",
                    cfg.num_replicas(),
                    engines.len()
                ),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let block_size = engines[0].cache_config().block_size;
        let max_inflight = cfg.max_inflight;
        let replicas: Vec<Replica> = engines
            .into_iter()
            .enumerate()
            .map(|(i, mut e)| {
                // Opt-in elastic pool control: any VLLM_ELASTIC_* variable
                // attaches the hysteresis controller to every replica.
                if let Ok(Some(cfg)) =
                    ElasticConfig::enabled_from_env(e.cache_config().num_gpu_blocks)
                {
                    e.set_elastic(Some(ElasticController::new(cfg)));
                }
                Replica::spawn_with_capacity(i, e, max_inflight)
            })
            .collect();
        let cluster_telemetry = Arc::new(Telemetry::new());
        let mut router = Router::new(cfg.router, replicas.len());
        router.attach_telemetry(&cluster_telemetry);
        router.set_roles(cfg.roles.clone());
        let tier = (cfg.prefix_tier_blocks > 0).then(|| {
            let mut t = PrefixTier::new(cfg.prefix_tier_blocks, block_size);
            t.attach_telemetry(&cluster_telemetry);
            Mutex::new(t)
        });
        let r = cluster_telemetry.registry();
        let handoff = HandoffMetrics {
            handoffs: r.counter(
                "vllm_cluster_handoffs_total",
                "Prefill→decode KV handoffs completed by the frontend.",
            ),
            blocks: r.counter(
                "vllm_cluster_handoff_blocks_total",
                "KV blocks shipped across frontend handoffs.",
            ),
            retries: r.counter(
                "vllm_cluster_handoff_retries_total",
                "Handoff attempts retried on a fresh route.",
            ),
        };
        let shared = Arc::new(Shared {
            replicas,
            router: Mutex::new(router),
            cluster_telemetry,
            roles: cfg.roles.clone(),
            tier,
            tier_capacity: cfg.prefix_tier_blocks,
            handoff,
            disaggregated: cfg.is_disaggregated(),
            started: Instant::now(),
            block_size,
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Self {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The per-replica serving roles, in replica order.
    #[must_use]
    pub fn roles(&self) -> &[ReplicaRole] {
        &self.shared.roles
    }

    /// The latest serving stats, aggregated across replicas (identical to
    /// the single replica's stats when there is only one).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        aggregate_stats(&self.replica_stats())
    }

    /// The latest per-replica stats snapshots, in replica order.
    #[must_use]
    pub fn replica_stats(&self) -> Vec<EngineStats> {
        self.shared.replicas.iter().map(Replica::stats).collect()
    }

    /// The first replica engine's telemetry bundle (metrics registry + event
    /// log), shared with its engine thread.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        self.shared.replicas[0].telemetry()
    }

    /// Fault injection: kills replica `i` abruptly (no drain) and tells the
    /// router. In-flight requests on the replica are answered with a
    /// retryable error, which the `GENERATE` retry path re-routes to the
    /// surviving replicas.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn kill_replica(&self, i: usize) {
        self.shared.replicas[i].inject_kill();
        self.shared.router.lock().mark_dead(i);
    }

    /// Stops the server, drains all accepted requests, and joins its
    /// threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Handlers first: one may still be waiting on an in-flight request,
        // which the (still running) engine loops will deliver.
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Then drain the engines; queued work finishes before the join.
        for r in &self.shared.replicas {
            r.begin_shutdown();
        }
        for r in &self.shared.replicas {
            r.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &shared);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Converts a parsed [`GenerateSpec`] into prompt tokens plus the validated
/// typed request: seed defaults to a hash of the request id, the model's EOS
/// token is attached, and sampling parameters are checked up front so
/// protocol errors surface before routing.
fn build_request(
    spec: &GenerateSpec,
    request_id: &str,
) -> Result<(Vec<u32>, GenerationRequest), VllmError> {
    let mut req = spec.build()?;
    if req.seed.is_none() {
        req.seed = Some(fnv(request_id.as_bytes()));
    }
    req = req.with_eos(vllm_model::EOS);
    // Validate now so protocol errors surface before routing; the replica
    // converts again on admission.
    req.sampling_params()?;
    Ok((ByteTokenizer.encode(&spec.prompt), req))
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The metrics snapshot a `METRICS` query serves: the engine's own registry
/// for a single replica (unlabeled, as before clustering), or the labeled
/// per-replica merge plus the router's counters for a cluster.
fn metrics_snapshot(shared: &Shared) -> vllm_core::telemetry::MetricsSnapshot {
    if shared.replicas.len() == 1 {
        return shared.replicas[0].telemetry().registry().snapshot();
    }
    let parts: Vec<(String, vllm_core::telemetry::MetricsSnapshot)> = shared
        .replicas
        .iter()
        .map(|r| (r.id().to_string(), r.telemetry().registry().snapshot()))
        .collect();
    let mut merged = merge_labeled(&parts);
    merged
        .metrics
        .extend(shared.cluster_telemetry.registry().snapshot().metrics);
    merged.metrics.sort_by(|a, b| a.name.cmp(&b.name));
    merged
}

/// Placement attempts per `GENERATE` request before the typed error is
/// surfaced to the client.
const MAX_SUBMIT_ATTEMPTS: u32 = 4;

/// Submits one request to `replica` and blocks for the reply. A replica
/// that proves dead (its loop exited, or its reply channel dropped) is
/// reported to the router so subsequent routes avoid it.
fn await_reply(
    shared: &Shared,
    replica: usize,
    engine_id: String,
    prompt: Vec<u32>,
    request: GenerationRequest,
) -> Result<RequestOutput, VllmError> {
    let (reply_tx, reply_rx) = mpsc::channel();
    let sent = shared.replicas[replica].submit(EngineRequest {
        request_id: engine_id,
        prompt,
        request,
        reply: reply_tx,
    });
    if sent.is_err() {
        // The loop is gone: killed, or the server is draining.
        shared.router.lock().mark_dead(replica);
        return Err(VllmError::Unavailable("replica not accepting work".into()));
    }
    match reply_rx.recv() {
        Ok(Ok(out)) => Ok(out),
        Ok(Err(e)) => {
            if e.is_retryable() && shared.replicas[replica].is_killed() {
                shared.router.lock().mark_dead(replica);
            }
            Err(e)
        }
        Err(_) => {
            // Reply channel dropped without an answer: replica died.
            shared.router.lock().mark_dead(replica);
            Err(VllmError::Unavailable("replica dropped the request".into()))
        }
    }
}

/// Capped exponential backoff before retry `attempt + 1`, seeded by the
/// error's own hint.
fn backoff(err: &VllmError, attempt: u32) {
    let base = err.retry_after().unwrap_or(0.01);
    let delay = (base * f64::from(1u32 << attempt)).min(0.2);
    std::thread::sleep(Duration::from_secs_f64(delay));
}

/// Routes and submits one request, retrying retryable failures on a fresh
/// route with capped exponential backoff; each retry increments
/// `vllm_cluster_retries_total`.
fn submit_with_retry(
    shared: &Shared,
    request_id: &str,
    prompt: Vec<u32>,
    request: &GenerationRequest,
) -> Result<RequestOutput, VllmError> {
    let hashes = chunk_hashes(&prompt, shared.block_size);
    // Root trace context: adopt the client's (`trace=` field) or mint one
    // from the request id. Each placement attempt gets a sibling child
    // context so retries show up side by side under one root in the tree.
    let root = request
        .trace
        .unwrap_or_else(|| TraceContext::mint(trace_seed(request_id), true));
    let mut last_err: Option<VllmError> = None;
    for attempt in 0..MAX_SUBMIT_ATTEMPTS {
        let replica = {
            let snaps = shared.snapshots();
            shared.router.lock().route(&hashes, &snaps).replica
        };
        // A fresh engine-side id per attempt keeps retries from colliding
        // with stale state on a previously tried replica.
        let engine_id = if attempt == 0 {
            request_id.to_string()
        } else {
            format!("{request_id}.{attempt}")
        };
        let mut attempt_request = request.clone();
        attempt_request.trace = Some(root.child(100 + u64::from(attempt) * 8 + 1));
        match await_reply(shared, replica, engine_id, prompt.clone(), attempt_request) {
            Ok(out) => return Ok(out),
            Err(e) if !e.is_retryable() => return Err(e),
            Err(e) => {
                shared.router.lock().record_retry();
                backoff(&e, attempt);
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| VllmError::Unavailable("retries exhausted".into())))
}

/// Whether a request takes the two-phase prefill→decode path: the fleet is
/// role-specialized and the request is a greedy single-sequence multi-token
/// generation (the shape whose first-token/decode split is well defined —
/// everything else runs entirely on the prefill pool).
fn wants_handoff(shared: &Shared, request: &GenerationRequest) -> bool {
    shared.disaggregated
        && request.mode == GenerationMode::Greedy
        && request.n == 1
        && request.max_tokens > 1
}

/// What the prefill replica holds pinned before its stub runs.
struct PrefillPrefix {
    id: PrefixId,
    /// The tier entry's data when the prefix came from the shared tier
    /// (`None` when it was registered fresh and must be exported after the
    /// stub computes it).
    tier: Option<(Vec<u32>, Vec<KvBlockBytes>)>,
}

/// Makes `want` (a block-aligned strict prefix of the prompt) resident on
/// `replica`: installed from the cluster-shared tier on a published hit
/// (skipping the recompute), registered fresh otherwise. Returns `None` on
/// failure — callers degrade to running the full prompt phase.
fn install_tier_prefix(shared: &Shared, replica: usize, want: &[u32]) -> Option<PrefillPrefix> {
    if let Some(tier) = &shared.tier {
        // Pin the entry only across the clone; the replica install works on
        // the copy, so eviction afterwards is safe.
        let hit = {
            let mut t = tier.lock();
            t.lookup(want).map(|key| {
                t.acquire(key);
                let e = t.get(key).expect("acquired tier entry");
                let data = (e.tokens.clone(), e.blocks.clone());
                t.release(key);
                data
            })
        };
        if let Some((tokens, blocks)) = hit {
            if let Ok(PrefixReply::Installed { id }) =
                shared.replicas[replica].prefix_op(PrefixOp::Install {
                    tokens: tokens.clone(),
                    blocks: blocks.clone(),
                })
            {
                return Some(PrefillPrefix {
                    id,
                    tier: Some((tokens, blocks)),
                });
            }
        }
    }
    match shared.replicas[replica].prefix_op(PrefixOp::Register {
        tokens: want.to_vec(),
    }) {
        Ok(PrefixReply::Registered { id }) => Some(PrefillPrefix { id, tier: None }),
        _ => None,
    }
}

/// Best-effort release of a pinned prefix — the target may have died, which
/// the enclosing retry loop handles separately.
fn release_prefix_quiet(shared: &Shared, replica: usize, id: PrefixId) {
    let _ = shared.replicas[replica].prefix_op(PrefixOp::Release { id });
}

/// Runs one request through the two-phase disaggregated flow, retrying the
/// whole flow on retryable failures. Each failed attempt increments
/// `vllm_cluster_handoff_retries_total` and re-routes from scratch; nothing
/// was delivered, so the client still sees exactly-once.
fn submit_disaggregated(
    shared: &Shared,
    request_id: &str,
    prompt: &[u32],
    request: &GenerationRequest,
) -> Result<RequestOutput, VllmError> {
    let hashes = chunk_hashes(prompt, shared.block_size);
    let root = request
        .trace
        .unwrap_or_else(|| TraceContext::mint(trace_seed(request_id), true));
    let mut last_err: Option<VllmError> = None;
    for attempt in 0..MAX_SUBMIT_ATTEMPTS {
        match handoff_attempt(shared, request_id, prompt, request, &hashes, root, attempt) {
            Ok(out) => return Ok(out),
            Err(e) if !e.is_retryable() => return Err(e),
            Err(e) => {
                shared.handoff.retries.inc();
                shared.router.lock().record_retry();
                backoff(&e, attempt);
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| VllmError::Unavailable("retries exhausted".into())))
}

/// One attempt of the disaggregated flow: prefill stub (prompt phase plus
/// the first sampled token — TTFT — on a prefill replica), KV export and
/// tier publication, wire-codec round trip, install on a decode replica,
/// decode continuation, stitch. Greedy continuation from `prompt + [t0]`
/// makes the stitched stream token-identical to a unified run.
fn handoff_attempt(
    shared: &Shared,
    request_id: &str,
    prompt: &[u32],
    request: &GenerationRequest,
    hashes: &[u64],
    root: TraceContext,
    attempt: u32,
) -> Result<RequestOutput, VllmError> {
    let bs = shared.block_size;
    // Longest block-aligned STRICT prefix of the prompt: the prefix pool
    // only matches prompts longer than the prefix, and `prompt + [t0]` on
    // the decode side is longer still, so one cut serves both phases.
    let keep = ((prompt.len() - 1) / bs) * bs;

    // Phase 1: prefill. Prefix-affinity routing over the prefill pool.
    let prefill = {
        let snaps = shared.snapshots();
        shared.router.lock().route(hashes, &snaps).replica
    };
    let prefix = if keep > 0 {
        install_tier_prefix(shared, prefill, &prompt[..keep])
    } else {
        None
    };
    let stub_id = if attempt == 0 {
        request_id.to_string()
    } else {
        format!("{request_id}.p{attempt}")
    };
    let mut stub_req = request.clone();
    stub_req.max_tokens = 1;
    stub_req.trace = Some(root.child(100 + u64::from(attempt) * 8 + 1));
    let stub_started = shared.started.elapsed().as_secs_f64();
    let stub = match await_reply(shared, prefill, stub_id, prompt.to_vec(), stub_req) {
        Ok(out) => out,
        Err(e) => {
            if let Some(p) = &prefix {
                release_prefix_quiet(shared, prefill, p.id);
            }
            return Err(e);
        }
    };
    let first = stub.outputs.first().and_then(|c| c.tokens.first()).copied();
    let stub_logprob = stub
        .outputs
        .first()
        .map(|c| c.cumulative_logprob)
        .unwrap_or_default();
    let done = match first {
        // No token sampled (deadline hit at admission): the stub result is
        // the whole answer. EOS first: a unified run stops there too.
        None => true,
        Some(t) => t == vllm_model::EOS,
    };
    if done {
        if let Some(p) = prefix {
            release_prefix_quiet(shared, prefill, p.id);
        }
        return Ok(stub);
    }
    let t0 = first.expect("first token present");

    // Collect the prefix KV for the decode install: already in hand on a
    // tier hit, exported (and published to the tier for the rest of the
    // fleet) otherwise. The prefill pin is dropped either way — the tier
    // and the payload own copies.
    let mut kv: Option<(Vec<u32>, Vec<KvBlockBytes>)> = None;
    if let Some(p) = prefix {
        if let Some(data) = p.tier {
            kv = Some(data);
        } else if let Ok(PrefixReply::Exported { tokens, blocks }) =
            shared.replicas[prefill].prefix_op(PrefixOp::Export { id: p.id })
        {
            if let Some(tier) = &shared.tier {
                tier.lock().publish(&tokens, blocks.clone());
            }
            kv = Some((tokens, blocks));
        }
        release_prefix_quiet(shared, prefill, p.id);
    }
    let export_done = shared.started.elapsed().as_secs_f64();

    // Phase 2: ship and decode. The transport is the wire codec — encode,
    // move, decode — so the payload semantics (checksum, validation) are
    // exactly what a remote decode replica would see.
    let payload = kv
        .map(|(tokens, blocks)| {
            let p = HandoffPayload {
                request_id: request_id.to_string(),
                tokens,
                first_token: Some(t0),
                seed: request.seed.unwrap_or_default(),
                block_size: bs,
                blocks,
            };
            HandoffPayload::decode_wire(&p.encode_wire())
        })
        .transpose()?;
    let decode = {
        let snaps = shared.snapshots();
        shared.router.lock().route_decode(&snaps)
    };
    let mut decode_prefix: Option<PrefixId> = None;
    let mut shipped = (0usize, 0usize); // (blocks, kv_bytes)
    if let Some(p) = &payload {
        match shared.replicas[decode].prefix_op(PrefixOp::Install {
            tokens: p.tokens.clone(),
            blocks: p.blocks.clone(),
        }) {
            Ok(PrefixReply::Installed { id }) => {
                decode_prefix = Some(id);
                shipped = (p.blocks.len(), p.kv_bytes());
            }
            // A dying decode target mid-transfer restarts the whole flow
            // (exactly-once: nothing reached the client yet). Non-retryable
            // install failures degrade — the decode replica recomputes.
            Err(e) if e.is_retryable() => return Err(e),
            _ => {}
        }
    }
    let install_done = shared.started.elapsed().as_secs_f64();

    let mut dprompt = prompt.to_vec();
    dprompt.push(t0);
    let mut dreq = request.clone();
    dreq.max_tokens = request.max_tokens - 1;
    dreq.trace = Some(root.child(100 + u64::from(attempt) * 8 + 2));
    let result = await_reply(
        shared,
        decode,
        format!("{request_id}.d{attempt}"),
        dprompt,
        dreq,
    );
    if let Some(id) = decode_prefix {
        release_prefix_quiet(shared, decode, id);
    }
    let mut out = result?;

    // Stitch the stub's token back onto the front of the stream.
    match out.outputs.first_mut() {
        Some(c) => {
            c.tokens.insert(0, t0);
            c.cumulative_logprob += stub_logprob;
        }
        None => return Ok(stub), // decode produced nothing; TTFT stands
    }
    record_handoff_spans(
        shared,
        &root.child(200 + u64::from(attempt)),
        decode,
        shipped,
        (stub_started, export_done, install_done),
    );
    shared.handoff.handoffs.inc();
    shared.handoff.blocks.inc_by(shipped.0 as u64);
    Ok(out)
}

/// Records the handoff span tree on the cluster telemetry track (the same
/// scheme the fault harness uses): a `handoff` parent under the request
/// root with `handoff.{export,transfer,install}` children.
fn record_handoff_spans(
    shared: &Shared,
    ctx: &TraceContext,
    dst: usize,
    (blocks, kv_bytes): (usize, usize),
    (start, transfer, end): (f64, f64, f64),
) {
    let spans = shared.cluster_telemetry.spans();
    spans.record(Span {
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_span_id: ctx.parent_span_id,
        name: "handoff".to_string(),
        start,
        end,
        attrs: vec![
            ("dst".to_string(), dst.to_string()),
            ("kv_bytes".to_string(), kv_bytes.to_string()),
            ("blocks".to_string(), blocks.to_string()),
        ],
    });
    let child = |slot: u64, name: &str, s: f64, e: f64| Span {
        trace_id: ctx.trace_id,
        span_id: ctx.child(slot).span_id,
        parent_span_id: ctx.span_id,
        name: name.to_string(),
        start: s,
        end: e,
        attrs: Vec::new(),
    };
    spans.record(child(1, "handoff.export", start, transfer));
    spans.record(child(2, "handoff.transfer", transfer, transfer));
    spans.record(child(3, "handoff.install", transfer, end));
}

/// Installs an operator-shipped `HANDOFF` payload: the KV prefix lands in a
/// decode-capable replica's pool (left pinned — this is deliberate
/// pre-seeding, reclaimed on replica teardown) and is published to the
/// shared tier so prefix-affinity routing and future handoffs reuse it
/// fleet-wide.
fn install_handoff(shared: &Shared, payload: HandoffPayload) -> Result<Response, VllmError> {
    let replica = {
        let snaps = shared.snapshots();
        shared.router.lock().route_decode(&snaps)
    };
    let blocks = payload.blocks.len();
    let reply = shared.replicas[replica].prefix_op(PrefixOp::Install {
        tokens: payload.tokens.clone(),
        blocks: payload.blocks.clone(),
    })?;
    let PrefixReply::Installed { id } = reply else {
        return Err(VllmError::Protocol("unexpected prefix reply".into()));
    };
    if let Some(tier) = &shared.tier {
        tier.lock().publish(&payload.tokens, payload.blocks);
    }
    Ok(Response::Handoff {
        replica,
        prefix: id,
        blocks,
    })
}

/// The `TIER` snapshot: all zeros when the tier is disabled.
fn tier_snapshot(shared: &Shared) -> TierSnapshot {
    match &shared.tier {
        None => TierSnapshot::default(),
        Some(tier) => {
            let t = tier.lock();
            let s = t.stats();
            TierSnapshot {
                entries: t.len(),
                blocks: t.used_blocks(),
                capacity: shared.tier_capacity,
                hits: s.hits,
                misses: s.misses,
                insertions: s.insertions,
                evictions: s.evictions,
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    // A read timeout lets the handler notice server shutdown even while a
    // client keeps its connection open but idle.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let tokenizer = ByteTokenizer;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // Client closed the connection.
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let line = line.trim_end().to_string();
        if line.is_empty() {
            continue;
        }
        // Every inbound line becomes a typed Command or a typed error; the
        // string form never crosses this point.
        let command = match Command::parse(&line) {
            Ok(c) => c,
            Err(e) => {
                writeln!(writer, "{}", Response::from_error(&e).wire())?;
                continue;
            }
        };
        match command {
            Command::Hello { version } => {
                let reply = match negotiate(version) {
                    Ok(v) => Response::Hello { version: v },
                    Err(e) => Response::from_error(&e),
                };
                writeln!(writer, "{}", reply.wire())?;
            }
            Command::Stats => {
                let stats = shared
                    .replicas
                    .iter()
                    .map(Replica::stats)
                    .collect::<Vec<_>>();
                writeln!(
                    writer,
                    "{}",
                    Response::Stats(aggregate_stats(&stats)).wire()
                )?;
                if shared.replicas.len() > 1 {
                    for (replica, s) in stats.iter().enumerate() {
                        writeln!(writer, "{}", Response::RStats { replica, stats: *s }.wire())?;
                    }
                    writeln!(writer, "{}", Response::End.wire())?;
                }
            }
            Command::Metrics(MetricsFormat::Prometheus) => {
                let snapshot = metrics_snapshot(shared);
                writer.write_all(snapshot.to_prometheus_text().as_bytes())?;
                writeln!(writer, "{}", Response::End.wire())?;
            }
            Command::Metrics(MetricsFormat::Json) => {
                writeln!(writer, "{}", metrics_snapshot(shared).to_json())?;
            }
            Command::Events { request_id } => {
                // Distinguish "never seen" from "seen but evicted" across
                // the fleet: any replica with retained events wins;
                // otherwise any eviction marker wins.
                let mut wrote = false;
                let mut evicted = false;
                for r in &shared.replicas {
                    match r.telemetry().events().query(&request_id) {
                        EventQuery::Events(events) => {
                            for ev in events {
                                writeln!(
                                    writer,
                                    "{}",
                                    Response::Event {
                                        time: ev.time,
                                        kind: ev.kind.label().to_string(),
                                        detail: ev.kind.detail(),
                                    }
                                    .wire()
                                )?;
                            }
                            wrote = true;
                        }
                        EventQuery::Evicted => evicted = true,
                        EventQuery::Unknown => {}
                    }
                }
                if !wrote {
                    writeln!(writer, "{}", Response::NoEvents { evicted }.wire())?;
                }
                writeln!(writer, "{}", Response::End.wire())?;
            }
            Command::Trace { trace_id } => {
                let mut tracks: Vec<(String, Vec<Span>)> = shared
                    .replicas
                    .iter()
                    .map(|r| {
                        (
                            format!("replica{}", r.id()),
                            r.telemetry().spans().spans_for_trace(trace_id),
                        )
                    })
                    .collect();
                // Frontend-side handoff spans ride a synthetic track.
                tracks.push((
                    "cluster".to_string(),
                    shared.cluster_telemetry.spans().spans_for_trace(trace_id),
                ));
                tracks.retain(|(_, spans)| !spans.is_empty());
                writeln!(writer, "{}", spans_to_json(&tracks))?;
            }
            Command::Handoff(payload) => match install_handoff(shared, payload) {
                Ok(r) => writeln!(writer, "{}", r.wire())?,
                Err(e) => writeln!(writer, "{}", Response::from_error(&e).wire())?,
            },
            Command::Tier => {
                writeln!(writer, "{}", Response::Tier(tier_snapshot(shared)).wire())?;
            }
            Command::Shutdown => {
                writeln!(writer, "{}", Response::OkShutdown.wire())?;
                shared.shutdown.store(true, Ordering::SeqCst);
            }
            Command::Generate(spec) => {
                let request_id = format!("req-{}", shared.next_id.fetch_add(1, Ordering::SeqCst));
                let result = build_request(&spec, &request_id).and_then(|(prompt, request)| {
                    if wants_handoff(shared, &request) {
                        submit_disaggregated(shared, &request_id, &prompt, &request)
                    } else {
                        submit_with_retry(shared, &request_id, prompt, &request)
                    }
                });
                match result {
                    Ok(out) => {
                        writeln!(
                            writer,
                            "{}",
                            Response::Ok {
                                request_id,
                                num_outputs: out.outputs.len(),
                            }
                            .wire()
                        )?;
                        for (index, c) in out.outputs.iter().enumerate() {
                            let text = tokenizer.decode(&c.tokens).replace(['\t', '\n'], " ");
                            writeln!(
                                writer,
                                "{}",
                                Response::Out {
                                    index,
                                    cumulative_logprob: c.cumulative_logprob,
                                    text,
                                }
                                .wire()
                            )?;
                        }
                        writeln!(writer, "{}", Response::End.wire())?;
                    }
                    Err(e) => {
                        writeln!(writer, "{}", Response::from_error(&e).wire())?;
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// A small blocking client for the frontend protocol (used by tests and the
/// `server` example).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One generation result returned by [`Client::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutput {
    /// Index of the output sequence.
    pub index: usize,
    /// Cumulative log-probability.
    pub cumulative_logprob: f64,
    /// Generated text.
    pub text: String,
}

/// Optional `GENERATE` fields for [`Client::generate_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GenerateOptions {
    /// Sampling temperature (mode `sample` only).
    pub temperature: Option<f32>,
    /// Nucleus truncation in (0, 1] (mode `sample` only).
    pub top_p: Option<f32>,
    /// Sampling RNG seed (defaults to a hash of the request id).
    pub seed: Option<u64>,
    /// Relative deadline in engine seconds; the server cancels the request
    /// if it is still unfinished when the deadline passes.
    pub deadline: Option<f64>,
    /// Scheduling priority (higher admitted first; default 0).
    pub priority: Option<i32>,
}

impl Client {
    /// Connects to a frontend server.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the connection fails.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Performs `HELLO` version negotiation and returns the server's
    /// protocol version.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure, or `InvalidData` when
    /// the server rejects this client's [`PROTOCOL_VERSION`].
    pub fn hello(&mut self) -> std::io::Result<u32> {
        writeln!(self.writer, "HELLO\tversion={PROTOCOL_VERSION}")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let line = line.trim_end();
        match Response::parse(line) {
            Ok(Response::Hello { version }) => Ok(version),
            Ok(Response::Err { message, .. }) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                message,
            )),
            _ => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected HELLO reply {line:?}"),
            )),
        }
    }

    /// Sends one generation request and waits for its outputs.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure, or `InvalidData` wrapping
    /// a server-side `ERR` message.
    pub fn generate(
        &mut self,
        prompt: &str,
        max_tokens: usize,
        n: usize,
        mode: &str,
    ) -> std::io::Result<Vec<ClientOutput>> {
        self.generate_with(prompt, max_tokens, n, mode, GenerateOptions::default())
    }

    /// Sends one generation request with optional sampling fields and waits
    /// for its outputs.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure, or `InvalidData` wrapping
    /// a server-side `ERR` message.
    pub fn generate_with(
        &mut self,
        prompt: &str,
        max_tokens: usize,
        n: usize,
        mode: &str,
        opts: GenerateOptions,
    ) -> std::io::Result<Vec<ClientOutput>> {
        let mut req = format!("GENERATE\tmax_tokens={max_tokens}\tn={n}\tmode={mode}");
        if let Some(t) = opts.temperature {
            req.push_str(&format!("\ttemperature={t}"));
        }
        if let Some(p) = opts.top_p {
            req.push_str(&format!("\ttop_p={p}"));
        }
        if let Some(s) = opts.seed {
            req.push_str(&format!("\tseed={s}"));
        }
        if let Some(d) = opts.deadline {
            req.push_str(&format!("\tdeadline={d}"));
        }
        if let Some(p) = opts.priority {
            req.push_str(&format!("\tpriority={p}"));
        }
        writeln!(self.writer, "{req}\t{prompt}")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let line = line.trim_end();
        if let Some(msg) = line.strip_prefix("ERR\t") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                msg.to_string(),
            ));
        }
        let mut outputs = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                break;
            }
            let line = line.trim_end();
            if line == "END" {
                break;
            }
            if let Some(rest) = line.strip_prefix("OUT\t") {
                let mut f = rest.splitn(3, '\t');
                let index = f.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                let cumulative_logprob = f.next().and_then(|s| s.parse().ok()).unwrap_or(0.0);
                let text = f.next().unwrap_or_default().to_string();
                outputs.push(ClientOutput {
                    index,
                    cumulative_logprob,
                    text,
                });
            }
        }
        Ok(outputs)
    }

    /// Asks the server to shut down (stop accepting work and drain), and
    /// returns its acknowledgement line.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure.
    pub fn shutdown_server(&mut self) -> std::io::Result<String> {
        writeln!(self.writer, "SHUTDOWN")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line.trim_end().to_string())
    }
}
