//! A minimal serving frontend (§5's FastAPI analog): a TCP server with a
//! newline-delimited text protocol in front of an [`LlmEngine`] running on
//! its own thread.
//!
//! Protocol (UTF-8 lines, tab-separated fields):
//!
//! ```text
//! -> GENERATE\t<max_tokens>\t<n>\t<mode>\t<prompt text>
//!    where <mode> is one of: greedy | sample | beam
//! <- OK\t<request_id>\t<num_outputs>
//! <- OUT\t<index>\t<cumulative_logprob>\t<text>      (repeated)
//! <- END
//!
//! -> STATS
//! <- STATS\twaiting=<n>\trunning=<n>\tswapped=<n>\tfree_blocks=<n>\t
//!    total_blocks=<n>\tfinished=<n>\tpreemptions=<n>\tsteps=<n>\t
//!    tokens_scheduled=<n>\tblocks_copied=<n>\tblocks_swapped=<n>\t
//!    schedule_time=<s>\tprepare_time=<s>\texecute_time=<s>\t
//!    postprocess_time=<s>\tnorm_lat_mean=<s>\tnorm_lat_p50=<s>\t
//!    norm_lat_p90=<s>\tnorm_lat_p99=<s>\tttft_mean=<s>\tttft_p50=<s>\t
//!    ttft_p99=<s>
//!
//! -> METRICS
//! <- <Prometheus text exposition lines>      (repeated)
//! <- END
//!
//! -> METRICS\tjson
//! <- <one-line JSON metrics snapshot>
//!
//! -> EVENTS\t<request_id>
//! <- EVENT\t<time>\t<kind>\t<detail>         (repeated, oldest first)
//! <- END
//! ```
//!
//! `STATS` serves a snapshot the engine loop publishes on startup, after
//! admissions, after every iteration, and when the engine drains — so it is
//! never stale while the loop is idle. `METRICS` serves the shared telemetry
//! registry (counters/gauges/histograms; the `/metrics` analog), and
//! `EVENTS` replays a request's lifecycle from the bounded event log.
//!
//! Malformed requests get `ERR\t<message>`. Each connection handles one
//! request per line; the engine thread batches concurrent requests through
//! the normal scheduler, so simultaneous clients share iterations exactly
//! as in the serving evaluation.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use vllm_core::telemetry::Telemetry;
use vllm_core::{LlmEngine, ModelExecutor, RequestOutput, SamplingParams};
use vllm_model::ByteTokenizer;

/// A snapshot of serving state published by the engine loop after every
/// iteration (the `/metrics` analog of production servers).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Queued requests not yet admitted.
    pub waiting: usize,
    /// Requests currently running.
    pub running: usize,
    /// Requests swapped out to CPU memory.
    pub swapped: usize,
    /// Free KV blocks in the GPU pool.
    pub free_blocks: usize,
    /// Total KV blocks in the GPU pool.
    pub total_blocks: usize,
    /// Requests completed since startup.
    pub finished: u64,
    /// Preemptions since startup.
    pub preemptions: u64,
    /// Engine steps executed since startup.
    pub steps: u64,
    /// Tokens scheduled across all steps.
    pub tokens_scheduled: u64,
    /// Copy-on-write block copies across all steps.
    pub blocks_copied: u64,
    /// Blocks swapped (in + out) across all steps.
    pub blocks_swapped: u64,
    /// Cumulative host seconds in the schedule stage.
    pub schedule_time: f64,
    /// Cumulative host seconds in the prepare stage.
    pub prepare_time: f64,
    /// Cumulative host seconds in the execute stage.
    pub execute_time: f64,
    /// Cumulative host seconds in the postprocess stage.
    pub postprocess_time: f64,
    /// Mean normalized latency over finished requests (s/token, §6.1).
    pub norm_lat_mean: f64,
    /// Median normalized latency.
    pub norm_lat_p50: f64,
    /// 90th percentile normalized latency.
    pub norm_lat_p90: f64,
    /// 99th percentile normalized latency.
    pub norm_lat_p99: f64,
    /// Mean time to first token over finished requests.
    pub ttft_mean: f64,
    /// Median time to first token.
    pub ttft_p50: f64,
    /// 99th percentile time to first token.
    pub ttft_p99: f64,
}

/// A generation request routed to the engine thread.
struct FrontendRequest {
    request_id: String,
    prompt: Vec<u32>,
    params: SamplingParams,
    reply: Sender<RequestOutput>,
}

/// Handle to a running frontend server.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<Mutex<EngineStats>>,
    telemetry: Arc<Telemetry>,
    accept_thread: Option<JoinHandle<()>>,
    engine_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts the server on `addr` (use port 0 for an ephemeral port) over
    /// the given engine.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot bind.
    pub fn spawn<E>(addr: &str, engine: LlmEngine<E>) -> std::io::Result<Self>
    where
        E: ModelExecutor + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<FrontendRequest>();
        let stats = Arc::new(Mutex::new(EngineStats::default()));
        let telemetry = Arc::clone(engine.telemetry());

        let engine_thread = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || engine_loop(engine, &rx, &shutdown, &stats))
        };
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let telemetry = Arc::clone(&telemetry);
            std::thread::spawn(move || accept_loop(&listener, &tx, &shutdown, &stats, &telemetry))
        };
        Ok(Self {
            addr: local,
            shutdown,
            stats,
            telemetry,
            accept_thread: Some(accept_thread),
            engine_thread: Some(engine_thread),
        })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The latest engine stats snapshot.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock()
    }

    /// The engine's telemetry bundle (metrics registry + event log), shared
    /// with the engine thread.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Stops the server and joins its threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.engine_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Builds a serving snapshot from the engine's current state.
fn snapshot_stats<E: ModelExecutor>(engine: &LlmEngine<E>, finished_total: u64) -> EngineStats {
    let scheduler = engine.scheduler();
    let bm = scheduler.block_manager();
    let trace = engine.trace_stats();
    let stage_totals = trace.stage_totals();
    let latency = engine.latency();
    EngineStats {
        waiting: scheduler.num_waiting(),
        running: scheduler.num_running(),
        swapped: scheduler.num_swapped(),
        free_blocks: bm.num_free_gpu_blocks(),
        total_blocks: bm.num_total_gpu_blocks(),
        finished: finished_total,
        preemptions: scheduler.stats().num_preemptions,
        steps: trace.num_steps(),
        tokens_scheduled: trace.tokens_scheduled(),
        blocks_copied: trace.blocks_copied(),
        blocks_swapped: trace.blocks_swapped_in() + trace.blocks_swapped_out(),
        schedule_time: stage_totals.schedule,
        prepare_time: stage_totals.prepare,
        execute_time: stage_totals.execute,
        postprocess_time: stage_totals.postprocess,
        norm_lat_mean: latency.mean_normalized_latency().unwrap_or(0.0),
        norm_lat_p50: latency.percentile_normalized_latency(50.0).unwrap_or(0.0),
        norm_lat_p90: latency.percentile_normalized_latency(90.0).unwrap_or(0.0),
        norm_lat_p99: latency.percentile_normalized_latency(99.0).unwrap_or(0.0),
        ttft_mean: latency.mean_ttft().unwrap_or(0.0),
        ttft_p50: latency.percentile_ttft(50.0).unwrap_or(0.0),
        ttft_p99: latency.percentile_ttft(99.0).unwrap_or(0.0),
    }
}

/// The engine loop: drain new requests, run one iteration, route finished
/// outputs back to their connections.
///
/// A fresh [`EngineStats`] snapshot (and refreshed telemetry gauges) is
/// published on startup, after admitting requests, after every iteration,
/// and when the engine drains — never only at step boundaries, so `STATS`
/// reflects completions even while the loop sits idle.
fn engine_loop<E: ModelExecutor>(
    mut engine: LlmEngine<E>,
    rx: &Receiver<FrontendRequest>,
    shutdown: &AtomicBool,
    stats: &Mutex<EngineStats>,
) {
    let mut pending: Vec<(String, Sender<RequestOutput>)> = Vec::new();
    let mut finished_total: u64 = 0;
    // Seed the snapshot (and the registry's gauges) so STATS/METRICS are
    // meaningful before the first request arrives.
    let _ = engine.metrics_snapshot();
    *stats.lock() = snapshot_stats(&engine, finished_total);
    while !shutdown.load(Ordering::SeqCst) {
        // Admit everything that arrived since the last iteration.
        let mut admitted = false;
        loop {
            match rx.try_recv() {
                Ok(req) => {
                    match engine.add_request(req.request_id.clone(), req.prompt, req.params) {
                        Ok(()) => {
                            pending.push((req.request_id, req.reply));
                            admitted = true;
                        }
                        Err(e) => {
                            // Deliver the failure as an empty output.
                            let _ = req.reply.send(RequestOutput {
                                request_id: format!("error: {e}"),
                                prompt_len: 0,
                                outputs: Vec::new(),
                                arrival_time: 0.0,
                                finish_time: 0.0,
                                first_token_time: None,
                                num_preemptions: 0,
                            });
                        }
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        if admitted {
            *stats.lock() = snapshot_stats(&engine, finished_total);
        }
        if !engine.has_unfinished() {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let outputs = match engine.step() {
            Ok(outputs) => outputs,
            Err(e) => {
                // An engine error is fatal for the serving loop.
                eprintln!("engine error: {e}");
                return;
            }
        };
        for out in outputs {
            finished_total += 1;
            if let Some(pos) = pending.iter().position(|(id, _)| *id == out.request_id) {
                let (_, reply) = pending.swap_remove(pos);
                let _ = reply.send(out);
            }
        }
        // Publish a fresh snapshot for STATS queries; on the drain step this
        // already reflects the final completions, so an idle engine never
        // serves stale counts.
        *stats.lock() = snapshot_stats(&engine, finished_total);
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &Sender<FrontendRequest>,
    shutdown: &Arc<AtomicBool>,
    stats: &Arc<Mutex<EngineStats>>,
    telemetry: &Arc<Telemetry>,
) {
    let next_id = Arc::new(AtomicU64::new(0));
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let next_id = Arc::clone(&next_id);
                let shutdown = Arc::clone(shutdown);
                let stats = Arc::clone(stats);
                let telemetry = Arc::clone(telemetry);
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &tx, &next_id, &shutdown, &stats, &telemetry);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn parse_request(line: &str, request_id: String) -> Result<(Vec<u32>, SamplingParams), String> {
    let mut parts = line.splitn(5, '\t');
    let verb = parts.next().unwrap_or_default();
    if verb != "GENERATE" {
        return Err(format!("unknown verb {verb:?}"));
    }
    let max_tokens: usize = parts
        .next()
        .ok_or("missing max_tokens")?
        .parse()
        .map_err(|_| "bad max_tokens")?;
    let n: usize = parts
        .next()
        .ok_or("missing n")?
        .parse()
        .map_err(|_| "bad n")?;
    let mode = parts.next().ok_or("missing mode")?;
    let text = parts.next().ok_or("missing prompt")?;
    if text.is_empty() {
        return Err("empty prompt".to_string());
    }
    let params = match mode {
        "greedy" => {
            if n != 1 {
                return Err("greedy requires n=1".to_string());
            }
            SamplingParams::greedy(max_tokens)
        }
        "sample" => SamplingParams::parallel(n, max_tokens),
        "beam" => SamplingParams::beam(n, max_tokens),
        other => return Err(format!("unknown mode {other:?}")),
    };
    let params = params
        .with_eos(vllm_model::EOS)
        .with_seed(fnv(request_id.as_bytes()));
    let prompt = ByteTokenizer.encode(text);
    params.validate().map_err(|e| e.to_string())?;
    Ok((prompt, params))
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn handle_connection(
    stream: TcpStream,
    tx: &Sender<FrontendRequest>,
    next_id: &AtomicU64,
    shutdown: &AtomicBool,
    stats: &Mutex<EngineStats>,
    telemetry: &Telemetry,
) -> std::io::Result<()> {
    // A read timeout lets the handler notice server shutdown even while a
    // client keeps its connection open but idle.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let tokenizer = ByteTokenizer;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // Client closed the connection.
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let line = line.trim_end().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "STATS" {
            let s = *stats.lock();
            writeln!(
                writer,
                "STATS\twaiting={}\trunning={}\tswapped={}\tfree_blocks={}\ttotal_blocks={}\tfinished={}\tpreemptions={}\tsteps={}\ttokens_scheduled={}\tblocks_copied={}\tblocks_swapped={}\tschedule_time={:.6}\tprepare_time={:.6}\texecute_time={:.6}\tpostprocess_time={:.6}\tnorm_lat_mean={:.6}\tnorm_lat_p50={:.6}\tnorm_lat_p90={:.6}\tnorm_lat_p99={:.6}\tttft_mean={:.6}\tttft_p50={:.6}\tttft_p99={:.6}",
                s.waiting, s.running, s.swapped, s.free_blocks, s.total_blocks, s.finished, s.preemptions,
                s.steps, s.tokens_scheduled, s.blocks_copied, s.blocks_swapped,
                s.schedule_time, s.prepare_time, s.execute_time, s.postprocess_time,
                s.norm_lat_mean, s.norm_lat_p50, s.norm_lat_p90, s.norm_lat_p99,
                s.ttft_mean, s.ttft_p50, s.ttft_p99
            )?;
            continue;
        }
        if line == "METRICS" {
            let snapshot = telemetry.registry().snapshot();
            writer.write_all(snapshot.to_prometheus_text().as_bytes())?;
            writeln!(writer, "END")?;
            continue;
        }
        if line == "METRICS\tjson" {
            let snapshot = telemetry.registry().snapshot();
            writeln!(writer, "{}", snapshot.to_json())?;
            continue;
        }
        if let Some(request_id) = line.strip_prefix("EVENTS\t") {
            for ev in telemetry.events().events_for(request_id) {
                writeln!(
                    writer,
                    "EVENT\t{:.6}\t{}\t{}",
                    ev.time,
                    ev.kind.label(),
                    ev.kind.detail()
                )?;
            }
            writeln!(writer, "END")?;
            continue;
        }
        let request_id = format!("req-{}", next_id.fetch_add(1, Ordering::SeqCst));
        match parse_request(&line, request_id.clone()) {
            Err(msg) => writeln!(writer, "ERR\t{msg}")?,
            Ok((prompt, params)) => {
                let (reply_tx, reply_rx) = mpsc::channel();
                let sent = tx.send(FrontendRequest {
                    request_id: request_id.clone(),
                    prompt,
                    params,
                    reply: reply_tx,
                });
                if sent.is_err() {
                    writeln!(writer, "ERR\tserver shutting down")?;
                    break;
                }
                match reply_rx.recv() {
                    Ok(out) if out.request_id.starts_with("error:") => {
                        writeln!(writer, "ERR\t{}", out.request_id)?;
                    }
                    Ok(out) => {
                        writeln!(writer, "OK\t{request_id}\t{}", out.outputs.len())?;
                        for (i, c) in out.outputs.iter().enumerate() {
                            let text = tokenizer.decode(&c.tokens).replace(['\t', '\n'], " ");
                            writeln!(writer, "OUT\t{i}\t{:.4}\t{text}", c.cumulative_logprob)?;
                        }
                        writeln!(writer, "END")?;
                    }
                    Err(_) => {
                        writeln!(writer, "ERR\tengine dropped request")?;
                        break;
                    }
                }
            }
        }
    }
    Ok(())
}

/// A small blocking client for the frontend protocol (used by tests and the
/// `server` example).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One generation result returned by [`Client::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutput {
    /// Index of the output sequence.
    pub index: usize,
    /// Cumulative log-probability.
    pub cumulative_logprob: f64,
    /// Generated text.
    pub text: String,
}

impl Client {
    /// Connects to a frontend server.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the connection fails.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one generation request and waits for its outputs.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure, or `InvalidData` wrapping
    /// a server-side `ERR` message.
    pub fn generate(
        &mut self,
        prompt: &str,
        max_tokens: usize,
        n: usize,
        mode: &str,
    ) -> std::io::Result<Vec<ClientOutput>> {
        writeln!(self.writer, "GENERATE\t{max_tokens}\t{n}\t{mode}\t{prompt}")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let line = line.trim_end();
        if let Some(msg) = line.strip_prefix("ERR\t") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                msg.to_string(),
            ));
        }
        let mut outputs = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                break;
            }
            let line = line.trim_end();
            if line == "END" {
                break;
            }
            if let Some(rest) = line.strip_prefix("OUT\t") {
                let mut f = rest.splitn(3, '\t');
                let index = f.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                let cumulative_logprob = f.next().and_then(|s| s.parse().ok()).unwrap_or(0.0);
                let text = f.next().unwrap_or_default().to_string();
                outputs.push(ClientOutput {
                    index,
                    cumulative_logprob,
                    text,
                });
            }
        }
        Ok(outputs)
    }
}
