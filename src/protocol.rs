//! Wire protocol v2: the typed `Command`/`Response` enum pair behind the
//! TCP frontend.
//!
//! Protocol v1 grew verb by verb as loosely parsed tab-separated strings;
//! v2 retires that. Every line a client sends parses into a [`Command`] and
//! every line the server writes is the [`Response::wire`] rendering of a
//! [`Response`] — the string form exists only at the socket boundary, so a
//! verb cannot be half-typed. Version skew is negotiated explicitly:
//!
//! ```text
//! -> HELLO\tversion=<n>
//! <- HELLO\tversion=2                          (versions agree)
//! <- ERR\tprotocol\tfalse\t<message>           (mismatch: pick another peer)
//! ```
//!
//! [`PROTOCOL_VERSION`] is `2`. The deprecated positional `GENERATE` form
//! (`GENERATE\t<max_tokens>\t<n>\t<mode>\t<prompt>`) is *removed*: it maps
//! to a typed [`vllm_core::ErrorKind::Protocol`] error naming the
//! replacement, as does any unknown verb or malformed frame. Protocol
//! errors are never retryable — resending the same bytes cannot help.
//!
//! The disaggregated-serving verbs (`HANDOFF`, `TIER`) are typed-only:
//! they were born in v2 and have no legacy string form. `HANDOFF` carries a
//! [`HandoffPayload`] in its checksummed hex wire encoding; the multi-line
//! `METRICS`/`TRACE` payloads (Prometheus exposition, span-dump JSON) keep
//! their own self-describing formats and are not re-wrapped here.

use std::fmt::Write as _;

use vllm_cluster::EngineStats;
use vllm_core::{ErrorKind, GenerationMode, GenerationRequest, HandoffPayload, VllmError};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 2;

/// Shorthand for request-shape errors ([`VllmError::InvalidRequest`],
/// kind `request`): the frame is well-formed but the content is wrong.
fn invalid(msg: impl Into<String>) -> VllmError {
    VllmError::InvalidRequest(msg.into())
}

/// Shorthand for frame-shape errors ([`VllmError::Protocol`], kind
/// `protocol`): the two ends disagree about the wire format itself.
fn proto(msg: impl Into<String>) -> VllmError {
    VllmError::Protocol(msg.into())
}

/// Checks a client's `HELLO` version against [`PROTOCOL_VERSION`].
///
/// # Errors
///
/// Returns a [`VllmError::Protocol`] naming both versions on mismatch.
pub fn negotiate(version: u32) -> Result<u32, VllmError> {
    if version == PROTOCOL_VERSION {
        Ok(PROTOCOL_VERSION)
    } else {
        Err(proto(format!(
            "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
        )))
    }
}

/// Splits a `key=value` protocol field. Only keys shaped `[a-z_]+` count —
/// anything else starts free text (the prompt).
fn split_field(part: &str) -> Option<(&str, &str)> {
    let (k, v) = part.split_once('=')?;
    if !k.is_empty() && k.bytes().all(|b| b.is_ascii_lowercase() || b == b'_') {
        Some((k, v))
    } else {
        None
    }
}

/// Splits a `key=value` field of a *response* body. Responses have no free
/// text to delimit, so any key (digits included, e.g. `norm_lat_p50`)
/// counts.
fn split_stat(part: &str) -> Option<(&str, &str)> {
    part.split_once('=')
}

/// The canonical wire name of a generation mode.
fn mode_name(mode: GenerationMode) -> &'static str {
    match mode {
        GenerationMode::Greedy => "greedy",
        GenerationMode::Sample => "sample",
        GenerationMode::Beam => "beam",
    }
}

/// The `METRICS` response format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition, terminated by `END`.
    Prometheus,
    /// One-line JSON snapshot.
    Json,
}

/// A parsed `GENERATE` line: structure only; semantic validation happens in
/// [`GenerateSpec::build`] so error wording lives with the typed builder.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateSpec {
    /// Maximum generated tokens per sequence.
    pub max_tokens: usize,
    /// Number of output sequences (defaults to 1 on the wire).
    pub n: usize,
    /// Decoding mode.
    pub mode: GenerationMode,
    /// Optional `key=value` fields in wire order (temperature, top_p, seed,
    /// deadline, priority, trace — validated by
    /// [`GenerationRequest::apply_field`]).
    pub fields: Vec<(String, String)>,
    /// The prompt text (tabs preserved).
    pub prompt: String,
}

impl GenerateSpec {
    /// Converts the spec into a typed [`GenerationRequest`], rejecting
    /// unknown or malformed optional fields.
    ///
    /// # Errors
    ///
    /// Returns the typed builder's error for any bad field.
    pub fn build(&self) -> Result<GenerationRequest, VllmError> {
        let mut req = match self.mode {
            GenerationMode::Greedy => GenerationRequest::greedy(self.max_tokens),
            GenerationMode::Sample => GenerationRequest::sample(self.n, self.max_tokens),
            GenerationMode::Beam => GenerationRequest::beam(self.n, self.max_tokens),
        };
        req.n = self.n;
        for (key, value) in &self.fields {
            req.apply_field(key, value)?;
        }
        Ok(req)
    }
}

/// One client→server line, typed.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `HELLO\tversion=<n>` — version negotiation.
    Hello {
        /// The client's protocol version.
        version: u32,
    },
    /// `GENERATE\tmax_tokens=<n>\t[n=<n>\t]mode=<mode>[\t<k>=<v>...]\t<prompt>`.
    Generate(GenerateSpec),
    /// `STATS` — aggregated (and per-replica) serving snapshots.
    Stats,
    /// `METRICS` / `METRICS\tjson` — telemetry registry exposition.
    Metrics(MetricsFormat),
    /// `EVENTS\t<request_id>` — request lifecycle replay.
    Events {
        /// The request id to replay.
        request_id: String,
    },
    /// `TRACE\t<trace_id:016x>` — span dump for a trace.
    Trace {
        /// The (nonzero) trace id.
        trace_id: u64,
    },
    /// `HANDOFF\t<payload-hex>` — install a serialized KV prefix into the
    /// decode pool (typed-only; born in v2).
    Handoff(HandoffPayload),
    /// `TIER` — cluster-shared prefix-tier snapshot (typed-only).
    Tier,
    /// `SHUTDOWN` — stop accepting work and drain.
    Shutdown,
}

impl Command {
    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Frame-shape problems (unknown verb, retired positional `GENERATE`,
    /// malformed `HELLO`/`HANDOFF`) return [`VllmError::Protocol`]; content
    /// problems inside a well-formed frame (missing `max_tokens`, bad trace
    /// id, …) return [`VllmError::InvalidRequest`].
    pub fn parse(line: &str) -> Result<Self, VllmError> {
        let parts: Vec<&str> = line.split('\t').collect();
        match *parts.first().unwrap_or(&"") {
            "HELLO" => match parts.get(1).and_then(|p| split_field(p)) {
                Some(("version", v)) if parts.len() == 2 => {
                    let version = v
                        .parse()
                        .map_err(|_| proto(format!("bad HELLO version {v:?}")))?;
                    Ok(Self::Hello { version })
                }
                _ => Err(proto("HELLO takes exactly version=<n>")),
            },
            "GENERATE" => Self::parse_generate(&parts),
            "STATS" => {
                if parts.len() == 1 {
                    Ok(Self::Stats)
                } else {
                    Err(invalid("STATS takes no arguments"))
                }
            }
            "METRICS" => match parts.as_slice() {
                ["METRICS"] => Ok(Self::Metrics(MetricsFormat::Prometheus)),
                ["METRICS", "json"] => Ok(Self::Metrics(MetricsFormat::Json)),
                _ => Err(invalid(
                    "unknown METRICS format (use METRICS or METRICS\\tjson)",
                )),
            },
            "EVENTS" => match parts.as_slice() {
                ["EVENTS", id] if !id.is_empty() => Ok(Self::Events {
                    request_id: (*id).to_string(),
                }),
                _ => Err(invalid("EVENTS takes exactly one request id")),
            },
            "TRACE" => match parts.as_slice() {
                ["TRACE", id] if !id.is_empty() => {
                    match u64::from_str_radix(id.trim_start_matches("0x"), 16) {
                        Ok(trace_id) if trace_id != 0 => Ok(Self::Trace { trace_id }),
                        _ => Err(invalid("bad trace id (want 16 hex digits, nonzero)")),
                    }
                }
                _ => Err(invalid("TRACE takes exactly one trace id")),
            },
            "HANDOFF" => match parts.as_slice() {
                ["HANDOFF", hex] if !hex.is_empty() => {
                    let payload = HandoffPayload::decode_wire(hex)?;
                    payload.validate()?;
                    Ok(Self::Handoff(payload))
                }
                _ => Err(proto("HANDOFF takes exactly one payload")),
            },
            "TIER" => {
                if parts.len() == 1 {
                    Ok(Self::Tier)
                } else {
                    Err(invalid("TIER takes no arguments"))
                }
            }
            "SHUTDOWN" => {
                if parts.len() == 1 {
                    Ok(Self::Shutdown)
                } else {
                    Err(invalid("SHUTDOWN takes no arguments"))
                }
            }
            verb => Err(proto(format!(
                "unknown verb {verb:?} (protocol v{PROTOCOL_VERSION})"
            ))),
        }
    }

    /// Parses the typed `GENERATE` fields; the retired positional form is
    /// detected (numeric second field) and answered with a protocol error
    /// naming the replacement.
    fn parse_generate(parts: &[&str]) -> Result<Self, VllmError> {
        if let Some(second) = parts.get(1) {
            if split_field(second).is_none() && second.parse::<usize>().is_ok() {
                return Err(proto(
                    "positional GENERATE was removed in protocol v2; \
                     send GENERATE\\tmax_tokens=<n>\\t[n=<n>\\t]mode=<mode>\\t<prompt>",
                ));
            }
        }
        let mut max_tokens: Option<usize> = None;
        let mut n: usize = 1;
        let mut mode: Option<GenerationMode> = None;
        let mut fields: Vec<(String, String)> = Vec::new();
        let mut i = 1;
        while i < parts.len() {
            let Some((key, value)) = split_field(parts[i]) else {
                break;
            };
            match key {
                "max_tokens" => {
                    max_tokens = Some(value.parse().map_err(|_| invalid("bad max_tokens"))?);
                }
                "n" => n = value.parse().map_err(|_| invalid("bad n"))?,
                "mode" => mode = Some(value.parse()?),
                // Defer the shared optional fields to the typed builder;
                // unknown keys are rejected there.
                _ => fields.push((key.to_string(), value.to_string())),
            }
            i += 1;
        }
        let max_tokens = max_tokens.ok_or_else(|| invalid("missing max_tokens"))?;
        let mode = mode.ok_or_else(|| invalid("missing mode"))?;
        if i >= parts.len() {
            return Err(invalid("missing prompt"));
        }
        let prompt = parts[i..].join("\t");
        if prompt.is_empty() {
            return Err(invalid("empty prompt"));
        }
        Ok(Self::Generate(GenerateSpec {
            max_tokens,
            n,
            mode,
            fields,
            prompt,
        }))
    }

    /// Renders the command back to its canonical wire line.
    #[must_use]
    pub fn wire(&self) -> String {
        match self {
            Self::Hello { version } => format!("HELLO\tversion={version}"),
            Self::Generate(spec) => {
                let mut line = format!(
                    "GENERATE\tmax_tokens={}\tn={}\tmode={}",
                    spec.max_tokens,
                    spec.n,
                    mode_name(spec.mode)
                );
                for (k, v) in &spec.fields {
                    let _ = write!(line, "\t{k}={v}");
                }
                let _ = write!(line, "\t{}", spec.prompt);
                line
            }
            Self::Stats => "STATS".into(),
            Self::Metrics(MetricsFormat::Prometheus) => "METRICS".into(),
            Self::Metrics(MetricsFormat::Json) => "METRICS\tjson".into(),
            Self::Events { request_id } => format!("EVENTS\t{request_id}"),
            Self::Trace { trace_id } => format!("TRACE\t{trace_id:016x}"),
            Self::Handoff(payload) => format!("HANDOFF\t{}", payload.encode_wire()),
            Self::Tier => "TIER".into(),
            Self::Shutdown => "SHUTDOWN".into(),
        }
    }
}

/// A snapshot of the cluster-shared prefix tier (the `TIER` reply). All
/// zeros — capacity included — means the tier is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    /// Entries resident.
    pub entries: usize,
    /// KV blocks held.
    pub blocks: usize,
    /// Capacity in KV blocks (0 = disabled).
    pub capacity: usize,
    /// Lookups that found a usable prefix.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Prefixes published.
    pub insertions: u64,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
}

/// One server→client line, typed. Multi-line `METRICS`/`TRACE` payloads
/// keep their own formats and are not wrapped here.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `HELLO\tversion=<n>` — the server's side of version negotiation.
    Hello {
        /// The server's protocol version.
        version: u32,
    },
    /// `OK\t<request_id>\t<num_outputs>` — generation accepted & finished.
    Ok {
        /// Server-assigned request id.
        request_id: String,
        /// Number of `OUT` lines that follow.
        num_outputs: usize,
    },
    /// `OK\tshutdown` — shutdown acknowledged.
    OkShutdown,
    /// `OUT\t<index>\t<cumulative_logprob>\t<text>`.
    Out {
        /// Output sequence index.
        index: usize,
        /// Cumulative log-probability.
        cumulative_logprob: f64,
        /// Decoded text (tabs/newlines replaced server-side).
        text: String,
    },
    /// `END` — terminates a multi-line reply.
    End,
    /// `STATS\t<key=value...>` — fleet-aggregated serving snapshot.
    Stats(EngineStats),
    /// `RSTATS\t<replica>\t<key=value...>` — one replica's snapshot.
    RStats {
        /// Replica index.
        replica: usize,
        /// The snapshot.
        stats: EngineStats,
    },
    /// `EVENT\t<time>\t<kind>\t<detail>` — one lifecycle event.
    Event {
        /// Engine time of the event.
        time: f64,
        /// Event kind label.
        kind: String,
        /// Event detail.
        detail: String,
    },
    /// `NOEVENTS\tunknown|evicted` — nothing to replay, and why.
    NoEvents {
        /// `true` when the id was seen but its events aged out.
        evicted: bool,
    },
    /// `HANDOFF\treplica=<i>\tprefix=<id>\tblocks=<n>` — payload installed.
    Handoff {
        /// Replica the prefix was installed on.
        replica: usize,
        /// The prefix-pool id on that replica.
        prefix: usize,
        /// Blocks installed.
        blocks: usize,
    },
    /// `TIER\t<key=value...>` — prefix-tier snapshot.
    Tier(TierSnapshot),
    /// `ERR\t<kind>\t<retryable>\t<message>`.
    Err {
        /// The error taxonomy kind.
        kind: ErrorKind,
        /// Whether retrying (elsewhere or later) can help.
        retryable: bool,
        /// Human-readable message.
        message: String,
    },
}

impl Response {
    /// The typed rendering of a server-side error.
    #[must_use]
    pub fn from_error(e: &VllmError) -> Self {
        Self::Err {
            kind: e.kind(),
            retryable: e.is_retryable(),
            message: e.to_string(),
        }
    }

    /// Renders the response to its wire line.
    #[must_use]
    pub fn wire(&self) -> String {
        match self {
            Self::Hello { version } => format!("HELLO\tversion={version}"),
            Self::Ok {
                request_id,
                num_outputs,
            } => format!("OK\t{request_id}\t{num_outputs}"),
            Self::OkShutdown => "OK\tshutdown".into(),
            Self::Out {
                index,
                cumulative_logprob,
                text,
            } => format!("OUT\t{index}\t{cumulative_logprob:.4}\t{text}"),
            Self::End => "END".into(),
            Self::Stats(s) => format!("STATS\t{}", stats_body(s)),
            Self::RStats { replica, stats } => format!("RSTATS\t{replica}\t{}", stats_body(stats)),
            Self::Event { time, kind, detail } => format!("EVENT\t{time:.6}\t{kind}\t{detail}"),
            Self::NoEvents { evicted } => format!(
                "NOEVENTS\t{}",
                if *evicted { "evicted" } else { "unknown" }
            ),
            Self::Handoff {
                replica,
                prefix,
                blocks,
            } => format!("HANDOFF\treplica={replica}\tprefix={prefix}\tblocks={blocks}"),
            Self::Tier(t) => format!(
                "TIER\tentries={}\tblocks={}\tcapacity={}\thits={}\tmisses={}\tinsertions={}\tevictions={}",
                t.entries, t.blocks, t.capacity, t.hits, t.misses, t.insertions, t.evictions
            ),
            Self::Err {
                kind,
                retryable,
                message,
            } => format!("ERR\t{}\t{retryable}\t{message}", kind.wire_name()),
        }
    }

    /// Parses one server wire line back into the typed response (the
    /// client's half of the round-trip).
    ///
    /// # Errors
    ///
    /// Returns [`VllmError::Protocol`] for lines that are not a v2 response
    /// frame.
    pub fn parse(line: &str) -> Result<Self, VllmError> {
        let parts: Vec<&str> = line.split('\t').collect();
        let bad = || proto(format!("bad response frame {line:?}"));
        match *parts.first().unwrap_or(&"") {
            "HELLO" => match parts.get(1).and_then(|p| split_field(p)) {
                Some(("version", v)) if parts.len() == 2 => Ok(Self::Hello {
                    version: v.parse().map_err(|_| bad())?,
                }),
                _ => Err(bad()),
            },
            "OK" => match parts.as_slice() {
                ["OK", "shutdown"] => Ok(Self::OkShutdown),
                ["OK", id, n] => Ok(Self::Ok {
                    request_id: (*id).to_string(),
                    num_outputs: n.parse().map_err(|_| bad())?,
                }),
                _ => Err(bad()),
            },
            "OUT" => {
                let mut f = line.splitn(4, '\t');
                f.next();
                let index = f.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                let cumulative_logprob = f.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                let text = f.next().ok_or_else(bad)?.to_string();
                Ok(Self::Out {
                    index,
                    cumulative_logprob,
                    text,
                })
            }
            "END" if parts.len() == 1 => Ok(Self::End),
            "STATS" if parts.len() > 1 => Ok(Self::Stats(parse_stats_body(&parts[1..])?)),
            "RSTATS" if parts.len() > 2 => Ok(Self::RStats {
                replica: parts[1].parse().map_err(|_| bad())?,
                stats: parse_stats_body(&parts[2..])?,
            }),
            "EVENT" => {
                let mut f = line.splitn(4, '\t');
                f.next();
                let time = f.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                let kind = f.next().ok_or_else(bad)?.to_string();
                let detail = f.next().ok_or_else(bad)?.to_string();
                Ok(Self::Event { time, kind, detail })
            }
            "NOEVENTS" => match parts.as_slice() {
                ["NOEVENTS", "unknown"] => Ok(Self::NoEvents { evicted: false }),
                ["NOEVENTS", "evicted"] => Ok(Self::NoEvents { evicted: true }),
                _ => Err(bad()),
            },
            "HANDOFF" => {
                let mut replica = None;
                let mut prefix = None;
                let mut blocks = None;
                for p in &parts[1..] {
                    match split_stat(p) {
                        Some(("replica", v)) => replica = v.parse().ok(),
                        Some(("prefix", v)) => prefix = v.parse().ok(),
                        Some(("blocks", v)) => blocks = v.parse().ok(),
                        _ => return Err(bad()),
                    }
                }
                match (replica, prefix, blocks) {
                    (Some(replica), Some(prefix), Some(blocks)) => Ok(Self::Handoff {
                        replica,
                        prefix,
                        blocks,
                    }),
                    _ => Err(bad()),
                }
            }
            "TIER" => {
                let mut t = TierSnapshot::default();
                for p in &parts[1..] {
                    let (k, v) = split_stat(p).ok_or_else(bad)?;
                    match k {
                        "entries" => t.entries = v.parse().map_err(|_| bad())?,
                        "blocks" => t.blocks = v.parse().map_err(|_| bad())?,
                        "capacity" => t.capacity = v.parse().map_err(|_| bad())?,
                        "hits" => t.hits = v.parse().map_err(|_| bad())?,
                        "misses" => t.misses = v.parse().map_err(|_| bad())?,
                        "insertions" => t.insertions = v.parse().map_err(|_| bad())?,
                        "evictions" => t.evictions = v.parse().map_err(|_| bad())?,
                        _ => return Err(bad()),
                    }
                }
                Ok(Self::Tier(t))
            }
            "ERR" => {
                let mut f = line.splitn(4, '\t');
                f.next();
                let kind = match f.next().ok_or_else(bad)? {
                    "resource" => ErrorKind::Resource,
                    "request" => ErrorKind::Request,
                    "internal" => ErrorKind::Internal,
                    "unavailable" => ErrorKind::Unavailable,
                    "protocol" => ErrorKind::Protocol,
                    _ => return Err(bad()),
                };
                let retryable = f.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                let message = f.next().ok_or_else(bad)?.to_string();
                Ok(Self::Err {
                    kind,
                    retryable,
                    message,
                })
            }
            _ => Err(bad()),
        }
    }
}

/// The `key=value` body shared by `STATS` and `RSTATS` lines.
#[must_use]
pub fn stats_body(s: &EngineStats) -> String {
    format!(
        "waiting={}\trunning={}\tswapped={}\toutstanding_tokens={}\tfree_blocks={}\ttotal_blocks={}\tfinished={}\tpreemptions={}\tsteps={}\ttokens_scheduled={}\tblocks_copied={}\tblocks_swapped={}\tschedule_time={:.6}\tprepare_time={:.6}\texecute_time={:.6}\tpostprocess_time={:.6}\tnorm_lat_mean={:.6}\tnorm_lat_p50={:.6}\tnorm_lat_p90={:.6}\tnorm_lat_p99={:.6}\tttft_mean={:.6}\tttft_p50={:.6}\tttft_p99={:.6}",
        s.waiting, s.running, s.swapped, s.outstanding_tokens, s.free_blocks, s.total_blocks,
        s.finished, s.preemptions, s.steps, s.tokens_scheduled, s.blocks_copied, s.blocks_swapped,
        s.schedule_time, s.prepare_time, s.execute_time, s.postprocess_time,
        s.norm_lat_mean, s.norm_lat_p50, s.norm_lat_p90, s.norm_lat_p99,
        s.ttft_mean, s.ttft_p50, s.ttft_p99
    )
}

/// Parses the `key=value` fields of a `STATS`/`RSTATS` body.
fn parse_stats_body(fields: &[&str]) -> Result<EngineStats, VllmError> {
    let mut s = EngineStats::default();
    for part in fields {
        let (k, v) = split_stat(part).ok_or_else(|| proto(format!("bad stats field {part:?}")))?;
        let bad = || proto(format!("bad stats value {part:?}"));
        match k {
            "waiting" => s.waiting = v.parse().map_err(|_| bad())?,
            "running" => s.running = v.parse().map_err(|_| bad())?,
            "swapped" => s.swapped = v.parse().map_err(|_| bad())?,
            "outstanding_tokens" => s.outstanding_tokens = v.parse().map_err(|_| bad())?,
            "free_blocks" => s.free_blocks = v.parse().map_err(|_| bad())?,
            "total_blocks" => s.total_blocks = v.parse().map_err(|_| bad())?,
            "finished" => s.finished = v.parse().map_err(|_| bad())?,
            "preemptions" => s.preemptions = v.parse().map_err(|_| bad())?,
            "steps" => s.steps = v.parse().map_err(|_| bad())?,
            "tokens_scheduled" => s.tokens_scheduled = v.parse().map_err(|_| bad())?,
            "blocks_copied" => s.blocks_copied = v.parse().map_err(|_| bad())?,
            "blocks_swapped" => s.blocks_swapped = v.parse().map_err(|_| bad())?,
            "schedule_time" => s.schedule_time = v.parse().map_err(|_| bad())?,
            "prepare_time" => s.prepare_time = v.parse().map_err(|_| bad())?,
            "execute_time" => s.execute_time = v.parse().map_err(|_| bad())?,
            "postprocess_time" => s.postprocess_time = v.parse().map_err(|_| bad())?,
            "norm_lat_mean" => s.norm_lat_mean = v.parse().map_err(|_| bad())?,
            "norm_lat_p50" => s.norm_lat_p50 = v.parse().map_err(|_| bad())?,
            "norm_lat_p90" => s.norm_lat_p90 = v.parse().map_err(|_| bad())?,
            "norm_lat_p99" => s.norm_lat_p99 = v.parse().map_err(|_| bad())?,
            "ttft_mean" => s.ttft_mean = v.parse().map_err(|_| bad())?,
            "ttft_p50" => s.ttft_p50 = v.parse().map_err(|_| bad())?,
            "ttft_p99" => s.ttft_p99 = v.parse().map_err(|_| bad())?,
            _ => return Err(proto(format!("unknown stats field {k:?}"))),
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vllm_core::KvBlockBytes;

    #[test]
    fn commands_round_trip_through_the_wire() {
        let lines = [
            "HELLO\tversion=2",
            "GENERATE\tmax_tokens=8\tn=1\tmode=greedy\thello world",
            "GENERATE\tmax_tokens=8\tn=3\tmode=sample\ttemperature=0.7\tseed=9\ttell me",
            "STATS",
            "METRICS",
            "METRICS\tjson",
            "EVENTS\treq-0",
            "TRACE\t00000000deadbeef",
            "TIER",
            "SHUTDOWN",
        ];
        for line in lines {
            let cmd = Command::parse(line).expect(line);
            assert_eq!(cmd.wire(), line, "round trip of {line:?}");
        }
    }

    #[test]
    fn handoff_command_round_trips_payload() {
        let payload = HandoffPayload {
            request_id: "req-7".into(),
            tokens: (0..8u32).collect(),
            first_token: Some(42),
            seed: 7,
            block_size: 4,
            blocks: vec![KvBlockBytes::empty(), KvBlockBytes::empty()],
        };
        let line = Command::Handoff(payload.clone()).wire();
        let Command::Handoff(decoded) = Command::parse(&line).expect("parses") else {
            panic!("expected Handoff");
        };
        assert_eq!(decoded.tokens, payload.tokens);
        assert_eq!(decoded.first_token, Some(42));
        assert_eq!(decoded.blocks.len(), 2);
        // A corrupt payload is a protocol-kind error.
        let err = Command::parse("HANDOFF\tzz-not-hex").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
    }

    #[test]
    fn positional_generate_is_retired_with_a_protocol_error() {
        let err = Command::parse("GENERATE\t12\t1\tgreedy\thello").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
        assert!(!err.is_retryable());
        assert!(err.to_string().contains("positional GENERATE was removed"));
        // A prompt-looking (non-numeric) second field is a content error,
        // not a frame error: the typed form simply lacks max_tokens.
        let err = Command::parse("GENERATE\thello there").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Request);
        assert!(err.to_string().contains("missing max_tokens"));
    }

    #[test]
    fn unknown_verbs_and_version_mismatch_are_protocol_errors() {
        let err = Command::parse("NOPE\thi").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
        assert!(err.to_string().contains("unknown verb"));
        assert!(negotiate(PROTOCOL_VERSION).is_ok());
        let err = negotiate(1).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
        assert!(!err.is_retryable());
        assert!(err.to_string().contains("unsupported protocol version 1"));
    }

    #[test]
    fn generate_spec_builds_typed_requests() {
        let Command::Generate(spec) = Command::parse(
            "GENERATE\tmax_tokens=16\tn=2\tmode=sample\ttemperature=0.5\ttop_p=0.9\thi",
        )
        .unwrap() else {
            panic!("expected Generate");
        };
        let req = spec.build().unwrap();
        assert_eq!(req.max_tokens, 16);
        assert_eq!(req.n, 2);
        assert_eq!(req.temperature, Some(0.5));
        // Unknown fields are rejected by the typed builder.
        let Command::Generate(spec) =
            Command::parse("GENERATE\tmax_tokens=4\tmode=greedy\tbogus=1\thi").unwrap()
        else {
            panic!("expected Generate");
        };
        assert!(spec.build().is_err());
    }

    #[test]
    fn responses_round_trip_through_the_wire() {
        let stats = EngineStats {
            waiting: 1,
            running: 2,
            finished: 7,
            total_blocks: 64,
            ttft_p99: 0.125,
            ..EngineStats::default()
        };
        let responses = [
            Response::Hello { version: 2 },
            Response::Ok {
                request_id: "req-3".into(),
                num_outputs: 2,
            },
            Response::OkShutdown,
            Response::Out {
                index: 0,
                cumulative_logprob: -1.25,
                text: "hello".into(),
            },
            Response::End,
            Response::Stats(stats),
            Response::RStats { replica: 1, stats },
            Response::Event {
                time: 0.5,
                kind: "admitted".into(),
                detail: "replica=0".into(),
            },
            Response::NoEvents { evicted: true },
            Response::Handoff {
                replica: 3,
                prefix: 11,
                blocks: 4,
            },
            Response::Tier(TierSnapshot {
                entries: 2,
                blocks: 8,
                capacity: 64,
                hits: 5,
                misses: 1,
                insertions: 2,
                evictions: 0,
            }),
            Response::Err {
                kind: ErrorKind::Protocol,
                retryable: false,
                message: "unknown verb \"NOPE\"".into(),
            },
        ];
        for r in responses {
            let line = r.wire();
            let parsed = Response::parse(&line).expect(&line);
            assert_eq!(parsed.wire(), line, "round trip of {line:?}");
        }
    }

    #[test]
    fn error_responses_match_the_legacy_err_line() {
        let e = VllmError::InvalidRequest("missing mode".into());
        assert_eq!(
            Response::from_error(&e).wire(),
            format!("ERR\t{}", e.wire_body())
        );
    }
}
