//! # vllm-rs
//!
//! A from-scratch Rust reproduction of *Efficient Memory Management for
//! Large Language Model Serving with PagedAttention* (SOSP 2023).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] (`vllm-core`) — block-level KV cache management, scheduling,
//!   decoding algorithms, and the serving engine.
//! * [`model`] (`vllm-model`) — a pure-Rust CPU transformer with real
//!   PagedAttention kernels and tensor-parallel execution.
//! * [`sim`] (`vllm-sim`) — a discrete-event simulator of the paper's A100
//!   testbed used to regenerate the evaluation figures.
//! * [`workloads`] (`vllm-workloads`) — synthetic ShareGPT/Alpaca-style
//!   traces, shared-prefix translation, and chatbot workloads.
//! * [`baselines`] (`vllm-baselines`) — Orca (Oracle/Pow2/Max) and
//!   FasterTransformer-style baselines over a buddy allocator.
//! * [`cluster`] (`vllm-cluster`) — multi-replica serving: engine replicas
//!   on threads behind a cache-aware router with pluggable policies.
//!
//! # Examples
//!
//! ```
//! use vllm::core::{CacheConfig, LlmEngine, SamplingParams, SchedulerConfig};
//! use vllm::model::{CpuModelExecutor, ModelConfig};
//!
//! let cache = CacheConfig::new(4, 64, 64).unwrap();
//! let sched = SchedulerConfig::new(512, 16, 512).unwrap();
//! let exec = CpuModelExecutor::from_config(ModelConfig::tiny(), &cache);
//! let mut engine = LlmEngine::new(exec, cache, sched);
//! engine.add_request("r0", vec![1, 2, 3], SamplingParams::greedy(4)).unwrap();
//! let outputs = engine.run_to_completion().unwrap();
//! assert_eq!(outputs[0].outputs[0].tokens.len(), 4);
//! ```

#![warn(missing_docs)]

pub mod frontend;
pub mod protocol;

pub use vllm_baselines as baselines;
pub use vllm_cluster as cluster;
pub use vllm_core as core;
pub use vllm_model as model;
pub use vllm_sim as sim;
pub use vllm_workloads as workloads;
